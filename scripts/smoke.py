"""Developer smoke script: run small mixes on baseline and DAP.

Drives baseline/dap cell pairs through the cell-execution engine, so it
exercises the same parallel + cached path as `repro-experiment`:

    PYTHONPATH=src python scripts/smoke.py mcf omnetpp --jobs 4

With ``--trace`` every cell also streams a JSONL telemetry trace (credit
counters, channel utilization, DAP decisions) and a run manifest:

    PYTHONPATH=src python scripts/smoke.py mcf --trace --probe-interval 10000
"""

import argparse
import os
import time

from repro.api import MixCell, TelemetryConfig, default_cache, run_cells
from repro.backends import BACKEND_NAMES
from repro.experiments.common import get_scale, scaled_config
from repro.obs.bench import build_bench_record, write_bench
from repro.obs.profiler import DEFAULT_HZ, Profile
from repro.obs.telemetry import DEFAULT_PROBE_INTERVAL
from repro.workloads.mixes import rate_mix

# All smoke artifacts default under here; .gitignore covers it.
DEFAULT_OUT_DIR = "results_smoke"

POLICIES = ("baseline", "dap")
DEFAULT_WORKLOADS = ["mcf", "libquantum", "omnetpp", "gcc.expr",
                     "parboil-lbm", "milc"]


def report(name, policy, result):
    print(
        f"{name:16s} {policy:10s} ipc={result.mean_ipc:.3f} "
        f"cycles={result.cycles} mpki={result.mean_mpki:.1f} "
        f"hit={result.served_hit_rate:.2f} mmfrac={result.mm_cas_fraction:.2f} "
        f"lat={result.avg_read_latency:.0f} "
        f"tagmiss="
        f"{result.tag_cache_miss_rate and round(result.tag_cache_miss_rate, 2)} "
        f"gbps={result.delivered_gbps:.1f} dec={result.dap_decisions}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workloads", nargs="*", default=DEFAULT_WORKLOADS)
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="simulation backend (python/numpy/auto); "
                             "bit-identical results, different speed")
    parser.add_argument("--trace", action="store_true",
                        help="stream JSONL telemetry traces + manifests")
    parser.add_argument("--probe-interval", type=int, metavar="CYCLES",
                        default=DEFAULT_PROBE_INTERVAL)
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR, metavar="DIR",
                        help="artifact root for traces (gitignored default)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="JSONL trace directory "
                             "(default: OUT_DIR/traces)")
    parser.add_argument("--bench", default=None, metavar="FILE",
                        help="write a BENCH performance-trajectory record")
    parser.add_argument("--profile", action="store_true",
                        help="sample executed cells' stacks (observation-"
                             "only; results stay bit-identical)")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="merged collapsed-stack output "
                             "(default: OUT_DIR/profile.collapsed)")
    args = parser.parse_args(argv)
    trace_dir = args.trace_dir or os.path.join(args.out_dir, "traces")

    scale = get_scale()
    cache = None if args.no_cache else default_cache(args.cache_dir)
    telemetry = (TelemetryConfig(probe_interval=args.probe_interval,
                                 trace_dir=trace_dir)
                 if args.trace else None)

    cells = [
        MixCell(f"{name}/{policy}", rate_mix(name),
                scaled_config(scale, policy=policy), scale,
                telemetry=telemetry)
        for name in args.workloads
        for policy in POLICIES
    ]
    t0 = time.time()
    results, stats = run_cells(cells, jobs=args.jobs, cache=cache,
                               profile_hz=DEFAULT_HZ if args.profile else 0,
                               backend=args.backend)
    wall = time.time() - t0

    for name in args.workloads:
        for policy in POLICIES:
            result = results.get(f"{name}/{policy}")
            if result is None:
                print(f"{name:16s} {policy:10s} FAILED")
            else:
                report(name, policy, result)
        base = results.get(f"{name}/baseline")
        dap = results.get(f"{name}/dap")
        if base is not None and dap is not None:
            print(f"  -> speedup "
                  f"{dap.mean_ipc / max(base.mean_ipc, 1e-9):.3f}")
    for failure in stats.failures:
        print(f"error: {failure.label}: {failure.error}")
    print(f"[{wall:.1f}s — {stats.summary()}]")
    if stats.profile:
        print(stats.profile_summary())
    if args.trace and stats.executed:
        print(f"[traces written under {trace_dir} — inspect with "
              f"'repro-analyze report {trace_dir}']")
    if args.profile:
        merged = Profile()
        for text in stats.stack_profiles.values():
            merged.merge(Profile.parse(text))
        if merged.total_samples:
            profile_out = args.profile_out or os.path.join(
                args.out_dir, "profile.collapsed")
            os.makedirs(os.path.dirname(profile_out) or ".", exist_ok=True)
            with open(profile_out, "w", encoding="utf-8") as handle:
                handle.write(merged.collapsed())
            print(f"[profile written to {profile_out}: "
                  f"{merged.total_samples} samples — render with "
                  f"'repro profile flame {profile_out}']")
        else:
            print("[profile: no samples — every cell came from the cache]")
    if args.bench:
        record = build_bench_record(
            run_id=f"smoke:{'+'.join(args.workloads)}@{scale.name}",
            per_experiment={"smoke": stats}, scale=scale.name)
        print(f"[bench record written to {write_bench(args.bench, record)}]")
    return 1 if stats.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
