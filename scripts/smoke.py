"""Developer smoke script: run small mixes on baseline and DAP."""

import sys
import time

from repro.experiments.common import SMOKE, get_scale, run_mix, scaled_config
from repro.workloads.mixes import rate_mix


def run(policy, name="mcf", scale=SMOKE):
    mix = rate_mix(name)
    config = scaled_config(scale, policy=policy)
    t0 = time.time()
    result = run_mix(mix, config, scale)
    wall = time.time() - t0
    print(
        f"{name:16s} {policy:10s} ipc={result.mean_ipc:.3f} "
        f"cycles={result.cycles} mpki={result.mean_mpki:.1f} "
        f"hit={result.served_hit_rate:.2f} mmfrac={result.mm_cas_fraction:.2f} "
        f"lat={result.avg_read_latency:.0f} "
        f"tagmiss={result.tag_cache_miss_rate and round(result.tag_cache_miss_rate, 2)} "
        f"gbps={result.delivered_gbps:.1f} wall={wall:.1f}s dec={result.dap_decisions}"
    )
    return result


if __name__ == "__main__":
    workloads = sys.argv[1:] or ["mcf", "libquantum", "omnetpp", "gcc.expr",
                                 "parboil-lbm", "milc"]
    scale = get_scale()
    for wl in workloads:
        base = run("baseline", wl, scale)
        dap = run("dap", wl, scale)
        print(f"  -> speedup {dap.mean_ipc / max(base.mean_ipc, 1e-9):.3f}")
