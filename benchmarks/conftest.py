"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact at ``smoke`` scale (a
representative workload subset) and prints the table it produced.
``pytest benchmarks/ --benchmark-only`` therefore doubles as a quick
reproduction pass; run ``repro-experiment all --scale small`` for the
full-fidelity version.

Benchmarks resolve experiments by registry id and drive them through
the cell-execution engine serially and uncached, so the numbers measure
simulation work rather than cache I/O.
"""

import pytest

from repro.experiments.exec import run_spec
from repro.experiments.registry import get_spec

# Representative subsets used by most benchmarks: one IFRM-heavy
# workload (mcf), the SFRM star (omnetpp), and a write-heavy FWB/WB
# workload (gcc.expr).
CORE_WORKLOADS = ["mcf", "omnetpp", "gcc.expr"]
TINY_WORKLOADS = ["mcf", "gcc.expr"]


@pytest.fixture
def core_workloads():
    return list(CORE_WORKLOADS)


@pytest.fixture
def tiny_workloads():
    return list(TINY_WORKLOADS)


def run_once(benchmark, experiment, *, scale=None, workloads=None, **options):
    """Run one registered experiment exactly once under benchmark timing.

    ``experiment`` is a registry id (e.g. ``"fig06"``); extra keyword
    arguments become spec options (e.g. fig12's
    ``max_mixes_per_category``).
    """
    spec = get_spec(experiment)
    kwargs = {"scale": scale, "workloads": workloads,
              "options": options or None}
    return benchmark.pedantic(run_spec, args=(spec,), kwargs=kwargs,
                              rounds=1, iterations=1)
