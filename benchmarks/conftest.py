"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact at ``smoke`` scale (a
representative workload subset) and prints the table it produced.
``pytest benchmarks/ --benchmark-only`` therefore doubles as a quick
reproduction pass; run ``repro-experiment all --scale small`` for the
full-fidelity version.
"""

import pytest

# Representative subsets used by most benchmarks: one IFRM-heavy
# workload (mcf), the SFRM star (omnetpp), and a write-heavy FWB/WB
# workload (gcc.expr).
CORE_WORKLOADS = ["mcf", "omnetpp", "gcc.expr"]
TINY_WORKLOADS = ["mcf", "gcc.expr"]


@pytest.fixture
def core_workloads():
    return list(CORE_WORKLOADS)


@pytest.fixture
def tiny_workloads():
    return list(TINY_WORKLOADS)


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
