"""Benchmark: regenerate Fig. 10 (capacity and bandwidth sweeps)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig10_capacity_bandwidth(benchmark):
    result = run_once(benchmark, "fig10", scale=SMOKE, workloads=["mcf"])
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    cap2, cap4, cap8, bw102, bw128, bw204 = gmean[1:7]
    # DAP's gain shrinks as the cache gets faster (the key trend).
    assert bw204 <= bw102 + 0.03
