"""Benchmark: regenerate Table I (W and E sensitivity)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_table1_sensitivity(benchmark):
    result = run_once(benchmark, "table1", scale=SMOKE, workloads=["mcf"])
    print()
    result.print()
    values = {(row[0], row[1]): row[2] for row in result.rows}
    # Every parameter point still beats (or matches) the baseline region.
    assert all(v > 0.9 for v in values.values())
