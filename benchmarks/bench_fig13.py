"""Benchmark: regenerate Fig. 13 (16-core scaling)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig13_sixteen_cores(benchmark):
    result = run_once(benchmark, "fig13", scale=SMOKE, workloads=["mcf"])
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    assert gmean[1] > 0.97  # DAP keeps helping (or staying neutral) at scale
