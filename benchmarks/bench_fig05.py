"""Benchmark: regenerate Fig. 5 (SRAM tag cache effect)."""

from conftest import run_once

from repro.experiments.common import SMOKE

WORKLOADS = ["mcf", "omnetpp", "libquantum"]


def test_fig05_tag_cache(benchmark):
    result = run_once(benchmark, "fig05", scale=SMOKE, workloads=WORKLOADS)
    print()
    result.print()
    rows = {row[0]: row for row in result.rows}
    # The tag cache helps on average.
    assert rows["GMEAN"][1] > 1.0
    # omnetpp's sparse pages thrash the tag cache harder than libquantum.
    assert rows["omnetpp"][2] > rows["libquantum"][2]
