"""Benchmark: regenerate Fig. 12 (all mix categories)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig12_all_workloads(benchmark):
    # One mix per category at smoke scale; the full 44 run via
    # `repro-experiment fig12 --scale small`.
    result = run_once(benchmark, "fig12", scale=SMOKE, max_mixes_per_category=1)
    print()
    result.print()
    gmeans = {row[0]: row[2] for row in result.rows if row[0].startswith("GMEAN")}
    # Insensitive mixes are never significantly hurt.
    assert gmeans["GMEAN-bandwidth-insensitive"] > 0.95
    assert gmeans["GMEAN-all"] > 0.98
