"""Benchmark: regenerate Fig. 7 (DAP decision mix)."""

import pytest
from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig07_dap_decisions(benchmark, core_workloads):
    result = run_once(benchmark, "fig07", scale=SMOKE, workloads=core_workloads)
    print()
    result.print()
    rows = {row[0]: row for row in result.rows}
    for name, row in rows.items():
        assert sum(row[1:5]) == pytest.approx(1.0, abs=1e-6)
    # omnetpp is SFRM-dominated (tag-cache thrash).
    assert rows["omnetpp"][4] == max(rows["omnetpp"][1:5])
