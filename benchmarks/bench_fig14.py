"""Benchmark: regenerate Fig. 14 (Alloy cache: BEAR vs DAP)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig14_alloy(benchmark, tiny_workloads):
    result = run_once(benchmark, "fig14", scale=SMOKE, workloads=tiny_workloads)
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    ws_bear, ws_dap = gmean[1], gmean[2]
    # Both proposals improve on the Alloy baseline.
    assert ws_bear > 1.0 and ws_dap > 1.0
    # DAP moves the MM CAS fraction toward the Alloy optimum (~0.36),
    # past both the baseline and BEAR — the Fig. 14 bottom panel.
    # (In this reproduction BEAR's fill bypass outperforms DAP-Alloy on
    # weighted speedup, unlike the paper; see EXPERIMENTS.md.)
    data_rows = [row for row in result.rows if row[0] != "GMEAN"]
    assert all(row[5] >= row[3] - 0.02 for row in data_rows)
    assert all(row[5] >= row[4] - 0.02 for row in data_rows)
