"""Benchmark: regenerate Fig. 9 (main-memory technology sensitivity)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig09_memory_technology(benchmark):
    result = run_once(benchmark, "fig09", scale=SMOKE, workloads=["mcf"])
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    default_ws, no_io_ws, lpddr_ws, ddr3200_ws = gmean[1:5]
    # Faster main memory raises DAP's benefit; slower LPDDR4 lowers it.
    assert ddr3200_ws >= lpddr_ws - 0.02
