"""Benchmark: regenerate Fig. 8 (MM CAS fraction + hit rates)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig08_cas_fraction(benchmark, core_workloads):
    result = run_once(benchmark, "fig08", scale=SMOKE, workloads=core_workloads)
    print()
    result.print()
    mean = [row for row in result.rows if row[0] == "MEAN"][0]
    mm_base, mm_dap = mean[1], mean[2]
    hit_base, hit_fwbwb, hit_dap = mean[3], mean[4], mean[5]
    # DAP moves the MM CAS fraction toward the 0.27 optimum.
    assert mm_dap > mm_base
    assert abs(mm_dap - 0.27) < abs(mm_base - 0.27)
    # Hit rate is deliberately sacrificed as techniques are added.
    assert hit_dap <= hit_base + 0.02
