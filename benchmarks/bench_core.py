"""Core engine microbenchmarks: event queue, DRAM dispatch, end-to-end.

The bench_fig* suites time whole paper artifacts; these instead isolate
the three layers the simulator spends its life in, so a hot-path change
shows up as a throughput delta in the layer that owns it:

* ``drain_event_queue`` — the :class:`Simulator` heap alone, dispatching
  self-rescheduling callbacks with no model work attached.
* ``drive_channel`` — one DDR4-like :class:`DramChannel` chewing a
  read/write mix of row-hit streams and scattered row misses.
* ``run_smoke_cell`` — one full smoke-scale mix (cores, SRAM hierarchy,
  memory-side cache, both DRAM devices), the number the BENCH_*.json
  trajectory gates on.

Two entry points:

* pytest-benchmark::

      PYTHONPATH=src python -m pytest benchmarks/bench_core.py --benchmark-only

* script mode, emitting a BENCH-schema record for ``repro-analyze bench``::

      PYTHONPATH=src python benchmarks/bench_core.py --bench /tmp/core.json
      PYTHONPATH=src repro-analyze bench /tmp/core.json --against <prior.json>

  The record carries one experiment entry per microbenchmark, so a
  regression report names the layer that slowed down rather than just
  the aggregate.
"""

from __future__ import annotations

import time

from repro.engine.clock import ClockDomain
from repro.engine.event_queue import Simulator
from repro.experiments.cellcache import CellProfile, ExecStats
from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.mem.channel import DramChannel
from repro.mem.request import AccessKind, Request
from repro.mem.timing import DramTiming
from repro.workloads.mixes import rate_mix

EVENT_QUEUE_EVENTS = 200_000
CHANNEL_REQUESTS = 30_000


# ----------------------------------------------------------------------
# The three workloads
# ----------------------------------------------------------------------

def drain_event_queue(num_events: int = EVENT_QUEUE_EVENTS,
                      chains: int = 8) -> int:
    """Dispatch ``num_events`` callbacks through a bare Simulator.

    ``chains`` interleaved self-rescheduling callbacks with co-prime-ish
    periods keep the heap populated (so each dispatch pays a real
    sift-down) without any model work; returns the dispatched count.
    """
    sim = Simulator()
    schedule = sim.schedule
    per_chain = num_events // chains

    def make_chain(period: int):
        remaining = per_chain

        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining:
                schedule(period, tick)

        return tick

    for chain in range(chains):
        schedule(chain + 1, make_chain(chain + 1))
    return sim.run()


def drive_channel(num_requests: int = CHANNEL_REQUESTS) -> int:
    """Push a read/write mix through one DDR4-like channel.

    Four-fifths of the traffic streams within a handful of rows (row
    hits), the rest strides across the row space (row misses), and every
    seventh request is a write so the write-batching state machine runs.
    Returns the simulator's dispatched-event count.
    """
    sim = Simulator()
    channel = DramChannel(
        sim,
        ClockDomain(device_ghz=1.2),
        DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4),
        num_banks=16,
        row_bytes=8 * 1024,
        name="bench",
    )
    row_lines = channel.row_lines
    for i in range(num_requests):
        if i % 5:
            line = i % (row_lines * 4)              # row-hit streams
        else:
            line = (i * 977) % (row_lines * 1024)   # scattered row misses
        kind = AccessKind.WRITEBACK if i % 7 == 0 else AccessKind.DEMAND_READ
        channel.enqueue(Request(line=line, kind=kind))
    return sim.run()


def run_smoke_cell(policy: str = "dap") -> tuple[int, float]:
    """Run one smoke-scale mcf rate mix end to end.

    Returns ``(events_dispatched, wall_seconds)`` — the same shape the
    smoke script's BENCH records aggregate per cell.
    """
    systems: list = []
    start = time.perf_counter()
    run_mix(rate_mix("mcf"), scaled_config(SMOKE, policy=policy), SMOKE,
            system_out=systems)
    wall = time.perf_counter() - start
    return systems[0].sim.events_dispatched, wall


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

def test_event_queue_throughput(benchmark):
    events = benchmark.pedantic(drain_event_queue, rounds=3, iterations=1)
    assert events == EVENT_QUEUE_EVENTS


def test_channel_dispatch_throughput(benchmark):
    events = benchmark.pedantic(drive_channel, rounds=3, iterations=1)
    # Every request dispatches at least one completion event.
    assert events >= CHANNEL_REQUESTS


def test_end_to_end_smoke_cell(benchmark):
    events, _ = benchmark.pedantic(run_smoke_cell, rounds=1, iterations=1)
    assert events > 0


# ----------------------------------------------------------------------
# Script mode: emit a BENCH-schema record for `repro-analyze bench`
# ----------------------------------------------------------------------

def _stats_for(label: str, events: int, wall: float) -> ExecStats:
    """One executed cell with one profile entry — the shape
    build_bench_record aggregates."""
    return ExecStats(total=1, executed=1,
                     profile=[CellProfile(label, wall, events=events)],
                     elapsed=wall)


def main(argv=None) -> int:
    import argparse

    from repro.obs.bench import build_bench_record, write_bench

    parser = argparse.ArgumentParser(
        description="Core engine microbenchmarks (BENCH-record emitter).")
    parser.add_argument("--bench", metavar="FILE", default=None,
                        help="write a BENCH-schema record here")
    parser.add_argument("--repeat", type=int, default=1,
                        help="measurements per benchmark; best is kept")
    args = parser.parse_args(argv)

    def best_of(fn):
        best = None
        for _ in range(max(1, args.repeat)):
            start = time.perf_counter()
            events = fn()
            wall = time.perf_counter() - start
            if best is None or wall < best[1]:
                best = (events, wall)
        return best

    per_experiment = {}
    for name, fn in (
        ("core.event_queue", drain_event_queue),
        ("core.channel_dispatch", drive_channel),
    ):
        events, wall = best_of(fn)
        per_experiment[name] = _stats_for(name, events, wall)
        print(f"{name:24s} {events:10,d} events  {wall:7.3f}s  "
              f"{events / wall:12,.0f} ev/s")

    best = None
    for _ in range(max(1, args.repeat)):
        sample = run_smoke_cell()
        if best is None or sample[1] < best[1]:
            best = sample
    events, wall = best
    per_experiment["core.end_to_end"] = _stats_for("core.end_to_end",
                                                   events, wall)
    print(f"{'core.end_to_end':24s} {events:10,d} events  {wall:7.3f}s  "
          f"{events / wall:12,.0f} ev/s")

    if args.bench:
        record = build_bench_record(run_id="bench-core",
                                    per_experiment=per_experiment,
                                    scale=SMOKE.name)
        write_bench(args.bench, record)
        print(f"wrote {args.bench} "
              f"({record['events_per_sec']:,.0f} ev/s aggregate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
