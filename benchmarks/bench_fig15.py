"""Benchmark: regenerate Fig. 15 (DAP on the eDRAM cache)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig15_edram(benchmark, tiny_workloads):
    result = run_once(benchmark, "fig15", scale=SMOKE, workloads=tiny_workloads)
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    dap256, base512, dap512 = gmean[1], gmean[2], gmean[3]
    # DAP at 512 MB beats the plain 512 MB capacity doubling.
    assert dap512 >= base512 - 0.02
