"""Benchmark: regenerate Fig. 11 (SBD / SBD-WT / BATMAN / DAP)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig11_related_proposals(benchmark, tiny_workloads):
    result = run_once(benchmark, "fig11", scale=SMOKE, workloads=tiny_workloads)
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    sbd, sbd_wt, batman, dap = gmean[1:5]
    # DAP beats every related proposal; SBD-WT beats SBD (no forced
    # cleaning traffic).
    assert dap >= max(sbd, sbd_wt, batman) - 0.02
    assert sbd_wt >= sbd - 0.02
