"""Benchmark: regenerate Fig. 1 (delivered bandwidth vs hit rate)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig01_bandwidth_vs_hitrate(benchmark):
    result = run_once(benchmark, "fig01", scale=SMOKE)
    print()
    result.print()
    dram = result.column(1)
    edram = result.column(3)
    # DRAM cache: rises while MM-bound, keeps rising/flattens after.
    assert dram[0] < dram[1] < dram[2] <= dram[3] * 1.05
    assert dram[-1] > dram[0]
    # eDRAM: peaks mid-range, loses bandwidth at 100% hit rate.
    peak = max(edram)
    assert edram[-1] < peak * 0.9
    assert peak > edram[0]
