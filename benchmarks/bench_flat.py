"""Benchmark: the OS-visible flat-memory extension (Eq. 3 at page level)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_flat_memory_extension(benchmark):
    result = run_once(benchmark, "flat", scale=SMOKE)
    print()
    result.print()
    rows = {row[0]: row for row in result.rows}
    # The Eq. 3 interleave beats the hit-rate-maximizing first-touch.
    assert rows["bandwidth-interleave"][1] > rows["first-touch"][1]
    # Adaptive migration converges: steady state beats first-touch.
    assert rows["adaptive"][2] > rows["first-touch"][2]
