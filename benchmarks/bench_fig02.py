"""Benchmark: regenerate Fig. 2 (eDRAM 512 MB vs 256 MB)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig02_edram_capacity(benchmark, core_workloads):
    result = run_once(benchmark, "fig02", scale=SMOKE, workloads=core_workloads)
    print()
    result.print()
    speedups = [row[1] for row in result.rows if row[0] != "GMEAN"]
    # Doubling capacity should not devastate performance anywhere.
    assert all(ws > 0.8 for ws in speedups)
