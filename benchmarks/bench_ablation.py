"""Benchmark: the technique-stacking ablation (DESIGN.md extension)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_ablation_techniques(benchmark, tiny_workloads):
    result = run_once(benchmark, "ablation", scale=SMOKE, workloads=tiny_workloads)
    print()
    result.print()
    gmean = [row for row in result.rows if row[0] == "GMEAN"][0]
    fwb, fwb_wb, no_sfrm, full = gmean[1:5]
    # Stacking techniques never collapses performance; full DAP ends on top
    # (small tolerances for smoke-scale noise).
    assert full >= fwb - 0.03
    assert full >= max(fwb, fwb_wb, no_sfrm) - 0.03
