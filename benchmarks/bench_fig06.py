"""Benchmark: regenerate Fig. 6 (DAP speedup + read-miss latency)."""

from conftest import run_once

from repro.experiments.common import SMOKE


def test_fig06_dap_speedup(benchmark, core_workloads):
    result = run_once(benchmark, "fig06", scale=SMOKE, workloads=core_workloads)
    print()
    result.print()
    rows = {row[0]: row for row in result.rows}
    # DAP wins on average and saves read latency.
    assert rows["GMEAN"][1] > 1.0
    latencies = [row[2] for name, row in rows.items() if name != "GMEAN"]
    assert min(latencies) < 1.0
