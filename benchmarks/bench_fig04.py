"""Benchmark: regenerate Fig. 4 (bandwidth sensitivity + L3 MPKI)."""

from conftest import run_once

from repro.experiments.common import SMOKE

WORKLOADS = ["mcf", "soplex.ref", "milc", "parboil-histo"]


def test_fig04_bandwidth_sensitivity(benchmark):
    result = run_once(benchmark, "fig04", scale=SMOKE, workloads=WORKLOADS)
    print()
    result.print()
    rows = {row[0]: row for row in result.rows}
    # Group shape: sensitive workloads gain more from the doubling.
    sensitive = rows["GMEAN-sensitive"][2]
    insensitive = rows["GMEAN-insensitive"][2]
    assert sensitive > insensitive - 0.02
    # MPKI ordering: sensitive workloads have higher L3 MPKI.
    assert rows["mcf"][3] > rows["parboil-histo"][3]
