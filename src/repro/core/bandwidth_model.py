"""The paper's analytical bandwidth model (Section III).

For ``n`` non-blocking parallel bandwidth sources with bandwidths ``B_i``
and work fractions ``f_i`` (``sum f_i = 1``), the delivered bandwidth is

    B = 1 / max(f_1/B_1, ..., f_n/B_n) = min(B_1/f_1, ..., B_n/f_n)   (Eq. 2)

which is maximized, at ``sum(B_i)``, exactly when the work is divided in
proportion to the bandwidths:

    f_i* = B_i / sum(B_j)                                              (Eq. 3)
    B_1/f_1 = B_2/f_2 = ... = B_n/f_n                                  (Eq. 4)

With an access-volume inflation factor ``C >= 1`` (maintenance traffic),
the maximum delivered bandwidth drops to ``sum(B_i) / C``.

This module also provides the closed-form read-bandwidth curves behind
Fig. 1 so the simulation can be validated against the analytical shape.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError


def _check_bandwidths(bandwidths: Sequence[float]) -> None:
    if not bandwidths:
        raise ConfigError("need at least one bandwidth source")
    if any(b <= 0 for b in bandwidths):
        raise ConfigError(f"bandwidths must be positive, got {list(bandwidths)}")


def delivered_bandwidth(bandwidths: Sequence[float],
                        fractions: Sequence[float]) -> float:
    """Equation 2: ``min(B_i / f_i)`` for the given access partition.

    A source with ``f_i == 0`` does not constrain delivery. Fractions must
    be non-negative and sum to ~1.
    """
    _check_bandwidths(bandwidths)
    if len(fractions) != len(bandwidths):
        raise ConfigError("fractions and bandwidths must have equal length")
    if any(f < 0 for f in fractions):
        raise ConfigError(f"fractions must be non-negative, got {list(fractions)}")
    total = sum(fractions)
    if abs(total - 1.0) > 1e-9:
        raise ConfigError(f"fractions must sum to 1, got {total}")
    constrained = [b / f for b, f in zip(bandwidths, fractions) if f > 0]
    return min(constrained)


def optimal_fractions(bandwidths: Sequence[float]) -> list[float]:
    """Equation 3's maximizer: ``f_i = B_i / sum(B_j)``."""
    _check_bandwidths(bandwidths)
    total = sum(bandwidths)
    return [b / total for b in bandwidths]


def max_delivered_bandwidth(bandwidths: Sequence[float],
                            inflation: float = 1.0) -> float:
    """``sum(B_i) / C`` — the ceiling with maintenance inflation ``C``."""
    _check_bandwidths(bandwidths)
    if inflation < 1.0:
        raise ConfigError(f"inflation factor C must be >= 1, got {inflation}")
    return sum(bandwidths) / inflation


def optimal_mm_cas_fraction(b_cache: float, b_mm: float) -> float:
    """Fraction of CAS operations main memory should serve at the optimum.

    For the paper's default platform (102.4 GB/s cache, 38.4 GB/s DDR)
    this is 38.4/140.8 ≈ 0.27 — the reference line in Fig. 8.
    """
    _check_bandwidths([b_cache, b_mm])
    return b_mm / (b_cache + b_mm)


# ----------------------------------------------------------------------
# Fig. 1 closed forms (read-only streaming kernel, no metadata traffic)
# ----------------------------------------------------------------------

def analytic_dram_cache_read_bw(hit_rate: float, b_cache: float, b_mm: float) -> float:
    """Delivered read bandwidth for a shared-channel DRAM cache (Fig. 1).

    Every demand read costs one cache CAS (a hit reads the cache; a miss
    reads main memory *and* spends a cache CAS on the fill), so the cache
    constrains throughput to ``b_cache`` while main memory constrains it
    to ``b_mm / (1 - h)``.
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ConfigError(f"hit rate must be in [0, 1], got {hit_rate}")
    _check_bandwidths([b_cache, b_mm])
    if hit_rate >= 1.0:
        return b_cache
    return min(b_cache, b_mm / (1.0 - hit_rate))


def analytic_edram_cache_read_bw(
    hit_rate: float, b_read: float, b_mm: float
) -> float:
    """Delivered read bandwidth for separate-channel eDRAM (Fig. 1).

    Fills ride the independent write channels, so reads see
    ``min(b_read / h, b_mm / (1 - h))`` — a curve that *peaks* at
    ``h = b_read / (b_read + b_mm)`` and falls back to ``b_read`` at 100%
    hit rate: the paper's motivating observation that raising the hit
    rate can lose bandwidth.
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ConfigError(f"hit rate must be in [0, 1], got {hit_rate}")
    _check_bandwidths([b_read, b_mm])
    if hit_rate == 0.0:
        return b_mm
    if hit_rate == 1.0:
        return b_read
    return min(b_read / hit_rate, b_mm / (1.0 - hit_rate))
