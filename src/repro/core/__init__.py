"""DAP — Dynamic Access Partitioning (the paper's contribution).

- :mod:`repro.core.bandwidth_model` — the analytical model of Section III
  (Equations 1-4): delivered bandwidth of multiple sources, the optimal
  access partition, and closed-form curves for Fig. 1.
- :mod:`repro.core.credits` — saturating credit counters (the ~16 bytes
  of hardware), with division-free (K+1)-scaled arithmetic.
- :mod:`repro.core.window` — per-window demand observation.
- :mod:`repro.core.dap_sectored` — the Fig. 3 algorithm for sectored
  DRAM caches (FWB, WB, IFRM, SFRM).
- :mod:`repro.core.dap_alloy` — the Alloy cache variant (IFRM via the
  dirty-bit cache + opportunistic write-through).
- :mod:`repro.core.dap_edram` — the three-source eDRAM variant
  (Equations 9-12).
"""

from repro.core.bandwidth_model import (
    delivered_bandwidth,
    max_delivered_bandwidth,
    optimal_fractions,
    optimal_mm_cas_fraction,
    analytic_dram_cache_read_bw,
    analytic_edram_cache_read_bw,
)
from repro.core.credits import CreditCounter, approximate_k
from repro.core.window import WindowStats, EdramWindowStats
from repro.core.dap_sectored import DapSectored, SectoredTargets
from repro.core.dap_alloy import DapAlloy, AlloyTargets
from repro.core.dap_edram import DapEdram, EdramTargets

__all__ = [
    "delivered_bandwidth",
    "max_delivered_bandwidth",
    "optimal_fractions",
    "optimal_mm_cas_fraction",
    "analytic_dram_cache_read_bw",
    "analytic_edram_cache_read_bw",
    "CreditCounter",
    "approximate_k",
    "WindowStats",
    "EdramWindowStats",
    "DapSectored",
    "SectoredTargets",
    "DapAlloy",
    "AlloyTargets",
    "DapEdram",
    "EdramTargets",
]
