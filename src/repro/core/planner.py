"""Bandwidth-partitioning design calculator.

A small planning utility on top of the Section III model: given the
bandwidths of a memory-side cache and a main memory, it reports every
constant a DAP deployment needs — the hardware K approximation, the
optimal CAS split, per-window budgets, and the bandwidth ceiling — plus
the break-even hit rate beyond which partitioning starts to matter.

Runnable: ``python -m repro.core.planner 102.4 38.4 [--window 64]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.core.bandwidth_model import (
    max_delivered_bandwidth,
    optimal_fractions,
    optimal_mm_cas_fraction,
)
from repro.core.credits import approximate_k
from repro.engine.clock import accesses_per_cpu_cycle
from repro.errors import ConfigError


@dataclass(frozen=True)
class PartitionPlan:
    """Everything a DAP deployment needs to know about one platform."""

    b_cache_gbps: float
    b_mm_gbps: float
    window: int
    efficiency: float
    cpu_ghz: float

    def __post_init__(self) -> None:
        if self.b_cache_gbps <= 0 or self.b_mm_gbps <= 0:
            raise ConfigError("bandwidths must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigError("efficiency must be in (0, 1]")
        if self.window <= 0:
            raise ConfigError("window must be positive")

    @property
    def k_exact(self) -> float:
        return self.b_cache_gbps / self.b_mm_gbps

    @property
    def k_hardware(self) -> Fraction:
        """K rounded to quarters, as the paper's hardware does."""
        return approximate_k(self.b_cache_gbps, self.b_mm_gbps)

    @property
    def optimal_cache_fraction(self) -> float:
        return optimal_fractions([self.b_cache_gbps, self.b_mm_gbps])[0]

    @property
    def optimal_mm_fraction(self) -> float:
        return optimal_mm_cas_fraction(self.b_cache_gbps, self.b_mm_gbps)

    @property
    def max_bandwidth_gbps(self) -> float:
        return max_delivered_bandwidth([self.b_cache_gbps, self.b_mm_gbps])

    @property
    def cache_accesses_per_window(self) -> float:
        """Effective B_MS$ * W in 64-byte accesses (the solve threshold)."""
        per_cycle = accesses_per_cpu_cycle(self.b_cache_gbps, cpu_ghz=self.cpu_ghz)
        return per_cycle * self.efficiency * self.window

    @property
    def mm_accesses_per_window(self) -> float:
        per_cycle = accesses_per_cpu_cycle(self.b_mm_gbps, cpu_ghz=self.cpu_ghz)
        return per_cycle * self.efficiency * self.window

    @property
    def breakeven_hit_rate(self) -> float:
        """Hit rate beyond which a shared-channel cache alone bottlenecks
        reads (Fig. 1's knee): ``1 - B_MM / B_MS$`` (0 if MM >= cache)."""
        return max(0.0, 1.0 - self.b_mm_gbps / self.b_cache_gbps)

    def describe(self) -> str:
        k = self.k_hardware
        return "\n".join([
            f"platform: cache {self.b_cache_gbps} GB/s + "
            f"main memory {self.b_mm_gbps} GB/s "
            f"(W={self.window}, E={self.efficiency}, {self.cpu_ghz} GHz)",
            f"  K exact                {self.k_exact:.4f}",
            f"  K hardware             {k.numerator}/{k.denominator}"
            f" = {float(k):.2f}",
            f"  optimal split          cache {self.optimal_cache_fraction:.1%}"
            f" / memory {self.optimal_mm_fraction:.1%}",
            f"  bandwidth ceiling      {self.max_bandwidth_gbps:.1f} GB/s",
            f"  B_MS$*W (effective)    {self.cache_accesses_per_window:.1f}"
            " accesses/window",
            f"  B_MM*W  (effective)    {self.mm_accesses_per_window:.1f}"
            " accesses/window",
            f"  Fig. 1 knee hit rate   {self.breakeven_hit_rate:.1%}",
        ])


def plan(b_cache_gbps: float, b_mm_gbps: float, window: int = 64,
         efficiency: float = 0.75, cpu_ghz: float = 4.0) -> PartitionPlan:
    """Build a :class:`PartitionPlan` for one platform."""
    return PartitionPlan(b_cache_gbps=b_cache_gbps, b_mm_gbps=b_mm_gbps,
                         window=window, efficiency=efficiency,
                         cpu_ghz=cpu_ghz)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cache_gbps", type=float)
    parser.add_argument("mm_gbps", type=float)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--efficiency", type=float, default=0.75)
    parser.add_argument("--cpu-ghz", type=float, default=4.0)
    args = parser.parse_args(argv)
    print(plan(args.cache_gbps, args.mm_gbps, window=args.window,
               efficiency=args.efficiency, cpu_ghz=args.cpu_ghz).describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
