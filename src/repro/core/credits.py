"""Saturating credit counters — DAP's ~16 bytes of hardware state.

The paper stores ``(K+1) * N_WB`` instead of ``N_WB`` so the per-window
solve needs no divider: each applied write bypass simply decrements the
counter by ``K+1``. K itself (the cache/memory bandwidth ratio) is
approximated by a small rational so the multiply is cheap in hardware —
8/3 becomes 11/4 for the default platform.

We mirror that arithmetic exactly: a :class:`CreditCounter` keeps an
integer value in units of ``1/denominator`` and saturates at the width
the paper budgets (eight bits of whole units).
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ConfigError


def approximate_k(b_cache: float, b_mm: float, denominator: int = 4) -> Fraction:
    """Hardware-friendly approximation of K = B_MS$ / B_MM.

    Rounds K to the nearest multiple of ``1/denominator`` (the paper uses
    quarters: 8/3 -> 11/4).
    """
    if b_cache <= 0 or b_mm <= 0:
        raise ConfigError("bandwidths must be positive")
    if denominator <= 0:
        raise ConfigError("denominator must be positive")
    return Fraction(round(b_cache / b_mm * denominator), denominator)


class CreditCounter:
    """Saturating counter holding values in units of ``1/denominator``.

    ``load`` installs a window's budget (clamped to [0, max]); ``take``
    spends one application's cost if any credit remains. The paper lets a
    technique fire while its counter is non-zero, so ``take`` succeeds on
    any positive value and floors at zero.
    """

    def __init__(self, bits: int = 8, denominator: int = 1) -> None:
        if bits <= 0 or denominator <= 0:
            raise ConfigError("bits and denominator must be positive")
        self.denominator = denominator
        self._max = ((1 << bits) - 1) * denominator
        self._value = 0

    # ------------------------------------------------------------------
    def load(self, amount: Fraction | int | float) -> None:
        """Set the counter to ``amount`` (whole units), saturating."""
        scaled = int(amount * self.denominator)
        self._value = max(0, min(self._max, scaled))

    def take(self, cost: Fraction | int = 1) -> bool:
        """Spend ``cost`` whole units; True if any credit was available."""
        if self._value <= 0:
            return False
        self._value = max(0, self._value - int(cost * self.denominator))
        return True

    def take_scaled(self, scaled_cost: int) -> bool:
        """:meth:`take` with the cost already in ``1/denominator`` units.

        Per-decision hot paths precompute ``int(cost * denominator)``
        once (it is constant per counter) instead of paying a Fraction
        multiply per query; the arithmetic is exactly :meth:`take`'s.
        """
        if self._value <= 0:
            return False
        self._value = max(0, self._value - scaled_cost)
        return True

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Current credit in whole units."""
        return self._value / self.denominator

    @property
    def raw(self) -> int:
        return self._value

    @property
    def max_value(self) -> float:
        return self._max / self.denominator

    def __bool__(self) -> bool:
        return self._value > 0

    def __repr__(self) -> str:
        return f"CreditCounter(value={self.value}, max={self.max_value})"
