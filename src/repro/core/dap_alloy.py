"""DAP for the Alloy cache (Section IV-B).

The Alloy cache fuses tag and data (TAD), which constrains DAP:

- write bypass on hits would still cost Alloy bandwidth to invalidate
  the line, and fill bypass needs the TAD to know whether a fill is due,
  so neither is a standalone technique;
- **IFRM** works without touching the TAD when the dirty-bit cache (DBC)
  says the accessed set is clean — and if the line turns out to be
  absent, the skipped fill doubles as a fill bypass;
- to keep clean blocks available for IFRM, spare main-memory bandwidth
  is spent on opportunistic **write-through** of Alloy writes
  (``0.8 * (B_MM*W - A_MM)`` per window).

The effective Alloy bandwidth already reflects the TAD bloat: a 72-byte
TAD moves in 3 HBM channel cycles of which only 2 carry data, so
``B_MS$ = (2/3) * peak``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.credits import CreditCounter, approximate_k
from repro.core.dap_sectored import DEFAULT_EFFICIENCY, DEFAULT_WINDOW, SFRM_HEADROOM
from repro.core.window import WindowStats
from repro.errors import ConfigError

TAD_DATA_FRACTION = 2.0 / 3.0


@dataclass(frozen=True)
class AlloyTargets:
    """Per-window budgets for the Alloy variant."""

    n_ifrm: float
    n_wt: float

    @property
    def partitioning_active(self) -> bool:
        return self.n_ifrm > 0


def solve_alloy(
    stats: WindowStats, bms_w: float, bmm_w: float, k: Fraction,
    kf: Optional[float] = None,
) -> AlloyTargets:
    """Per-window solve: Eq. 8 for IFRM plus the write-through budget.

    ``kf`` is the caller's precomputed ``float(k)`` (K is fixed per
    platform); computed from ``k`` when omitted.
    """
    ams, amm = stats.a_ms, stats.a_mm
    if kf is None:
        kf = float(k)
    n_ifrm = 0.0
    if ams > bms_w:
        ifrm_scaled = ams - kf * amm  # (K+1) * N_IFRM
        n_ifrm = max(0.0, ifrm_scaled / (1.0 + kf))
        n_ifrm = min(n_ifrm, float(stats.clean_hits))
    n_wt = max(0.0, SFRM_HEADROOM * (bmm_w - amm - n_ifrm))
    return AlloyTargets(n_ifrm=n_ifrm, n_wt=n_wt)


class DapAlloy:
    """Window-driven DAP state for the Alloy cache.

    ``b_ms`` is the raw HBM bandwidth in accesses/cycle; the TAD data
    fraction is applied internally.
    """

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = DEFAULT_WINDOW,
        efficiency: float = DEFAULT_EFFICIENCY,
        k_denominator: int = 4,
    ) -> None:
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        self.window = window
        self.b_ms_eff = b_ms * TAD_DATA_FRACTION * efficiency
        self.b_mm_eff = b_mm * efficiency
        self.bms_w = self.b_ms_eff * window
        self.bmm_w = self.b_mm_eff * window
        self.k = approximate_k(self.b_ms_eff, self.b_mm_eff, k_denominator)

        kd = self.k.denominator
        self._ifrm = CreditCounter(bits=8, denominator=kd)
        self._wt = CreditCounter(bits=8)
        self._cost = self.k + 1
        # Hot-path constants (see DapSectored): precomputed float/scaled
        # forms of K and K+1, identical values without per-call conversion.
        self._kf = float(self.k)
        self._cost_f = float(self._cost)
        self._cost_scaled = int(self._cost * kd)
        self.stats = WindowStats()
        self._window_index = 0
        self.last_targets = AlloyTargets(0, 0)
        self.decisions = {"ifrm": 0, "wt": 0, "fill_bypass": 0}
        self.windows_partitioned = 0

    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        widx = now // self.window
        if widx == self._window_index:
            return
        stats = self.stats if widx == self._window_index + 1 else WindowStats()
        targets = solve_alloy(stats, self.bms_w, self.bmm_w, self.k,
                              kf=self._kf)
        self.last_targets = targets
        self._ifrm.load(targets.n_ifrm * self._cost_f)
        self._wt.load(targets.n_wt)
        if targets.partitioning_active:
            self.windows_partitioned += 1
        self.stats.reset()
        self._window_index = widx

    # ------------------------------------------------------------------
    def allow_forced_miss(self, now: int) -> bool:
        self.tick(now)
        if self._ifrm.take_scaled(self._cost_scaled):
            self.decisions["ifrm"] += 1
            return True
        return False

    def allow_write_through(self, now: int) -> bool:
        self.tick(now)
        if self._wt.take():
            self.decisions["wt"] += 1
            return True
        return False

    def note_fill_bypass(self) -> None:
        """An IFRM line turned out absent — its fill was skipped too."""
        self.decisions["fill_bypass"] += 1

    def credit_state(self) -> dict[str, float]:
        """Current credit-counter values in whole accesses."""
        return {"ifrm": self._ifrm.value, "wt": self._wt.value}

    # ------------------------------------------------------------------
    def note_ms_access(self, count: int = 1) -> None:
        self.stats.note_ms_access(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.stats.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.stats.note_read_miss()

    def note_write(self) -> None:
        self.stats.note_write()

    def note_clean_hit(self) -> None:
        self.stats.note_clean_hit()
