"""Per-window demand observation.

DAP divides execution into windows of ``W`` CPU cycles. During window
``N`` the controller records the *demand* each bandwidth source would see
without partitioning; at the boundary the solver converts the counts into
technique budgets for window ``N+1``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WindowStats:
    """Demand observed in one window (single-channel-set caches).

    Attributes mirror the paper's terms:

    - ``a_ms``: accesses demanded of the memory-side cache (read hits,
      L4 writes, evict reads, fill writes, metadata traffic);
    - ``a_mm``: accesses demanded of main memory (read misses, dirty
      MS$ evictions);
    - ``read_misses`` (R_m): MS$ read misses (the fill supply for FWB);
    - ``writes`` (W_m): writes arriving at the MS$ (the WB supply);
    - ``clean_hits``: read hits on clean blocks (the IFRM supply).
    """

    a_ms: int = 0
    a_mm: int = 0
    read_misses: int = 0
    writes: int = 0
    clean_hits: int = 0

    def note_ms_access(self, count: int = 1) -> None:
        self.a_ms += count

    def note_mm_access(self, count: int = 1) -> None:
        self.a_mm += count

    def note_read_miss(self) -> None:
        self.read_misses += 1

    def note_write(self) -> None:
        self.writes += 1

    def note_clean_hit(self) -> None:
        self.clean_hits += 1

    def reset(self) -> None:
        self.a_ms = 0
        self.a_mm = 0
        self.read_misses = 0
        self.writes = 0
        self.clean_hits = 0

    def snapshot(self) -> "WindowStats":
        return WindowStats(self.a_ms, self.a_mm, self.read_misses,
                           self.writes, self.clean_hits)


@dataclass
class EdramWindowStats:
    """Demand observed in one window for separate read/write channels.

    The eDRAM cache's read channels serve read hits and victim reads;
    its write channels serve fills and L4 writes; main memory serves
    read misses and writebacks.
    """

    a_ms_read: int = 0
    a_ms_write: int = 0
    a_mm: int = 0
    read_misses: int = 0
    writes: int = 0
    clean_hits: int = 0

    def note_ms_read(self, count: int = 1) -> None:
        self.a_ms_read += count

    def note_ms_write(self, count: int = 1) -> None:
        self.a_ms_write += count

    def note_mm_access(self, count: int = 1) -> None:
        self.a_mm += count

    def note_read_miss(self) -> None:
        self.read_misses += 1

    def note_write(self) -> None:
        self.writes += 1

    def note_clean_hit(self) -> None:
        self.clean_hits += 1

    def reset(self) -> None:
        self.a_ms_read = 0
        self.a_ms_write = 0
        self.a_mm = 0
        self.read_misses = 0
        self.writes = 0
        self.clean_hits = 0

    def snapshot(self) -> "EdramWindowStats":
        return EdramWindowStats(self.a_ms_read, self.a_ms_write, self.a_mm,
                                self.read_misses, self.writes, self.clean_hits)
