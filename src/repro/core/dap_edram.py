"""DAP for sectored eDRAM caches (Section IV-C).

The eDRAM cache exposes *three* bandwidth sources beyond the SRAM
hierarchy: independent read channels (B_MS$-R), independent write
channels (B_MS$-W), and main memory (B_MM). Tags are on die, so SFRM is
unnecessary; the remaining techniques are chosen by which channel set is
oversubscribed:

(i)   read shortage only  -> IFRM via Eq. 9:
      ``(K+1) * N_IFRM = A_MS$-R - K * A_MM``
(ii)  write shortage only -> FWB via Eq. 10 then WB via Eq. 11:
      ``N_FWB = A_MS$-W - K * A_MM``
      ``(K+1) * N_WB = (A_MS$-W - N_FWB) - K * A_MM``
(iii) both                -> FWB via Eq. 10, then the simultaneous solve
      of Eq. 12:
      ``(2K+1) * N_WB   = (K+1)(A_MS$-W - N_FWB) - K*A_MS$-R - K*A_MM``
      ``(2K+1) * N_IFRM = (K+1)A_MS$-R - K(A_MS$-W - N_FWB) - K*A_MM``

The paper assumes ``B_MS$-R = B_MS$-W = B_MS$`` and
``K = B_MS$ / B_MM``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.credits import CreditCounter, approximate_k
from repro.core.dap_sectored import DEFAULT_EFFICIENCY, DEFAULT_WINDOW
from repro.core.window import EdramWindowStats
from repro.errors import ConfigError


@dataclass(frozen=True)
class EdramTargets:
    n_fwb: float
    n_wb: float
    n_ifrm: float

    @property
    def partitioning_active(self) -> bool:
        return self.n_fwb > 0 or self.n_wb > 0 or self.n_ifrm > 0


def solve_edram(
    stats: EdramWindowStats, bms_w: float, bmm_w: float, k: Fraction,
    kf: Optional[float] = None,
) -> EdramTargets:
    """Per-window solve across the paper's three scenarios.

    ``kf`` is the caller's precomputed ``float(k)`` (K is fixed per
    platform); computed from ``k`` when omitted.
    """
    ar, aw, amm = stats.a_ms_read, stats.a_ms_write, stats.a_mm
    rm, wm, clean_hits = stats.read_misses, stats.writes, stats.clean_hits
    if kf is None:
        kf = float(k)
    read_short = ar > bms_w
    write_short = aw > bms_w

    n_fwb = n_wb = n_ifrm = 0.0
    if read_short and not write_short:
        # (i) Eq. 9.
        n_ifrm = max(0.0, (ar - kf * amm) / (1.0 + kf))
    elif write_short and not read_short:
        # (ii) Eq. 10 then Eq. 11.
        n_fwb = max(0.0, aw - kf * amm)
        n_fwb = min(n_fwb, float(rm), aw - bms_w)
        n_wb = max(0.0, ((aw - n_fwb) - kf * amm) / (1.0 + kf))
    elif read_short and write_short:
        # (iii) Eq. 10 then the simultaneous Eq. 12.
        n_fwb = max(0.0, aw - kf * amm)
        n_fwb = min(n_fwb, float(rm))
        denom = 2.0 * kf + 1.0
        n_wb = max(0.0, ((1.0 + kf) * (aw - n_fwb) - kf * ar - kf * amm) / denom)
        n_ifrm = max(0.0, ((1.0 + kf) * ar - kf * (aw - n_fwb) - kf * amm) / denom)

    n_wb = min(n_wb, float(wm))
    n_ifrm = min(n_ifrm, float(clean_hits))
    return EdramTargets(n_fwb=n_fwb, n_wb=n_wb, n_ifrm=n_ifrm)


class DapEdram:
    """Window-driven DAP state for the three-source eDRAM system."""

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = DEFAULT_WINDOW,
        efficiency: float = DEFAULT_EFFICIENCY,
        k_denominator: int = 4,
    ) -> None:
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        self.window = window
        self.b_ms_eff = b_ms * efficiency
        self.b_mm_eff = b_mm * efficiency
        self.bms_w = self.b_ms_eff * window
        self.bmm_w = self.b_mm_eff * window
        self.k = approximate_k(self.b_ms_eff, self.b_mm_eff, k_denominator)

        kd = self.k.denominator
        self._fwb = CreditCounter(bits=8)
        self._wb = CreditCounter(bits=8, denominator=kd)
        self._ifrm = CreditCounter(bits=8, denominator=kd)
        self._cost = self.k + 1
        # Hot-path constants (see DapSectored): precomputed float/scaled
        # forms of K and K+1, identical values without per-call conversion.
        self._kf = float(self.k)
        self._cost_f = float(self._cost)
        self._cost_scaled = int(self._cost * kd)
        self.stats = EdramWindowStats()
        self._window_index = 0
        self.last_targets = EdramTargets(0, 0, 0)
        self.decisions = {"fwb": 0, "wb": 0, "ifrm": 0}
        self.windows_partitioned = 0

    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        widx = now // self.window
        if widx == self._window_index:
            return
        stats = self.stats if widx == self._window_index + 1 else EdramWindowStats()
        targets = solve_edram(stats, self.bms_w, self.bmm_w, self.k,
                              kf=self._kf)
        self.last_targets = targets
        cost = self._cost_f
        self._fwb.load(targets.n_fwb)
        self._wb.load(targets.n_wb * cost)
        self._ifrm.load(targets.n_ifrm * cost)
        if targets.partitioning_active:
            self.windows_partitioned += 1
        self.stats.reset()
        self._window_index = widx

    # ------------------------------------------------------------------
    def allow_fill_bypass(self, now: int) -> bool:
        self.tick(now)
        if self._fwb.take():
            self.decisions["fwb"] += 1
            return True
        return False

    def allow_write_bypass(self, now: int) -> bool:
        self.tick(now)
        if self._wb.take_scaled(self._cost_scaled):
            self.decisions["wb"] += 1
            return True
        return False

    def allow_forced_miss(self, now: int) -> bool:
        self.tick(now)
        if self._ifrm.take_scaled(self._cost_scaled):
            self.decisions["ifrm"] += 1
            return True
        return False

    def credit_state(self) -> dict[str, float]:
        """Current credit-counter values in whole accesses."""
        return {
            "fwb": self._fwb.value,
            "wb": self._wb.value,
            "ifrm": self._ifrm.value,
        }

    # ------------------------------------------------------------------
    def note_ms_read(self, count: int = 1) -> None:
        self.stats.note_ms_read(count)

    def note_ms_write(self, count: int = 1) -> None:
        self.stats.note_ms_write(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.stats.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.stats.note_read_miss()

    def note_write(self) -> None:
        self.stats.note_write()

    def note_clean_hit(self) -> None:
        self.stats.note_clean_hit()
