"""DAP for sectored DRAM caches — the Fig. 3 algorithm.

At each window boundary the solver turns last window's observed demand
(``A_MS$``, ``A_MM``, R_m, W_m, clean hits) into technique budgets:

1. **FWB** — ``N_FWB = A_MS$ - K * A_MM`` (Eq. 6), capped by the needed
   partitioning ``A_MS$ - B_MS$*W`` and by the available fills R_m;
2. **WB** — if fills ran out, ``(K+1) * N_WB = A_MS$ - K*A_MM - R_m``
   (Eq. 7), capped at W_m;
3. **IFRM** — if writes ran out too,
   ``(K+1) * N_IFRM = A_MS$ - K*(A_MM + W_m) - R_m - W_m`` (Eq. 8),
   capped by the observed clean hits;
4. **SFRM** — ``N_SFRM = 0.8 * (B_MM*W - A_MM - N_WB - N_IFRM)``,
   leaving 20% of main-memory headroom for bandwidth emergencies.

Budgets are loaded into saturating credit counters; during the next
window each technique fires while its counter is non-zero. The WB and
IFRM counters store the (K+1)-scaled value so no divider is needed —
each application costs ``K+1`` credits.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.credits import CreditCounter, approximate_k
from repro.core.window import WindowStats
from repro.errors import ConfigError

DEFAULT_WINDOW = 64
DEFAULT_EFFICIENCY = 0.75
SFRM_HEADROOM = 0.8


@dataclass(frozen=True)
class SectoredTargets:
    """Per-window technique budgets (in accesses)."""

    n_fwb: float
    n_wb: float
    n_ifrm: float
    n_sfrm: float

    @property
    def partitioning_active(self) -> bool:
        return self.n_fwb > 0 or self.n_wb > 0 or self.n_ifrm > 0


def solve_sectored(
    stats: WindowStats, bms_w: float, bmm_w: float, k: Fraction,
    kf: Optional[float] = None,
) -> SectoredTargets:
    """Pure per-window solve of the Fig. 3 flowchart.

    ``kf`` lets window-driven callers pass the precomputed ``float(k)``
    (K is fixed per platform; converting the Fraction every window is
    pure overhead).
    """
    ams, amm = stats.a_ms, stats.a_mm
    rm, wm, clean_hits = stats.read_misses, stats.writes, stats.clean_hits
    if kf is None:
        kf = float(k)

    n_fwb = n_wb = n_ifrm = 0.0
    if ams > bms_w:
        n_fwb = ams - kf * amm
        if n_fwb <= 0:
            # Main memory is the bottleneck: exit partitioning.
            n_fwb = 0.0
        else:
            # Never bypass more than the demand overflow, nor more fills
            # than actually exist.
            n_fwb = min(n_fwb, ams - bms_w)
            if n_fwb > rm:
                n_fwb = float(rm)
                wb_scaled = ams - kf * amm - rm          # (K+1) * N_WB
                n_wb = max(0.0, wb_scaled / (1.0 + kf))
                if n_wb > wm:
                    n_wb = float(wm)
                    ifrm_scaled = ams - kf * (amm + wm) - rm - wm
                    n_ifrm = max(0.0, ifrm_scaled / (1.0 + kf))
                    n_ifrm = min(n_ifrm, float(clean_hits))

    n_sfrm = max(0.0, SFRM_HEADROOM * (bmm_w - amm - n_wb - n_ifrm))
    return SectoredTargets(n_fwb=n_fwb, n_wb=n_wb, n_ifrm=n_ifrm, n_sfrm=n_sfrm)


class DapSectored:
    """Window-driven DAP controller state for sectored DRAM caches.

    Parameters
    ----------
    b_ms, b_mm:
        Peak bandwidths of the memory-side cache and main memory in
        64-byte accesses per CPU cycle.
    window:
        Window length W in CPU cycles (paper default 64).
    efficiency:
        Assumed bandwidth efficiency E of both sources (paper default
        0.75); effective bandwidth is ``E * peak``.
    enable_sfrm:
        SFRM only applies to architectures whose metadata lives in the
        DRAM array (it hides tag-fetch latency).
    """

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = DEFAULT_WINDOW,
        efficiency: float = DEFAULT_EFFICIENCY,
        k_denominator: int = 4,
        enable_sfrm: bool = True,
    ) -> None:
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if not 0 < efficiency <= 1:
            raise ConfigError(f"efficiency must be in (0, 1], got {efficiency}")
        self.window = window
        self.efficiency = efficiency
        self.b_ms_eff = b_ms * efficiency
        self.b_mm_eff = b_mm * efficiency
        self.bms_w = self.b_ms_eff * window
        self.bmm_w = self.b_mm_eff * window
        self.k = approximate_k(self.b_ms_eff, self.b_mm_eff, k_denominator)
        self.enable_sfrm = enable_sfrm

        kd = self.k.denominator
        self._fwb = CreditCounter(bits=8)
        self._wb = CreditCounter(bits=8, denominator=kd)
        self._ifrm = CreditCounter(bits=8, denominator=kd)
        self._sfrm = CreditCounter(bits=8)
        self._wb_cost = self.k + 1
        # Hot-path constants: K and the (K+1) costs are fixed per
        # platform, so the per-window float() conversions and the
        # per-decision Fraction multiply inside CreditCounter.take are
        # precomputed here (identical values, no per-call conversion).
        self._kf = float(self.k)
        self._wb_cost_f = float(self._wb_cost)
        self._wb_cost_scaled = int(self._wb_cost * kd)
        self.stats = WindowStats()
        self._window_index = 0
        self.last_targets = SectoredTargets(0, 0, 0, 0)

        # Applied-decision counts (Fig. 7).
        self.decisions = {"fwb": 0, "wb": 0, "ifrm": 0, "sfrm": 0}
        self.windows_partitioned = 0
        self.windows_seen = 0

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        """Advance to the window containing cycle ``now``.

        Exactly one window elapsed: solve from the collected demand.
        Several idle windows elapsed: the old observation is stale, so
        partitioning is dropped (solve from empty stats).
        """
        widx = now // self.window
        if widx == self._window_index:
            return
        stats = self.stats if widx == self._window_index + 1 else WindowStats()
        self.load_targets(solve_sectored(stats, self.bms_w, self.bmm_w,
                                         self.k, kf=self._kf))
        self.windows_seen += widx - self._window_index
        self.stats.reset()
        self._window_index = widx

    def load_targets(self, targets: SectoredTargets) -> None:
        """Install a window's technique budgets into the credit counters."""
        self.last_targets = targets
        kf = self._wb_cost_f
        self._fwb.load(targets.n_fwb)
        self._wb.load(targets.n_wb * kf)      # store (K+1)*N_WB
        self._ifrm.load(targets.n_ifrm * kf)  # store (K+1)*N_IFRM
        self._sfrm.load(targets.n_sfrm if self.enable_sfrm else 0)
        if targets.partitioning_active:
            self.windows_partitioned += 1

    # ------------------------------------------------------------------
    # Technique queries (consume credits)
    # ------------------------------------------------------------------
    def allow_fill_bypass(self, now: int) -> bool:
        self.tick(now)
        if self._fwb.take():
            self.decisions["fwb"] += 1
            return True
        return False

    def allow_write_bypass(self, now: int) -> bool:
        self.tick(now)
        if self._wb.take_scaled(self._wb_cost_scaled):
            self.decisions["wb"] += 1
            return True
        return False

    def allow_forced_miss(self, now: int) -> bool:
        """IFRM: bypass a known-clean hit to main memory."""
        self.tick(now)
        if self._ifrm.take_scaled(self._wb_cost_scaled):
            self.decisions["ifrm"] += 1
            return True
        return False

    def allow_speculative_read(self, now: int) -> bool:
        """SFRM: launch a main-memory read before the tag is known."""
        if not self.enable_sfrm:
            return False
        self.tick(now)
        if self._sfrm.take():
            self.decisions["sfrm"] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Demand recording (delegates to the window stats)
    # ------------------------------------------------------------------
    def note_ms_access(self, count: int = 1) -> None:
        self.stats.note_ms_access(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.stats.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.stats.note_read_miss()

    def note_write(self) -> None:
        self.stats.note_write()

    def note_clean_hit(self) -> None:
        self.stats.note_clean_hit()

    # ------------------------------------------------------------------
    # Introspection (telemetry probes)
    # ------------------------------------------------------------------
    def credit_state(self) -> dict[str, float]:
        """Current credit-counter values in whole accesses."""
        return {
            "fwb": self._fwb.value,
            "wb": self._wb.value,
            "ifrm": self._ifrm.value,
            "sfrm": self._sfrm.value,
        }

    # ------------------------------------------------------------------
    def total_decisions(self) -> int:
        return sum(self.decisions.values())

    def decision_fractions(self) -> dict[str, float]:
        total = self.total_decisions()
        if not total:
            return {k: 0.0 for k in self.decisions}
        return {k: v / total for k, v in self.decisions.items()}
