"""Sectored DRAM cache controller (Sections II, IV-A, VI-A).

Die-stacked HBM cache with 4 KB sectors, 4-way sets, NRU state in SRAM,
sector metadata (valid/dirty masks, tags) in the DRAM array. The
optimized baseline adds a 32K-entry SRAM tag cache so most accesses skip
the in-DRAM metadata read; DAP adds FWB/WB/IFRM/SFRM on top.

Traffic generated per event:

==========================  =========================================
Event                       DRAM accesses
==========================  =========================================
read hit                    1 cache data read (or 1 MM read if IFRM)
read miss                   1 MM read + 1 cache fill write (unless FWB)
tag-cache miss              1 cache metadata read (+1 MM read if SFRM)
dirty tag-cache eviction    1 cache metadata write
L3 dirty eviction           1 cache write (or 1 MM write if WB)
sector eviction             per dirty block: 1 cache read + 1 MM write
footprint prefetch          per block: 1 MM read + 1 cache fill write
==========================  =========================================
"""

from __future__ import annotations

from typing import Optional

from repro.cache.footprint import FootprintPredictor
from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.cache.tag_cache import TagCache
from repro.engine.event_queue import Simulator
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.hierarchy.msc_base import MscController, ReadCallback
from repro.policies.base import SteeringPolicy


class _SfrmRace:
    """Tracks an in-flight SFRM: a speculative MM read racing the
    in-DRAM metadata fetch."""

    __slots__ = ("issued", "mm_finish", "resolved", "use_mm", "delivered")

    def __init__(self) -> None:
        self.issued = False
        self.mm_finish: Optional[int] = None
        self.resolved = False
        self.use_mm = False
        self.delivered = False


class SectoredMscController(MscController):
    """Controller for the sectored (sub-blocked) DRAM cache."""

    def __init__(
        self,
        sim: Simulator,
        cache_dev: MemoryDevice,
        mm_dev: MemoryDevice,
        array: SectoredCacheArray,
        policy: Optional[SteeringPolicy] = None,
        tag_cache: Optional[TagCache] = None,
        footprint: Optional[FootprintPredictor] = None,
    ) -> None:
        super().__init__(sim, cache_dev, mm_dev, policy)
        self.array = array
        self.tag_cache = tag_cache
        self.footprint = footprint
        self.served_hits = 0
        self.served_misses = 0
        # In-flight metadata fetches, merged per sector (MSHR-style):
        # sector id -> continuations to run once the metadata arrives.
        self._meta_waiters: dict[int, list] = {}

    # ------------------------------------------------------------------
    def warm_line(self, line: int, dirty: bool = False) -> None:
        """Install a block without generating DRAM traffic (warmup)."""
        array = self.array
        sector = array.find_sector(line)
        if sector is None:
            array.allocate_sector(line)
            sector = array.find_sector(line)
            if sector is None:  # disabled set: install refused
                return
        bit = 1 << (line % array.blocks_per_sector)
        sector.valid |= bit
        if dirty:
            sector.dirty |= bit

    def warm_many(self, lines) -> int:
        """Batched :meth:`warm_line`: the warm set enumerates regions in
        address order and never revisits a sector once past it, so
        consecutive same-sector lines reuse one resolution (and any
        eviction happens at a sector boundary, before the re-resolve)."""
        array = self.array
        bps = array.blocks_per_sector
        find = array.find_sector
        allocate = array.allocate_sector
        cached_sid = -1
        sector = None
        count = 0
        for line, dirty in lines:
            count += 1
            sid = line // bps
            if sid != cached_sid:
                sector = find(line)
                if sector is None:
                    allocate(line)
                    sector = find(line)  # None when the set is disabled
                cached_sid = sid
            if sector is None:
                continue
            bit = 1 << (line % bps)
            sector.valid |= bit
            if dirty:
                sector.dirty |= bit
        return count

    def warm_sectors(self, groups) -> int:
        """Batched :meth:`warm_many` taking pre-grouped sectors.

        ``groups`` yields ``(line, valid_mask, dirty_mask)`` — one entry
        per sector, in the warm set's address order, with the masks
        OR-reduced over that sector's lines (the numpy backend builds
        them with ``reduceat``).  Equivalent to ``warm_many`` over the
        expanded lines: one resolve/allocate per sector, then a single
        mask OR instead of per-line bit sets.  Returns the line count
        (``valid_mask`` popcounts), matching ``warm_many``'s count even
        for sectors refused by a disabled set.
        """
        array = self.array
        find = array.find_sector
        allocate = array.allocate_sector
        count = 0
        for line, valid_mask, dirty_mask in groups:
            count += valid_mask.bit_count()
            sector = find(line)
            if sector is None:
                allocate(line)
                sector = find(line)  # None when the set is disabled
                if sector is None:
                    continue
            sector.valid |= valid_mask
            sector.dirty |= dirty_mask
        return count

    def _resolve(self, line: int):
        """One-scan (sector, bit, probe, dirty) resolution for ``line``."""
        array = self.array
        sector = array.find_sector(line)
        bit = 1 << (line % array.blocks_per_sector)
        if sector is None:
            return None, bit, SectorProbe.SECTOR_MISS, False
        if sector.valid & bit:
            return sector, bit, SectorProbe.HIT, bool(sector.dirty & bit)
        return sector, bit, SectorProbe.BLOCK_MISS, False

    # ------------------------------------------------------------------
    # Demand read (L3 miss)
    # ------------------------------------------------------------------
    def read(self, line: int, core_id: int, callback: ReadCallback,
             kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_read(now, line, core_id)
        self.stats.reads += 1
        sector = self.array.sector_of(line)

        if self.tag_cache is None:
            # No tag cache: every access pays an in-DRAM metadata read.
            self._fetch_metadata_then_read(line, core_id, callback, now)
            return

        if self.tag_cache.lookup(sector):
            delay = self.tag_cache.lookup_cycles
            self.sim.schedule(
                delay, lambda: self._read_resolved(line, core_id, callback, now)
            )
        else:
            self._fetch_metadata_then_read(line, core_id, callback, now)

    def _fetch_metadata_then_read(
        self, line: int, core_id: int, callback: ReadCallback, issue: int
    ) -> None:
        """Tag-cache miss path: metadata read, optionally raced by SFRM.

        Concurrent accesses to a sector whose metadata fetch is already
        in flight merge onto it rather than issuing more reads.
        """
        now = self.sim.now
        sector = self.array.sector_of(line)
        waiters = self._meta_waiters.get(sector)
        if waiters is not None:
            waiters.append(
                lambda: self._read_resolved(line, core_id, callback, issue)
            )
            return
        self._meta_waiters[sector] = []
        race = _SfrmRace()
        if self.policy.speculative_read(now, line):
            race.issued = True
            self.stats.sfrm_issued += 1
            self.mm_dev.enqueue(
                Request(
                    line=line,
                    kind=AccessKind.SPEC_READ,
                    core_id=core_id,
                    on_complete=lambda r, t: self._sfrm_mm_done(
                        race, issue, t, callback
                    ),
                )
            )
        self.stats.meta_reads += 1
        self.policy.note_ms_access()  # metadata fetch is MS$ demand
        self.cache_dev.enqueue(
            Request(
                line=line,
                kind=AccessKind.META_READ,
                core_id=core_id,
                on_complete=lambda r, t: self._metadata_arrived(
                    line, core_id, callback, issue, race
                ),
            )
        )

    def _sfrm_mm_done(
        self, race: _SfrmRace, issue: int, finish: int, callback: ReadCallback
    ) -> None:
        race.mm_finish = finish
        if race.resolved and race.use_mm and not race.delivered:
            race.delivered = True
            self._finish_read(issue, finish, callback)

    def _metadata_arrived(
        self, line: int, core_id: int, callback: ReadCallback, issue: int,
        race: _SfrmRace,
    ) -> None:
        if self.tag_cache is not None:
            evicted_dirty = self.tag_cache.fill(self.array.sector_of(line))
            if evicted_dirty:
                self._write_metadata(line)
        self._release_meta_waiters(line)
        sfrm_active = race.issued
        sector, bit, probe, dirty_hit = self._resolve(line)

        if sfrm_active and not dirty_hit:
            # Clean hit or miss: the speculative MM response is the data.
            race.resolved = True
            race.use_mm = True
            self.served_misses += 1  # served by MM: a forced miss
            self._account_read_demand(sector, bit, probe, dirty_hit)
            if probe is not SectorProbe.HIT:
                self._handle_fill(line, probe)
            if race.mm_finish is not None and not race.delivered:
                race.delivered = True
                self._finish_read(issue, race.mm_finish, callback)
            return
        if sfrm_active and dirty_hit:
            # Speculation wasted: serve from the cache, drop the MM data.
            race.resolved = True
            race.use_mm = False
            self.stats.sfrm_wasted += 1
        self._read_resolved(line, core_id, callback, issue)

    # ------------------------------------------------------------------
    def _account_read_demand(self, sector, bit: int, probe: SectorProbe,
                             dirty: bool) -> None:
        """Record pre-decision demand and update functional state."""
        self.array.read_resolved(sector, bit)
        if probe is SectorProbe.HIT:
            self.policy.note_ms_access()  # the hit's data read
            if not dirty:
                self.policy.note_clean_hit()
        else:
            self.policy.note_read_miss()
            self.policy.note_mm_access()  # the miss read
            self.policy.note_ms_access()  # the anticipated fill write

    def _read_resolved(
        self, line: int, core_id: int, callback: ReadCallback, issue: int
    ) -> None:
        """Tag state is known: serve the read."""
        now = self.sim.now
        sector, bit, probe, dirty = self._resolve(line)
        self._account_read_demand(sector, bit, probe, dirty)

        if probe is SectorProbe.HIT:
            steer = not dirty and (
                self.policy.force_read_miss(now, line, core_id)
                or self.policy.steer_clean_read(now, line)
            )
            if steer:
                self.stats.ifrm_applied += 1
                self.served_misses += 1
                device = self.mm_dev
            else:
                self.served_hits += 1
                device = self.cache_dev
            device.enqueue(
                Request(
                    line=line,
                    kind=AccessKind.DEMAND_READ,
                    core_id=core_id,
                    on_complete=lambda r, t: self._finish_read(issue, t, callback),
                )
            )
            return

        # Read miss: fetch from main memory, then fill (or bypass).
        self.served_misses += 1
        self.mm_dev.enqueue(
            Request(
                line=line,
                kind=AccessKind.DEMAND_READ,
                core_id=core_id,
                on_complete=lambda r, t: self._miss_data_arrived(
                    line, probe, issue, t, callback
                ),
            )
        )

    def _miss_data_arrived(
        self, line: int, probe: SectorProbe, issue: int, finish: int,
        callback: ReadCallback,
    ) -> None:
        self._finish_read(issue, finish, callback)
        self._handle_fill(line, probe)

    def _handle_fill(self, line: int, probe: SectorProbe) -> None:
        now = self.sim.now
        if self.policy.bypass_fill(now, line):
            self.stats.fwb_applied += 1
            return
        self._install_block(line, dirty=False)

    # ------------------------------------------------------------------
    # Demand write (dirty L3 eviction)
    # ------------------------------------------------------------------
    def write(self, line: int, core_id: int) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_write(now, line)
        self.stats.writes += 1
        sector = self.array.sector_of(line)

        if self.tag_cache is not None and not self.tag_cache.lookup(sector):
            waiters = self._meta_waiters.get(sector)
            if waiters is not None:
                waiters.append(lambda: self._write_resolved(line))
                return
            self._meta_waiters[sector] = []
            self.stats.meta_reads += 1
            self.policy.note_ms_access()
            self.cache_dev.enqueue(
                Request(
                    line=line,
                    kind=AccessKind.META_READ,
                    core_id=core_id,
                    on_complete=lambda r, t: self._write_meta_arrived(line),
                )
            )
            return
        self._write_resolved(line)

    def _write_meta_arrived(self, line: int) -> None:
        if self.tag_cache is not None:
            evicted_dirty = self.tag_cache.fill(self.array.sector_of(line))
            if evicted_dirty:
                self._write_metadata(line)
        self._release_meta_waiters(line)
        self._write_resolved(line)

    def _release_meta_waiters(self, line: int) -> None:
        for continuation in self._meta_waiters.pop(self.array.sector_of(line), []):
            continuation()

    def _write_resolved(self, line: int) -> None:
        now = self.sim.now
        if self.tag_cache is not None:
            evicted_dirty = self.tag_cache.fill(self.array.sector_of(line))
            if evicted_dirty:
                self._write_metadata(line)
        self.policy.note_write()
        self.policy.note_ms_access()  # the write demand on the MS$
        sector, bit, probe, _dirty = self._resolve(line)

        if self.policy.bypass_write(now, line):
            self.stats.wb_applied += 1
            self.served_misses += 1
            if probe is SectorProbe.HIT:
                sector.valid &= ~bit
                sector.dirty &= ~bit
                self._mark_meta_dirty(line)
            self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WRITEBACK))
            return

        if probe is SectorProbe.HIT:
            self.served_hits += 1
        else:
            self.served_misses += 1
        self._install_block(line, dirty=True, sector=sector, bit=bit)
        if self.policy.write_through(now, line):
            self.stats.write_throughs += 1
            self.array.clean_block(line)
            self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WT_WRITE))

    # ------------------------------------------------------------------
    # Fills, allocation, eviction maintenance
    # ------------------------------------------------------------------
    def _install_block(self, line: int, dirty: bool,
                       sector=None, bit: Optional[int] = None) -> None:
        """Write a block into the cache, allocating its sector if needed.

        Callers that already resolved the sector (via :meth:`_resolve`)
        pass ``sector``/``bit`` to skip the repeat scan.
        """
        array = self.array
        if bit is None:
            bit = 1 << (line % array.blocks_per_sector)
            sector = array.find_sector(line)
        if sector is None:
            self._allocate_sector(line)
            sector = array.find_sector(line)
            if sector is None:
                # Allocation refused (disabled set, e.g. under BATMAN):
                # dirty data must still reach main memory; clean fills
                # are dropped.
                if dirty:
                    self.mm_dev.enqueue(
                        Request(line=line, kind=AccessKind.WRITEBACK))
                return
        if dirty:
            array.write_resolved(sector, bit)
            kind = AccessKind.L4_WRITE
        else:
            sector.valid |= bit
            kind = AccessKind.FILL_WRITE
        self._mark_meta_dirty(line)
        self.cache_dev.enqueue(Request(line=line, kind=kind))

    def _allocate_sector(self, line: int) -> None:
        eviction = self.array.allocate_sector(line)
        sector = self.array.sector_of(line)
        if eviction is not None:
            if self.footprint is not None:
                self.footprint.record(eviction.sector_id, eviction.touched_mask)
            if self.tag_cache is not None:
                self.tag_cache.invalidate(eviction.sector_id)
            # Victim's dirty blocks: cache reads + MM writebacks.
            for victim_line in eviction.dirty_lines:
                self.policy.note_ms_access()  # evict read demand
                self.policy.note_mm_access()  # writeback demand
            self.writeback_lines(eviction.dirty_lines)
        if self.footprint is not None:
            mask = self.footprint.predict(sector, self.array.block_of(line))
            if mask:
                self._prefetch_footprint(sector, mask)

    def _prefetch_footprint(self, sector: int, mask: int) -> None:
        base = sector * self.array.blocks_per_sector
        for block in range(self.array.blocks_per_sector):
            if not mask & (1 << block):
                continue
            pf_line = base + block
            self.stats.footprint_prefetches += 1
            self.policy.note_mm_access()
            self.policy.note_ms_access()
            self.mm_dev.enqueue(
                Request(
                    line=pf_line,
                    kind=AccessKind.FOOTPRINT_READ,
                    on_complete=lambda r, t: self._footprint_fill(r.line),
                )
            )

    def _footprint_fill(self, line: int) -> None:
        if self.array.fill_block(line):
            self._mark_meta_dirty(line)
            self.cache_dev.enqueue(Request(line=line, kind=AccessKind.FILL_WRITE))

    # ------------------------------------------------------------------
    # Metadata plumbing
    # ------------------------------------------------------------------
    def _mark_meta_dirty(self, line: int) -> None:
        """Sector state changed; with a tag cache the update is deferred
        to tag-cache eviction, otherwise it is written immediately."""
        if self.tag_cache is not None:
            self.tag_cache.mark_dirty(self.array.sector_of(line))
        else:
            self._write_metadata(line)

    def _write_metadata(self, line: int) -> None:
        self.stats.meta_writes += 1
        self.policy.note_ms_access()
        self.cache_dev.enqueue(Request(line=line, kind=AccessKind.META_WRITE))

    # ------------------------------------------------------------------
    def served_hit_rate(self) -> float:
        """Delivered hit rate: reads/writes served by the cache as a
        fraction of all demand; forced misses count as misses (Fig. 8)."""
        total = self.served_hits + self.served_misses
        return self.served_hits / total if total else 0.0
