"""Sectored eDRAM cache controller (Sections IV-C, VI-C).

All tags on die (8-cycle SRAM lookup), 1 KB sectors, 16-way, and —
the distinguishing feature — *independent* read and write channel sets,
each 51.2 GB/s. Fills ride the write channels, so read misses do not
steal read bandwidth (the source of Fig. 1's eDRAM curve).

DAP techniques here are FWB, WB and IFRM, dispatched by which channel
set is oversubscribed (Equations 9-12); SFRM is pointless because there
is no in-DRAM metadata to wait for.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.engine.event_queue import Simulator
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.hierarchy.msc_base import MscController, ReadCallback
from repro.policies.base import SteeringPolicy

EDRAM_TAG_LATENCY = 8  # on-die SRAM metadata lookup, CPU cycles at 4 GHz


class EdramMscController(MscController):
    """Controller for the sectored eDRAM cache (three bandwidth sources)."""

    def __init__(
        self,
        sim: Simulator,
        cache_read_dev: MemoryDevice,
        cache_write_dev: MemoryDevice,
        mm_dev: MemoryDevice,
        array: SectoredCacheArray,
        policy: Optional[SteeringPolicy] = None,
        tag_latency: int = EDRAM_TAG_LATENCY,
    ) -> None:
        # The read channels act as `cache_dev` for base-class services.
        super().__init__(sim, cache_read_dev, mm_dev, policy)
        self.cache_read_dev = cache_read_dev
        self.cache_write_dev = cache_write_dev
        self.array = array
        self.tag_latency = tag_latency
        self.served_hits = 0
        self.served_misses = 0

    # ------------------------------------------------------------------
    def warm_line(self, line: int, dirty: bool = False) -> None:
        """Install a block without generating DRAM traffic (warmup)."""
        if not self.array.sector_present(line):
            self.array.allocate_sector(line)
        if self.array.sector_present(line):
            self.array.fill_block(line, dirty=dirty)

    # ------------------------------------------------------------------
    # Demand read
    # ------------------------------------------------------------------
    def read(self, line: int, core_id: int, callback: ReadCallback,
             kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_read(now, line, core_id)
        self.stats.reads += 1
        self.sim.schedule(self.tag_latency,
                          lambda: self._read_resolved(line, core_id, callback, now))

    def _read_resolved(self, line: int, core_id: int, callback: ReadCallback,
                       issue: int) -> None:
        now = self.sim.now
        probe = self.array.read(line)
        if probe is SectorProbe.HIT:
            dirty = self.array.is_block_dirty(line)
            self.policy.note_ms_read()
            if not dirty:
                self.policy.note_clean_hit()
            if not dirty and self.policy.force_read_miss(now, line, core_id):
                self.stats.ifrm_applied += 1
                self.served_misses += 1
                device = self.mm_dev
            else:
                self.served_hits += 1
                device = self.cache_read_dev
            device.enqueue(
                Request(line=line, kind=AccessKind.DEMAND_READ, core_id=core_id,
                        on_complete=lambda r, t: self._finish_read(issue, t, callback))
            )
            return

        # Read miss.
        self.served_misses += 1
        self.policy.note_read_miss()
        self.policy.note_mm_access()
        self.policy.note_ms_write()  # the anticipated fill on write channels
        self.mm_dev.enqueue(
            Request(line=line, kind=AccessKind.DEMAND_READ, core_id=core_id,
                    on_complete=lambda r, t: self._miss_data(line, issue, t, callback))
        )

    def _miss_data(self, line: int, issue: int, finish: int,
                   callback: ReadCallback) -> None:
        self._finish_read(issue, finish, callback)
        now = self.sim.now
        if self.policy.bypass_fill(now, line):
            self.stats.fwb_applied += 1
            return
        self._install_block(line, dirty=False)

    # ------------------------------------------------------------------
    # Demand write (dirty L3 eviction)
    # ------------------------------------------------------------------
    def write(self, line: int, core_id: int) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_write(now, line)
        self.stats.writes += 1
        self.sim.schedule(self.tag_latency, lambda: self._write_resolved(line))

    def _write_resolved(self, line: int) -> None:
        now = self.sim.now
        self.policy.note_write()
        self.policy.note_ms_write()
        if self.policy.bypass_write(now, line):
            self.stats.wb_applied += 1
            self.served_misses += 1
            if self.array.probe(line) is SectorProbe.HIT:
                self.array.invalidate_block(line)
            self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WRITEBACK))
            return
        if self.array.probe(line) is SectorProbe.HIT:
            self.served_hits += 1
        else:
            self.served_misses += 1
        self._install_block(line, dirty=True)

    # ------------------------------------------------------------------
    # Fills / allocation (write channels)
    # ------------------------------------------------------------------
    def _install_block(self, line: int, dirty: bool) -> None:
        if not self.array.sector_present(line):
            eviction = self.array.allocate_sector(line)
            if eviction is not None:
                for _ in eviction.dirty_lines:
                    self.policy.note_ms_read()   # victim data read
                    self.policy.note_mm_access()  # writeback
                self.writeback_lines(eviction.dirty_lines)
        if not self.array.sector_present(line):
            if dirty:
                self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WRITEBACK))
            return
        if dirty:
            self.array.write(line)
            kind = AccessKind.L4_WRITE
        else:
            self.array.fill_block(line)
            kind = AccessKind.FILL_WRITE
        self.cache_write_dev.enqueue(Request(line=line, kind=kind))

    # ------------------------------------------------------------------
    # Overrides: three bandwidth sources
    # ------------------------------------------------------------------
    def mm_cas_fraction(self) -> float:
        mm = self.mm_dev.total_cas()
        cache = self.cache_read_dev.total_cas() + self.cache_write_dev.total_cas()
        total = mm + cache
        return mm / total if total else 0.0

    def served_hit_rate(self) -> float:
        """Hit rate as delivered (forced misses count as misses)."""
        total = self.served_hits + self.served_misses
        return self.served_hits / total if total else 0.0
