"""Memory-side cache controller base.

A controller owns the cache-side DRAM device(s), the main-memory device,
the functional cache array, and a :class:`~repro.policies.base.SteeringPolicy`.
It receives L3 read misses (``read``) and dirty L3 evictions (``write``)
and turns them into DRAM traffic.

The base class provides the statistics every experiment needs (average
L3 read-miss latency, served counts, technique counts) and the services
policies rely on (queue-based latency estimates, dirty-block cleaning,
bulk flushes).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.event_queue import Simulator
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.policies.base import SteeringPolicy

ReadCallback = Callable[[int], None]  # called with the finish cycle


class MscStats:
    """Controller-level accounting (device CAS counts live on devices)."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.reads_done = 0
        self.read_latency_sum = 0
        self.fwb_applied = 0
        self.wb_applied = 0
        self.ifrm_applied = 0
        self.sfrm_issued = 0
        self.sfrm_wasted = 0        # speculative reads whose data was dropped
        self.write_throughs = 0
        self.victim_dirty_lines = 0
        self.footprint_prefetches = 0
        self.meta_reads = 0
        self.meta_writes = 0

    def avg_read_latency(self) -> float:
        return self.read_latency_sum / self.reads_done if self.reads_done else 0.0

    @property
    def outstanding_reads(self) -> int:
        """Demand reads accepted but not yet completed."""
        return self.reads - self.reads_done


class MscController:
    """Shared behaviour of all memory-side cache controllers."""

    def __init__(
        self,
        sim: Simulator,
        cache_dev: MemoryDevice,
        mm_dev: MemoryDevice,
        policy: Optional[SteeringPolicy] = None,
    ) -> None:
        self.sim = sim
        self.cache_dev = cache_dev
        self.mm_dev = mm_dev
        self.policy = policy if policy is not None else SteeringPolicy()
        self.policy.bind(self)
        self.stats = MscStats()

    # ------------------------------------------------------------------
    # Interface used by the L3 / hierarchy (subclasses implement)
    # ------------------------------------------------------------------
    def read(self, line: int, core_id: int, callback: ReadCallback,
             kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        raise NotImplementedError

    def write(self, line: int, core_id: int) -> None:
        raise NotImplementedError

    def warm_line(self, line: int, dirty: bool = False) -> None:
        """Functionally install a block (pre-run warmup; no DRAM traffic).

        Stands in for the paper's warmup phase: after a billion warmup
        instructions the memory-side cache holds the workload's warm set.
        """
        raise NotImplementedError

    def warm_many(self, lines) -> int:
        """Install ``(line, dirty)`` pairs (pre-run warmup); returns the
        count. Equivalent to calling :meth:`warm_line` per pair;
        controllers may override with a batched fast path."""
        warm = self.warm_line
        count = 0
        for line, dirty in lines:
            warm(line, dirty)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Services for policies
    # ------------------------------------------------------------------
    def mm_read_latency_estimate(self, line: int) -> int:
        """Expected main-memory service latency for a read to ``line``."""
        return self.mm_dev.channel_of(line).expected_read_latency()

    def cache_read_latency_estimate(self, line: int) -> int:
        """Expected cache-side service latency for a read to ``line``."""
        return self.cache_dev.channel_of(line).expected_read_latency()

    def charge_tag_update(self, line: int) -> None:
        """Charge one in-DRAM metadata write against the cache device.

        Banshee-style policies keep replacement state (frequency
        counters) with the in-DRAM tags; maintaining it is real
        cache-DRAM write traffic, accounted like any other metadata
        write."""
        self.stats.meta_writes += 1
        self.policy.note_ms_access()
        self.cache_dev.enqueue(Request(line=line, kind=AccessKind.META_WRITE))

    def writeback_lines(self, lines: list[int], read_from_cache: bool = True) -> None:
        """Move dirty blocks to main memory (victim cleaning).

        Each line costs an EVICT_READ on the cache device (unless the
        data is already in hand) chained to a WRITEBACK on main memory.
        """
        for line in lines:
            self.stats.victim_dirty_lines += 1
            if read_from_cache:
                self.cache_dev.enqueue(
                    Request(
                        line=line,
                        kind=AccessKind.EVICT_READ,
                        on_complete=lambda r, t: self.mm_dev.enqueue(
                            Request(line=r.line, kind=AccessKind.WRITEBACK)
                        ),
                    )
                )
            else:
                self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WRITEBACK))

    # ------------------------------------------------------------------
    # Aggregate metrics used by the experiments
    # ------------------------------------------------------------------
    def mm_cas_fraction(self) -> float:
        """Fraction of all CAS ops served by main memory (Figs. 8, 14)."""
        mm = self.mm_dev.total_cas()
        cache = self.cache_dev.total_cas()
        total = mm + cache
        return mm / total if total else 0.0

    def _finish_read(self, issue_cycle: int, finish: int,
                     callback: ReadCallback) -> None:
        self.stats.reads_done += 1
        self.stats.read_latency_sum += finish - issue_cycle
        callback(finish)
