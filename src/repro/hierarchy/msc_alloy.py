"""Alloy cache controller (Sections IV-B, VI-B).

Direct-mapped DRAM cache whose tag travels with the data (72-byte TAD,
three HBM channel cycles). Baseline features, following the paper's
optimized setup:

- a hit/miss predictor initiates miss handling (the MM read) in parallel
  with the TAD fetch;
- an L3 presence bit lets writes skip the TAD fetch entirely (a BEAR
  optimization the paper adopts);
- a dirty-bit cache (DBC) in one borrowed L3 way provides the
  clean/dirty state of a set without touching DRAM — the enabler for
  DAP's IFRM.

DAP adds IFRM (clean sets only) plus opportunistic write-through to keep
sets clean; BEAR adds dueling-based fill bypass via the policy hook.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.alloy import TAD_BURST_DEVICE_CYCLES, AlloyCacheArray
from repro.cache.dbc import DirtyBitCache
from repro.engine.event_queue import Simulator
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.hierarchy.msc_base import MscController, ReadCallback
from repro.policies.base import SteeringPolicy


class AlloyHitPredictor:
    """Region-hashed 2-bit hit/miss predictor (stands in for the paper's
    program-counter-indexed predictor, which a trace without PCs cannot
    index)."""

    def __init__(self, entries: int = 4096) -> None:
        self.entries = entries
        self._counters = [2] * entries  # weakly predict hit
        self.correct = 0
        self.wrong = 0

    def _index(self, core_id: int, line: int) -> int:
        region = line >> 6  # 4 KB region
        return (region * 2654435761 + core_id * 97) % self.entries

    def predict_hit(self, core_id: int, line: int) -> bool:
        return self._counters[self._index(core_id, line)] >= 2

    def update(self, core_id: int, line: int, was_hit: bool) -> None:
        idx = self._index(core_id, line)
        predicted = self._counters[idx] >= 2
        if predicted == was_hit:
            self.correct += 1
        else:
            self.wrong += 1
        if was_hit:
            self._counters[idx] = min(3, self._counters[idx] + 1)
        else:
            self._counters[idx] = max(0, self._counters[idx] - 1)


class AlloyMscController(MscController):
    """Controller for the direct-mapped Alloy (TAD) cache."""

    def __init__(
        self,
        sim: Simulator,
        cache_dev: MemoryDevice,
        mm_dev: MemoryDevice,
        array: AlloyCacheArray,
        policy: Optional[SteeringPolicy] = None,
        dbc: Optional[DirtyBitCache] = None,
        predictor: Optional[AlloyHitPredictor] = None,
    ) -> None:
        super().__init__(sim, cache_dev, mm_dev, policy)
        self.array = array
        self.dbc = dbc
        self.predictor = predictor if predictor is not None else AlloyHitPredictor()
        self.served_hits = 0
        self.served_misses = 0

    # ------------------------------------------------------------------
    def _tad_request(self, line: int, kind: AccessKind, on_complete=None) -> Request:
        return Request(line=line, kind=kind, burst_override=TAD_BURST_DEVICE_CYCLES,
                       on_complete=on_complete)

    def _dbc_clean(self, line: int) -> bool:
        """True when the DBC *knows* the accessed set is clean."""
        if self.dbc is None:
            return False
        set_idx = self.array.set_index(line)
        result = self.dbc.lookup(set_idx)
        if result is None:
            # Install the group from array state (functional shortcut for
            # the hardware's gradual population).
            mask = 0
            group = self.dbc.group_of(set_idx)
            base = group * self.dbc.group_sets
            for offset in range(self.dbc.group_sets):
                if self.array.set_is_dirty(base + offset):
                    mask |= 1 << offset
            self.dbc.fill_group(set_idx, mask)
            return False
        return result is False

    # ------------------------------------------------------------------
    def warm_line(self, line: int, dirty: bool = False) -> None:
        """Install a block without generating DRAM traffic (warmup)."""
        self.array.fill(line, dirty=dirty)

    # ------------------------------------------------------------------
    # Demand read
    # ------------------------------------------------------------------
    def read(self, line: int, core_id: int, callback: ReadCallback,
             kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_read(now, line, core_id)
        self.stats.reads += 1

        hit = self.array.read(line)
        # Demand accounting: every read costs a TAD fetch; misses add the
        # MM read and the anticipated fill write.
        self.policy.note_ms_access()
        if hit:
            if not self.array.is_dirty(line):
                self.policy.note_clean_hit()
        else:
            self.policy.note_read_miss()
            self.policy.note_mm_access()
            self.policy.note_ms_access()  # fill TAD write

        # IFRM: a DBC-known-clean set can be served by main memory with
        # no TAD fetch at all; an absent line doubles as a fill bypass.
        if self._dbc_clean(line) and self.policy.force_read_miss(now, line, core_id):
            self.stats.ifrm_applied += 1
            self.served_misses += 1
            if not hit:
                self.stats.fwb_applied += 1
            self.mm_dev.enqueue(
                Request(line=line, kind=AccessKind.DEMAND_READ, core_id=core_id,
                        on_complete=lambda r, t: self._finish_read(now, t, callback))
            )
            self.predictor.update(core_id, line, hit)
            return

        if hit:
            self.served_hits += 1
        else:
            self.served_misses += 1

        predicted_hit = self.predictor.predict_hit(core_id, line)
        self.predictor.update(core_id, line, hit)

        if hit:
            # TAD fetch returns the data.
            self.cache_dev.enqueue(
                self._tad_request(
                    line, AccessKind.TAD_READ,
                    on_complete=lambda r, t: self._finish_read(now, t, callback),
                )
            )
            if not predicted_hit:
                # Mispredicted miss: the speculative MM read was wasted.
                self.stats.sfrm_wasted += 1
                self.mm_dev.enqueue(Request(line=line, kind=AccessKind.SPEC_READ))
            return

        # Actual miss.
        if predicted_hit:
            # Serial: TAD fetch discovers the miss, then the MM read.
            self.cache_dev.enqueue(
                self._tad_request(
                    line, AccessKind.TAD_READ,
                    on_complete=lambda r, t: self._miss_after_tad(
                        line, core_id, now, callback
                    ),
                )
            )
        else:
            # Early miss handling: MM read in parallel with the TAD probe.
            self.cache_dev.enqueue(self._tad_request(line, AccessKind.TAD_READ))
            self.mm_dev.enqueue(
                Request(line=line, kind=AccessKind.DEMAND_READ, core_id=core_id,
                        on_complete=lambda r, t: self._miss_data(
                            line, now, t, callback
                        ))
            )

    def _miss_after_tad(self, line: int, core_id: int, issue: int,
                        callback: ReadCallback) -> None:
        self.mm_dev.enqueue(
            Request(line=line, kind=AccessKind.DEMAND_READ, core_id=core_id,
                    on_complete=lambda r, t: self._miss_data(line, issue, t, callback))
        )

    def _miss_data(self, line: int, issue: int, finish: int,
                   callback: ReadCallback) -> None:
        self._finish_read(issue, finish, callback)
        now = self.sim.now
        if self.policy.bypass_fill(now, line):
            self.stats.fwb_applied += 1
            return
        self._fill(line, dirty=False)

    # ------------------------------------------------------------------
    # Demand write (dirty L3 eviction)
    # ------------------------------------------------------------------
    def write(self, line: int, core_id: int) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self.policy.on_write(now, line)
        self.stats.writes += 1
        self.policy.note_write()
        self.policy.note_ms_access()  # the TAD write

        # The L3 presence bit means no TAD fetch is needed to decide.
        present = self.array.probe(line)
        if present:
            self.array.write(line)
            self.served_hits += 1
            self.cache_dev.enqueue(self._tad_request(line, AccessKind.TAD_WRITE))
            self._set_dbc(line, dirty=True)
            if self.policy.write_through(now, line):
                self.stats.write_throughs += 1
                self.array.clean(line)
                self._set_dbc(line, dirty=False)
                self.mm_dev.enqueue(Request(line=line, kind=AccessKind.WT_WRITE))
            return

        # Write miss: install in place (write-allocate via a TAD write).
        self.array.write(line)  # records the miss
        self.served_misses += 1
        self._fill(line, dirty=True)

    # ------------------------------------------------------------------
    # Fills and victims
    # ------------------------------------------------------------------
    def _fill(self, line: int, dirty: bool) -> None:
        eviction = self.array.fill(line, dirty=dirty)
        if eviction is not None and eviction.dirty:
            # The displaced TAD must reach main memory; its data was
            # obtained by the TAD read that discovered the miss.
            self.policy.note_mm_access()
            self.writeback_lines([eviction.line], read_from_cache=False)
        self.cache_dev.enqueue(self._tad_request(line, AccessKind.TAD_WRITE))
        self._set_dbc(line, dirty=dirty)

    def _set_dbc(self, line: int, dirty: bool) -> None:
        if self.dbc is not None:
            self.dbc.set_dirty(self.array.set_index(line), dirty)

    # ------------------------------------------------------------------
    def served_hit_rate(self) -> float:
        """Hit rate as delivered (IFRM-served reads count as misses)."""
        total = self.served_hits + self.served_misses
        return self.served_hits / total if total else 0.0
