"""System assembly: cores, SRAM hierarchy, memory-side cache controllers.

- :mod:`repro.hierarchy.msc_base` — controller base (stats + policy
  services);
- :mod:`repro.hierarchy.msc_sectored` — sectored DRAM cache controller
  (tag cache, SFRM, footprint prefetch, sector eviction maintenance);
- :mod:`repro.hierarchy.msc_alloy` — Alloy cache controller (TAD
  traffic, hit/miss predictor, DBC);
- :mod:`repro.hierarchy.msc_edram` — sectored eDRAM controller
  (separate read/write channel sets, on-die tags);
- :mod:`repro.hierarchy.cpu_core` — trace-driven ROB/MSHR core model;
- :mod:`repro.hierarchy.cache_hierarchy` — L1/L2/L3 with stride
  prefetching and writeback plumbing;
- :mod:`repro.hierarchy.system` — configuration plus the top-level
  :class:`~repro.hierarchy.system.System` runner.
"""

from repro.hierarchy.msc_base import MscController, MscStats
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.hierarchy.msc_alloy import AlloyMscController
from repro.hierarchy.msc_edram import EdramMscController
from repro.hierarchy.cpu_core import TraceCore
from repro.hierarchy.cache_hierarchy import CacheHierarchy, SramLevels
from repro.hierarchy.system import System, SystemConfig, build_system

__all__ = [
    "MscController",
    "MscStats",
    "SectoredMscController",
    "AlloyMscController",
    "EdramMscController",
    "TraceCore",
    "CacheHierarchy",
    "SramLevels",
    "System",
    "SystemConfig",
    "build_system",
]
