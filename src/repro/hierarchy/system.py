"""Full-system assembly and run loop.

:class:`SystemConfig` captures everything the paper varies (core count,
memory-side cache kind/capacity/bandwidth, main-memory technology,
policy, DAP parameters); :func:`build_system` wires devices, arrays,
policy and cores together; :class:`System` runs the traces to completion
and exposes the raw components for metric collection.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.cache.alloy import AlloyCacheArray
from repro.cache.dbc import DirtyBitCache
from repro.cache.footprint import FootprintPredictor
from repro.cache.sectored import SectoredCacheArray
from repro.cache.tag_cache import TagCache
from repro.engine.clock import accesses_per_cpu_cycle
from repro.engine.event_queue import Simulator
from repro.errors import ConfigError
from repro.hierarchy.cache_hierarchy import CacheHierarchy, SramLevels
from repro.hierarchy.cpu_core import TraceCore, TraceEntry
from repro.hierarchy.msc_alloy import AlloyMscController
from repro.hierarchy.msc_base import MscController
from repro.hierarchy.msc_edram import EdramMscController
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import DramConfig, ddr4_2400, edram_channels, hbm_102
from repro.mem.device import MemoryDevice
from repro.policies.banshee import BansheePolicy
from repro.policies.base import BaselinePolicy, SteeringPolicy
from repro.policies.batman import BatmanPolicy
from repro.policies.bear import BearFillPolicy
from repro.policies.cbp import CbpPolicy
from repro.policies.dap import (DapAlloyPolicy, DapEdramPolicy,
                                DapSectoredPolicy, ThreadAwareDapPolicy)
from repro.policies.sbd import SbdPolicy
from repro.policies.tuntu import TuntuPolicy

GiB = 1 << 30
MiB = 1 << 20

POLICY_NAMES = (
    "baseline", "dap", "dap-ta", "dap-fwb", "dap-fwb-wb", "dap-no-sfrm",
    "sbd", "sbd-wt", "batman", "bear",
    "banshee", "banshee-always", "tuntu", "cbp",
)


@dataclass(frozen=True)
class SystemConfig:
    """One evaluated platform (defaults = the paper's Section V system)."""

    num_cores: int = 8
    cpu_ghz: float = 4.0
    # Memory-side cache.
    msc_kind: str = "sectored"              # sectored | alloy | edram
    msc_capacity_bytes: int = 4 * GiB
    msc_assoc: int = 4
    sector_bytes: int = 4096
    msc_dram: DramConfig = field(default_factory=hbm_102)
    use_tag_cache: bool = True
    use_footprint: bool = True
    # Main memory.
    mm_dram: DramConfig = field(default_factory=ddr4_2400)
    # SRAM metadata structures (scaled alongside the cache capacity).
    tag_cache_entries: int = 32 * 1024
    dbc_entries: int = 32 * 1024
    footprint_entries: int = 64 * 1024
    # Steering policy.
    policy: str = "baseline"
    dap_window: int = 64
    dap_efficiency: float = 0.75
    # SRAM hierarchy and cores.
    sram: SramLevels = field(default_factory=SramLevels)
    enable_prefetch: bool = True
    rob_entries: int = 224
    width: int = 4
    mshrs: int = 16

    def __post_init__(self) -> None:
        if self.msc_kind not in ("sectored", "alloy", "edram"):
            raise ConfigError(f"unknown msc_kind {self.msc_kind!r}")
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {POLICY_NAMES}"
            )
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")

    def with_policy(self, policy: str) -> "SystemConfig":
        return replace(self, policy=policy)

    def key(self) -> str:
        """Stable identity for memoizing per-workload alone-run IPCs."""
        return (
            f"{self.msc_kind}/{self.msc_capacity_bytes}/{self.msc_dram.name}/"
            f"{self.mm_dram.name}/{self.sram.l3_bytes}/pf{self.enable_prefetch}"
        )


def _make_policy(config: SystemConfig, b_ms: float, b_mm: float) -> SteeringPolicy:
    name = config.policy
    if name == "baseline":
        return BaselinePolicy()
    if name in ("dap", "dap-ta", "dap-fwb", "dap-fwb-wb", "dap-no-sfrm"):
        if config.msc_kind == "sectored":
            cls = ThreadAwareDapPolicy if name == "dap-ta" else DapSectoredPolicy
            return cls(
                b_ms=b_ms,
                b_mm=b_mm,
                window=config.dap_window,
                efficiency=config.dap_efficiency,
                enable_sfrm=(name in ("dap", "dap-ta")) and config.use_tag_cache,
                enable_ifrm=name not in ("dap-fwb", "dap-fwb-wb"),
                enable_wb=name != "dap-fwb",
            )
        if config.msc_kind == "alloy":
            return DapAlloyPolicy(b_ms=b_ms, b_mm=b_mm, window=config.dap_window,
                                  efficiency=config.dap_efficiency)
        return DapEdramPolicy(b_ms=b_ms, b_mm=b_mm, window=config.dap_window,
                              efficiency=config.dap_efficiency)
    if name == "sbd":
        return SbdPolicy(force_cleaning=True)
    if name == "sbd-wt":
        return SbdPolicy(force_cleaning=False)
    if name == "batman":
        return BatmanPolicy()
    if name == "bear":
        if config.msc_kind != "alloy":
            raise ConfigError("BEAR applies to the Alloy cache only")
        return BearFillPolicy()
    if name == "banshee":
        return BansheePolicy()
    if name == "banshee-always":
        return BansheePolicy(fill_threshold=0)
    if name == "tuntu":
        return TuntuPolicy()
    if name == "cbp":
        return CbpPolicy()
    raise ConfigError(f"unknown policy {name!r}")


def _build_msc(sim: Simulator, config: SystemConfig) -> MscController:
    mm_dev = MemoryDevice(sim, config.mm_dram, cpu_ghz=config.cpu_ghz)
    b_mm = accesses_per_cpu_cycle(config.mm_dram.peak_gbps, cpu_ghz=config.cpu_ghz)

    if config.msc_kind == "edram":
        read_dev = MemoryDevice(sim, edram_channels("read"), cpu_ghz=config.cpu_ghz)
        write_dev = MemoryDevice(sim, edram_channels("write"), cpu_ghz=config.cpu_ghz)
        b_ms = accesses_per_cpu_cycle(read_dev.peak_gbps, cpu_ghz=config.cpu_ghz)
        array = SectoredCacheArray(
            "edram", config.msc_capacity_bytes, assoc=config.msc_assoc,
            sector_bytes=config.sector_bytes,
        )
        policy = _make_policy(config, b_ms, b_mm)
        return EdramMscController(sim, read_dev, write_dev, mm_dev, array, policy)

    cache_dev = MemoryDevice(sim, config.msc_dram, cpu_ghz=config.cpu_ghz)
    b_ms = accesses_per_cpu_cycle(config.msc_dram.peak_gbps, cpu_ghz=config.cpu_ghz)
    policy = _make_policy(config, b_ms, b_mm)

    if config.msc_kind == "alloy":
        array = AlloyCacheArray("alloy", config.msc_capacity_bytes)
        return AlloyMscController(sim, cache_dev, mm_dev, array, policy,
                                  dbc=DirtyBitCache(entries=config.dbc_entries))

    array = SectoredCacheArray(
        "dram-cache", config.msc_capacity_bytes, assoc=config.msc_assoc,
        sector_bytes=config.sector_bytes,
    )
    return SectoredMscController(
        sim, cache_dev, mm_dev, array, policy,
        tag_cache=(TagCache(entries=config.tag_cache_entries)
                   if config.use_tag_cache else None),
        footprint=(FootprintPredictor(capacity=config.footprint_entries)
                   if config.use_footprint else None),
    )


class System:
    """A built platform plus its cores, ready to run."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        msc: MscController,
        hierarchy: CacheHierarchy,
        cores: list[TraceCore],
    ) -> None:
        self.sim = sim
        self.config = config
        self.msc = msc
        self.hierarchy = hierarchy
        self.cores = cores
        #: Optional telemetry hub (see :mod:`repro.obs`); installed by
        #: the run helpers, started on :meth:`run`.
        self.telemetry = None
        self._done = 0

    def _core_done(self, core: TraceCore) -> None:
        self._done += 1

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run every core's trace to completion (plus queue drain).

        The cyclic garbage collector is paused for the duration of the
        event loop: the simulation allocates millions of short-lived
        requests/events that reference counting already reclaims, so
        generational scans are pure overhead. Purely a wall-clock
        matter — object lifetimes and results are unchanged.
        """
        for core in self.cores:
            core.start()
        if self.telemetry is not None:
            self.telemetry.start()
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if max_cycles is not None:
                self.sim.run(until=max_cycles)
            else:
                self.sim.run()
        finally:
            if gc_was_enabled:
                gc.enable()
        for core in self.cores:
            if not core.done:
                core.finish_cycle = self.sim.now or 1
                core.done = True

    @property
    def cycles(self) -> int:
        return max((core.finish_cycle or 0) for core in self.cores)

    def ipcs(self) -> list[float]:
        return [core.ipc for core in self.cores]


def build_system(
    config: SystemConfig, traces: Sequence[Iterable[TraceEntry]]
) -> System:
    """Assemble a system running one trace per core."""
    if len(traces) != config.num_cores:
        raise ConfigError(
            f"{config.num_cores} cores but {len(traces)} traces supplied"
        )
    sim = Simulator()
    msc = _build_msc(sim, config)
    hierarchy = CacheHierarchy(
        sim, config.num_cores, msc, levels=config.sram,
        enable_prefetch=config.enable_prefetch,
    )
    system_cores: list[TraceCore] = []
    system = System(sim, config, msc, hierarchy, system_cores)
    for core_id, trace in enumerate(traces):
        system_cores.append(
            TraceCore(
                sim, core_id, trace, hierarchy,
                rob_entries=config.rob_entries, width=config.width,
                mshrs=config.mshrs, on_done=system._core_done,
            )
        )
    return system
