"""Trace-driven core with ROB-window and MSHR-limited memory parallelism.

The core consumes a trace of ``(gap, is_write, line)`` tuples — ``gap``
non-memory instructions followed by one memory instruction to 64-byte
line ``line``. Dispatch is in order at ``width`` instructions/cycle;
memory-level parallelism is bounded by two structural limits, which are
what matter for a bandwidth study:

- **ROB window**: instruction ``i`` cannot dispatch until the load at
  ``i - rob_entries`` has completed (a stalled load at the ROB head
  eventually blocks the front end);
- **MSHRs**: at most ``mshrs`` L3 misses (loads or store RFOs) may be
  outstanding.

Loads that hit in SRAM complete at a known small latency; L3 misses
complete when the memory-side subsystem delivers the line. The paper's
methodology scales core buffers so streaming kernels can demand the
combined cache+memory bandwidth; tests assert our model does the same.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from repro.engine.event_queue import Simulator
from repro.hierarchy.cache_hierarchy import CacheHierarchy

TraceEntry = tuple[int, bool, int]  # (gap instructions, is_write, line)


class TraceCore:
    """One simulated core executing a memory-instruction trace."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        trace: Iterable[TraceEntry],
        hierarchy: CacheHierarchy,
        rob_entries: int = 224,
        width: int = 4,
        mshrs: int = 16,
        on_done: Optional[Callable[["TraceCore"], None]] = None,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.rob_entries = rob_entries
        self.width = width
        self.mshrs = mshrs
        self.on_done = on_done

        self._trace: Iterator[TraceEntry] = iter(trace)
        self._pending: Optional[TraceEntry] = None
        self._exhausted = False

        self.instr_count = 0
        self._vtime = 0.0                 # width-limited dispatch clock
        # In-flight loads as [instr_idx, done_cycle or None], FIFO order.
        self._outstanding: deque[list] = deque()
        self._misses_inflight = 0
        self._wake_scheduled = False
        self.done = False
        self.finish_cycle: Optional[int] = None
        self.loads = 0
        self.stores = 0
        self.l3_miss_loads = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.at(self.sim.now, self._run)

    @property
    def ipc(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.instr_count / self.finish_cycle

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[TraceEntry]:
        if self._pending is None and not self._exhausted:
            self._pending = next(self._trace, None)
            if self._pending is None:
                self._exhausted = True
        return self._pending

    def _consume(self) -> None:
        self._pending = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self.done:
            return
        self._wake_scheduled = False
        now = self.sim.now
        while True:
            entry = self._peek()
            if entry is None:
                self._maybe_finish(now)
                return
            gap, is_write, line = entry
            idx = self.instr_count + gap
            t = self._vtime + gap / self.width

            # ROB window: retire (or stall on) loads falling out of it.
            window_floor = idx - self.rob_entries
            blocked = False
            while self._outstanding and self._outstanding[0][0] <= window_floor:
                head = self._outstanding[0]
                if head[1] is None:
                    blocked = True  # stalled on an in-flight miss
                    break
                t = max(t, head[1])
                self._outstanding.popleft()
            if blocked:
                return  # the miss's fill callback wakes us

            # MSHR limit: wait for any completion.
            if self._misses_inflight >= self.mshrs:
                return

            if t > now:
                self._schedule_wake(math.ceil(t))
                return

            # Dispatch the memory instruction now.
            self._consume()
            self.instr_count = idx + 1
            self._vtime = max(t, self._vtime) + 1.0 / self.width

            if is_write:
                self.stores += 1
                lat = self.hierarchy.store(self.core_id, line,
                                           on_fill=self._store_fill)
                if lat is None:
                    self._misses_inflight += 1
            else:
                self.loads += 1
                record = [idx, None]
                lat = self.hierarchy.load(
                    self.core_id, line,
                    on_fill=lambda finish, rec=record: self._load_fill(rec, finish),
                )
                if lat is None:
                    self.l3_miss_loads += 1
                    self._misses_inflight += 1
                else:
                    record[1] = now + lat
                self._outstanding.append(record)

    # ------------------------------------------------------------------
    def _load_fill(self, record: list, finish: int) -> None:
        record[1] = finish
        self._misses_inflight -= 1
        self._schedule_wake(self.sim.now)

    def _store_fill(self, finish: int) -> None:
        self._misses_inflight -= 1
        self._schedule_wake(self.sim.now)

    def _schedule_wake(self, when: int) -> None:
        if self._wake_scheduled or self.done:
            return
        self._wake_scheduled = True
        self.sim.at(max(when, self.sim.now), self._run)

    # ------------------------------------------------------------------
    def _maybe_finish(self, now: int) -> None:
        if any(rec[1] is None for rec in self._outstanding):
            return  # fills pending; their callbacks wake us
        if self._misses_inflight > 0:
            return  # store RFOs pending
        last_done = max((rec[1] for rec in self._outstanding), default=0)
        self._outstanding.clear()
        self.done = True
        self.finish_cycle = max(now, math.ceil(self._vtime), last_done, 1)
        if self.on_done is not None:
            self.on_done(self)
