"""Trace-driven core with ROB-window and MSHR-limited memory parallelism.

The core consumes a trace of ``(gap, is_write, line)`` tuples — ``gap``
non-memory instructions followed by one memory instruction to 64-byte
line ``line``. Dispatch is in order at ``width`` instructions/cycle;
memory-level parallelism is bounded by two structural limits, which are
what matter for a bandwidth study:

- **ROB window**: instruction ``i`` cannot dispatch until the load at
  ``i - rob_entries`` has completed (a stalled load at the ROB head
  eventually blocks the front end);
- **MSHRs**: at most ``mshrs`` L3 misses (loads or store RFOs) may be
  outstanding.

Loads that hit in SRAM complete at a known small latency; L3 misses
complete when the memory-side subsystem delivers the line. The paper's
methodology scales core buffers so streaming kernels can demand the
combined cache+memory bandwidth; tests assert our model does the same.

``_run`` executes once per memory instruction across every core, making
it the single hottest Python frame in a simulation; it binds its loop
state to locals and inlines the trace peek/consume bookkeeping. The
hierarchy never invokes fill callbacks synchronously from ``load``/
``store`` (misses complete via later simulator events), so the cached
locals cannot go stale within one ``_run`` activation.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappush as _heappush
from typing import Callable, Iterable, Iterator, Optional

from repro.engine.event_queue import Simulator
from repro.hierarchy.cache_hierarchy import CacheHierarchy

TraceEntry = tuple[int, bool, int]  # (gap instructions, is_write, line)

_ceil = math.ceil


class TraceCore:
    """One simulated core executing a memory-instruction trace."""

    __slots__ = (
        "sim",
        "core_id",
        "hierarchy",
        "rob_entries",
        "width",
        "mshrs",
        "on_done",
        "_trace",
        "_pending",
        "_exhausted",
        "instr_count",
        "_vtime",
        "_inv_width",
        "_outstanding",
        "_misses_inflight",
        "_wake_scheduled",
        "done",
        "finish_cycle",
        "loads",
        "stores",
        "l3_miss_loads",
    )

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        trace: Iterable[TraceEntry],
        hierarchy: CacheHierarchy,
        rob_entries: int = 224,
        width: int = 4,
        mshrs: int = 16,
        on_done: Optional[Callable[["TraceCore"], None]] = None,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.rob_entries = rob_entries
        self.width = width
        self.mshrs = mshrs
        self.on_done = on_done

        self._trace: Iterator[TraceEntry] = iter(trace)
        self._pending: Optional[TraceEntry] = None
        self._exhausted = False

        self.instr_count = 0
        self._vtime = 0.0                 # width-limited dispatch clock
        self._inv_width = 1.0 / width
        # In-flight loads as [instr_idx, done_cycle or None], FIFO order.
        self._outstanding: deque[list] = deque()
        self._misses_inflight = 0
        self._wake_scheduled = False
        self.done = False
        self.finish_cycle: Optional[int] = None
        self.loads = 0
        self.stores = 0
        self.l3_miss_loads = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.at(self.sim.now, self._run)

    @property
    def ipc(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.instr_count / self.finish_cycle

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[TraceEntry]:
        if self._pending is None and not self._exhausted:
            self._pending = next(self._trace, None)
            if self._pending is None:
                self._exhausted = True
        return self._pending

    def _consume(self) -> None:
        self._pending = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self.done:
            return
        self._wake_scheduled = False
        now = self.sim.now
        # Loop state bound to locals; flushed back on every exit path.
        trace_next = self._trace.__next__
        pending = self._pending
        outstanding = self._outstanding
        rob_entries = self.rob_entries
        width = self.width
        inv_width = self._inv_width
        mshrs = self.mshrs
        # _access is the load/store wrappers' shared body; calling it
        # directly saves one frame per memory instruction.
        h_access = self.hierarchy._access
        core_id = self.core_id
        load_fill = self._load_fill
        instr_count = self.instr_count
        vtime = self._vtime
        try:
            while True:
                if pending is None:
                    if self._exhausted:
                        entry = None
                    else:
                        try:
                            entry = trace_next()
                        except StopIteration:
                            entry = None
                            self._exhausted = True
                        pending = entry
                else:
                    entry = pending
                if entry is None:
                    # Flush locals first: _maybe_finish reads _vtime.
                    self._pending = pending
                    self.instr_count = instr_count
                    self._vtime = vtime
                    self._maybe_finish(now)
                    return
                gap, is_write, line = entry
                idx = instr_count + gap
                t = vtime + gap / width

                # ROB window: retire (or stall on) loads falling out of it.
                window_floor = idx - rob_entries
                while outstanding and outstanding[0][0] <= window_floor:
                    head_done = outstanding[0][1]
                    if head_done is None:
                        return  # the miss's fill callback wakes us
                    if head_done > t:
                        t = head_done
                    outstanding.popleft()

                # MSHR limit: wait for any completion.
                if self._misses_inflight >= mshrs:
                    return

                if t > now:
                    self._schedule_wake(_ceil(t))
                    return

                # Dispatch the memory instruction now.
                pending = None
                instr_count = idx + 1
                vtime = (t if t > vtime else vtime) + inv_width

                if is_write:
                    self.stores += 1
                    lat = h_access(core_id, line, True, self._store_fill)
                    if lat is None:
                        self._misses_inflight += 1
                else:
                    self.loads += 1
                    record = [idx, None]
                    lat = h_access(
                        core_id, line, False,
                        lambda finish, rec=record: load_fill(rec, finish),
                    )
                    if lat is None:
                        self.l3_miss_loads += 1
                        self._misses_inflight += 1
                    else:
                        record[1] = now + lat
                    outstanding.append(record)
        finally:
            self._pending = pending
            self.instr_count = instr_count
            self._vtime = vtime

    # ------------------------------------------------------------------
    def _load_fill(self, record: list, finish: int) -> None:
        record[1] = finish
        self._misses_inflight -= 1
        self._schedule_wake(self.sim.now)

    def _store_fill(self, finish: int) -> None:
        self._misses_inflight -= 1
        self._schedule_wake(self.sim.now)

    def _schedule_wake(self, when: int) -> None:
        if self._wake_scheduled or self.done:
            return
        self._wake_scheduled = True
        sim = self.sim
        now = sim.now
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue, (when if when > now else now, seq, self._run))

    # ------------------------------------------------------------------
    def _maybe_finish(self, now: int) -> None:
        if any(rec[1] is None for rec in self._outstanding):
            return  # fills pending; their callbacks wake us
        if self._misses_inflight > 0:
            return  # store RFOs pending
        last_done = max((rec[1] for rec in self._outstanding), default=0)
        self._outstanding.clear()
        self.done = True
        self.finish_cycle = max(now, math.ceil(self._vtime), last_done, 1)
        if self.on_done is not None:
            self.on_done(self)
