"""On-chip SRAM hierarchy: private L1/L2, shared inclusive L3.

Functional arrays with fixed latencies (3 / 11 / 20 cycles round trip,
per the paper's Skylake-like cores); the interesting timing is below the
L3, where misses enter the memory-side cache controller. The hierarchy
also hosts the multi-stream stride prefetcher that trains on L2 misses
and fills L2/L3, and it merges concurrent misses to a line (MSHR-style)
so one fill serves all waiters.

Writebacks cascade: a dirty L1 victim merges into L2, a dirty L2 victim
into L3, and a dirty L3 victim becomes a memory-side cache write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.sram_cache import _ABSENT, SRAMCache
from repro.engine.event_queue import Simulator
from repro.hierarchy.msc_base import MscController
from repro.mem.request import AccessKind

FillCallback = Callable[[int], None]


@dataclass(frozen=True)
class SramLevels:
    """Geometry/latency of the three SRAM levels."""

    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 3
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 8
    l2_latency: int = 11
    l3_bytes: int = 8 * 1024 * 1024
    l3_assoc: int = 16
    l3_latency: int = 20


class StridePrefetcher:
    """Multi-stream stride prefetcher (per core), training on L2 misses.

    Streams are tracked per 4 KB region; two consecutive equal strides
    arm the stream and each subsequent access prefetches ``degree``
    lines ahead.
    """

    def __init__(self, degree: int = 3, max_streams: int = 32) -> None:
        self.degree = degree
        self.max_streams = max_streams
        self._streams: dict[int, list[int]] = {}  # region -> [last, stride, conf]
        self.issued = 0

    def observe(self, line: int) -> list[int]:
        """Record an access; return the lines to prefetch."""
        region = line >> 6  # 4 KB region
        stream = self._streams.get(region)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                oldest = next(iter(self._streams))
                del self._streams[oldest]
            self._streams[region] = [line, 0, 0]
            return []
        last, stride, conf = stream
        delta = line - last
        if delta == 0:
            return []
        if delta == stride:
            conf = min(conf + 1, 4)
        else:
            stride, conf = delta, 1 if -8 <= delta <= 8 and delta != 0 else 0
        stream[0], stream[1], stream[2] = line, stride, conf
        if conf >= 2 and stride != 0:
            targets = [line + stride * (i + 1) for i in range(self.degree)]
            self.issued += len(targets)
            return targets
        return []


class CacheHierarchy:
    """Per-core L1/L2 over a shared inclusive L3, backed by an MSC."""

    def __init__(
        self,
        sim: Simulator,
        num_cores: int,
        msc: MscController,
        levels: SramLevels = SramLevels(),
        enable_prefetch: bool = True,
    ) -> None:
        self.sim = sim
        self.num_cores = num_cores
        self.msc = msc
        self.levels = levels
        self.l1 = [
            SRAMCache(f"l1.{i}", levels.l1_bytes, levels.l1_assoc)
            for i in range(num_cores)
        ]
        self.l2 = [
            SRAMCache(f"l2.{i}", levels.l2_bytes, levels.l2_assoc)
            for i in range(num_cores)
        ]
        self.l3 = SRAMCache("l3", levels.l3_bytes, levels.l3_assoc)
        # _access inlines the LRU branch of SRAMCache.lookup.
        assert self.l3._lru and all(c._lru for c in self.l1 + self.l2)
        # Hot-path copies of the (frozen-dataclass) level latencies.
        self._l1_lat = levels.l1_latency
        self._l2_lat = levels.l2_latency
        self._l3_lat = levels.l3_latency
        self.prefetchers = (
            [StridePrefetcher() for _ in range(num_cores)] if enable_prefetch else None
        )
        # Outstanding L3 misses: line -> list of (core_id, dirty, callback).
        self._inflight: dict[int, list[tuple[int, bool, Optional[FillCallback]]]] = {}
        self.l3_demand_misses = [0] * num_cores
        self.l3_demand_accesses = [0] * num_cores
        # Prefetch throttle: bounded in-flight prefetches per core.
        self.max_prefetch_inflight = 12
        self._pf_inflight = [0] * num_cores
        # CBP-style policies meter prefetch issue; every other policy
        # leaves this None so the issue path stays branch-cheap.
        policy = msc.policy
        self._pf_throttle = (
            policy if getattr(policy, "throttles_prefetch", False) else None
        )

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------
    def load(self, core_id: int, line: int,
             on_fill: Optional[FillCallback] = None) -> Optional[int]:
        """Demand load. Returns the SRAM latency on a hit; on an L3 miss
        returns None and calls ``on_fill(finish_cycle)`` later."""
        return self._access(core_id, line, dirty=False, on_fill=on_fill)

    def store(self, core_id: int, line: int,
              on_fill: Optional[FillCallback] = None) -> Optional[int]:
        """Demand store (write-allocate: a miss fetches the line, then
        marks it dirty)."""
        return self._access(core_id, line, dirty=True, on_fill=on_fill)

    def _access(self, core_id: int, line: int, dirty: bool,
                on_fill: Optional[FillCallback]) -> Optional[int]:
        # Runs once per memory instruction. The three SRAM lookups and
        # the L1/L2 fill cascades are inlined — byte-for-byte the LRU
        # branch of SRAMCache.lookup/fill_pair — so the common SRAM
        # paths cost no extra Python frames. The fills also skip
        # fill_pair's refresh check and reuse the set dict resolved at
        # lookup: the filled line provably just missed that same set,
        # and nothing between lookup and fill touches the array (the
        # cascades only go downward). (The hierarchy always builds LRU
        # arrays; __init__ asserts it.)
        l1 = self.l1[core_id]
        sets1 = l1._sets
        idx1 = line % l1.num_sets
        ways1 = sets1.get(idx1)
        entry = _ABSENT if ways1 is None else ways1.get(line, _ABSENT)
        if entry is not _ABSENT:
            l1.hits += 1
            del ways1[line]
            ways1[line] = True if dirty else entry
            return self._l1_lat
        l1.misses += 1
        l2 = self.l2[core_id]
        sets2 = l2._sets
        idx2 = line % l2.num_sets
        ways2 = sets2.get(idx2)
        entry = _ABSENT if ways2 is None else ways2.get(line, _ABSENT)
        if entry is not _ABSENT:
            l2.hits += 1
            del ways2[line]
            ways2[line] = entry
            # Fill L1; a dirty victim folds into L2.
            vdirty = False
            if ways1 is None:
                ways1 = sets1[idx1] = {}
            elif len(ways1) >= l1.assoc:
                vtag = next(iter(ways1))
                vdirty = ways1.pop(vtag)
                l1.evictions += 1
            ways1[line] = dirty
            if vdirty:
                l2.fill_pair(vtag, True)
            return self._l2_lat
        l2.misses += 1
        # L2 miss: train the prefetcher on the miss stream.
        if self.prefetchers is not None:
            self._train_prefetch(core_id, line)
        self.l3_demand_accesses[core_id] += 1
        l3 = self.l3
        ways = l3._sets.get(line % l3.num_sets)
        entry = _ABSENT if ways is None else ways.get(line, _ABSENT)
        if entry is not _ABSENT:
            l3.hits += 1
            del ways[line]
            ways[line] = entry
            # Fill L2 (clean); a dirty victim cascades into L3.
            vdirty = False
            if ways2 is None:
                ways2 = sets2[idx2] = {}
            elif len(ways2) >= l2.assoc:
                vtag = next(iter(ways2))
                vdirty = ways2.pop(vtag)
                l2.evictions += 1
            ways2[line] = False
            if vdirty:
                ev3 = l3.fill_pair(vtag, True)
                if ev3 is not None and ev3[1]:
                    self.msc.write(ev3[0], core_id)
            # Fill L1; a dirty victim folds into L2.
            vdirty = False
            if ways1 is None:
                ways1 = sets1[idx1] = {}
            elif len(ways1) >= l1.assoc:
                vtag = next(iter(ways1))
                vdirty = ways1.pop(vtag)
                l1.evictions += 1
            ways1[line] = dirty
            if vdirty:
                l2.fill_pair(vtag, True)
            return self._l3_lat
        l3.misses += 1
        # L3 miss.
        self.l3_demand_misses[core_id] += 1
        self._request_line(core_id, line, dirty, on_fill)
        return None

    # ------------------------------------------------------------------
    # Miss handling with MSHR-style merging
    # ------------------------------------------------------------------
    def _request_line(self, core_id: int, line: int, dirty: bool,
                      on_fill: Optional[FillCallback],
                      kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        waiters = self._inflight.get(line)
        if waiters is not None:
            waiters.append((core_id, dirty, on_fill))
            return
        self._inflight[line] = [(core_id, dirty, on_fill)]
        self.msc.read(line, core_id,
                      callback=lambda finish, l=line: self._line_arrived(l, finish),
                      kind=kind)

    def _line_arrived(self, line: int, finish: int) -> None:
        waiters = self._inflight.pop(line, [])
        any_dirty = any(d for _, d, _ in waiters)
        ev3 = self.l3.fill_pair(line, any_dirty)
        if ev3 is not None and ev3[1]:
            self.msc.write(ev3[0], core_id=-1)
        for core_id, dirty, callback in waiters:
            if core_id >= 0:
                # Same transitions as _fill_l2 then _fill_l1, inlined.
                ev2 = self.l2[core_id].fill_pair(line)
                if ev2 is not None and ev2[1]:
                    ev3 = self.l3.fill_pair(ev2[0], True)
                    if ev3 is not None and ev3[1]:
                        self.msc.write(ev3[0], core_id)
                ev1 = self.l1[core_id].fill_pair(line, dirty)
                if ev1 is not None and ev1[1]:
                    self.l2[core_id].fill_pair(ev1[0], True)
            if callback is not None:
                callback(finish)

    # ------------------------------------------------------------------
    # Fill plumbing with dirty-writeback cascades
    # ------------------------------------------------------------------
    def _fill_l1(self, core_id: int, line: int, dirty: bool) -> None:
        evicted = self.l1[core_id].fill_pair(line, dirty)
        if evicted is not None and evicted[1]:
            self.l2[core_id].fill_pair(evicted[0], True)

    def _fill_l2(self, core_id: int, line: int) -> None:
        evicted = self.l2[core_id].fill_pair(line)
        if evicted is not None and evicted[1]:
            ev3 = self.l3.fill_pair(evicted[0], True)
            if ev3 is not None and ev3[1]:
                self.msc.write(ev3[0], core_id)

    def _fill_l3(self, line: int, dirty: bool = False) -> None:
        evicted = self.l3.fill_pair(line, dirty)
        if evicted is not None and evicted[1]:
            self.msc.write(evicted[0], core_id=-1)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _train_prefetch(self, core_id: int, line: int) -> None:
        for target in self.prefetchers[core_id].observe(line):
            if self._pf_inflight[core_id] >= self.max_prefetch_inflight:
                return
            if target < 0:
                continue
            if self.l2[core_id].probe(target) or self.l3.probe(target):
                continue
            if target in self._inflight:
                continue
            if self._pf_throttle is not None and not (
                self._pf_throttle.allow_prefetch(self.sim.now, core_id, target)
            ):
                continue
            self._pf_inflight[core_id] += 1
            self._request_line(
                core_id, target, dirty=False,
                on_fill=lambda finish, c=core_id: self._pf_done(c),
                kind=AccessKind.PREFETCH_READ,
            )

    def _pf_done(self, core_id: int) -> None:
        self._pf_inflight[core_id] -= 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def l3_mpki(self, core_id: int, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.l3_demand_misses[core_id] / (instructions / 1000.0)

    def total_l3_misses(self) -> int:
        return sum(self.l3_demand_misses)
