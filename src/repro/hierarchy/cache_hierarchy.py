"""On-chip SRAM hierarchy: private L1/L2, shared inclusive L3.

Functional arrays with fixed latencies (3 / 11 / 20 cycles round trip,
per the paper's Skylake-like cores); the interesting timing is below the
L3, where misses enter the memory-side cache controller. The hierarchy
also hosts the multi-stream stride prefetcher that trains on L2 misses
and fills L2/L3, and it merges concurrent misses to a line (MSHR-style)
so one fill serves all waiters.

Writebacks cascade: a dirty L1 victim merges into L2, a dirty L2 victim
into L3, and a dirty L3 victim becomes a memory-side cache write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.sram_cache import SRAMCache
from repro.engine.event_queue import Simulator
from repro.hierarchy.msc_base import MscController
from repro.mem.request import AccessKind

FillCallback = Callable[[int], None]


@dataclass(frozen=True)
class SramLevels:
    """Geometry/latency of the three SRAM levels."""

    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 3
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 8
    l2_latency: int = 11
    l3_bytes: int = 8 * 1024 * 1024
    l3_assoc: int = 16
    l3_latency: int = 20


class StridePrefetcher:
    """Multi-stream stride prefetcher (per core), training on L2 misses.

    Streams are tracked per 4 KB region; two consecutive equal strides
    arm the stream and each subsequent access prefetches ``degree``
    lines ahead.
    """

    def __init__(self, degree: int = 3, max_streams: int = 32) -> None:
        self.degree = degree
        self.max_streams = max_streams
        self._streams: dict[int, list[int]] = {}  # region -> [last, stride, conf]
        self.issued = 0

    def observe(self, line: int) -> list[int]:
        """Record an access; return the lines to prefetch."""
        region = line >> 6  # 4 KB region
        stream = self._streams.get(region)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                oldest = next(iter(self._streams))
                del self._streams[oldest]
            self._streams[region] = [line, 0, 0]
            return []
        last, stride, conf = stream
        delta = line - last
        if delta == 0:
            return []
        if delta == stride:
            conf = min(conf + 1, 4)
        else:
            stride, conf = delta, 1 if -8 <= delta <= 8 and delta != 0 else 0
        stream[0], stream[1], stream[2] = line, stride, conf
        if conf >= 2 and stride != 0:
            targets = [line + stride * (i + 1) for i in range(self.degree)]
            self.issued += len(targets)
            return targets
        return []


class CacheHierarchy:
    """Per-core L1/L2 over a shared inclusive L3, backed by an MSC."""

    def __init__(
        self,
        sim: Simulator,
        num_cores: int,
        msc: MscController,
        levels: SramLevels = SramLevels(),
        enable_prefetch: bool = True,
    ) -> None:
        self.sim = sim
        self.num_cores = num_cores
        self.msc = msc
        self.levels = levels
        self.l1 = [
            SRAMCache(f"l1.{i}", levels.l1_bytes, levels.l1_assoc)
            for i in range(num_cores)
        ]
        self.l2 = [
            SRAMCache(f"l2.{i}", levels.l2_bytes, levels.l2_assoc)
            for i in range(num_cores)
        ]
        self.l3 = SRAMCache("l3", levels.l3_bytes, levels.l3_assoc)
        self.prefetchers = (
            [StridePrefetcher() for _ in range(num_cores)] if enable_prefetch else None
        )
        # Outstanding L3 misses: line -> list of (core_id, dirty, callback).
        self._inflight: dict[int, list[tuple[int, bool, Optional[FillCallback]]]] = {}
        self.l3_demand_misses = [0] * num_cores
        self.l3_demand_accesses = [0] * num_cores
        # Prefetch throttle: bounded in-flight prefetches per core.
        self.max_prefetch_inflight = 12
        self._pf_inflight = [0] * num_cores

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------
    def load(self, core_id: int, line: int,
             on_fill: Optional[FillCallback] = None) -> Optional[int]:
        """Demand load. Returns the SRAM latency on a hit; on an L3 miss
        returns None and calls ``on_fill(finish_cycle)`` later."""
        return self._access(core_id, line, dirty=False, on_fill=on_fill)

    def store(self, core_id: int, line: int,
              on_fill: Optional[FillCallback] = None) -> Optional[int]:
        """Demand store (write-allocate: a miss fetches the line, then
        marks it dirty)."""
        return self._access(core_id, line, dirty=True, on_fill=on_fill)

    def _access(self, core_id: int, line: int, dirty: bool,
                on_fill: Optional[FillCallback]) -> Optional[int]:
        lv = self.levels
        if self.l1[core_id].lookup(line, is_write=dirty):
            return lv.l1_latency
        if self.l2[core_id].lookup(line):
            self._fill_l1(core_id, line, dirty)
            return lv.l2_latency
        # L2 miss: train the prefetcher on the miss stream.
        self._train_prefetch(core_id, line)
        self.l3_demand_accesses[core_id] += 1
        if self.l3.lookup(line):
            self._fill_l2(core_id, line)
            self._fill_l1(core_id, line, dirty)
            return lv.l3_latency
        # L3 miss.
        self.l3_demand_misses[core_id] += 1
        self._request_line(core_id, line, dirty, on_fill)
        return None

    # ------------------------------------------------------------------
    # Miss handling with MSHR-style merging
    # ------------------------------------------------------------------
    def _request_line(self, core_id: int, line: int, dirty: bool,
                      on_fill: Optional[FillCallback],
                      kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        waiters = self._inflight.get(line)
        if waiters is not None:
            waiters.append((core_id, dirty, on_fill))
            return
        self._inflight[line] = [(core_id, dirty, on_fill)]
        self.msc.read(line, core_id,
                      callback=lambda finish, l=line: self._line_arrived(l, finish),
                      kind=kind)

    def _line_arrived(self, line: int, finish: int) -> None:
        waiters = self._inflight.pop(line, [])
        any_dirty = any(d for _, d, _ in waiters)
        self._fill_l3(line, dirty=any_dirty)
        for core_id, dirty, callback in waiters:
            if core_id >= 0:
                self._fill_l2(core_id, line)
                self._fill_l1(core_id, line, dirty)
            if callback is not None:
                callback(finish)

    # ------------------------------------------------------------------
    # Fill plumbing with dirty-writeback cascades
    # ------------------------------------------------------------------
    def _fill_l1(self, core_id: int, line: int, dirty: bool) -> None:
        evicted = self.l1[core_id].fill(line, dirty=dirty)
        if evicted is not None and evicted.dirty:
            self.l2[core_id].fill(evicted.line, dirty=True)

    def _fill_l2(self, core_id: int, line: int) -> None:
        evicted = self.l2[core_id].fill(line)
        if evicted is not None and evicted.dirty:
            ev3 = self.l3.fill(evicted.line, dirty=True)
            if ev3 is not None and ev3.dirty:
                self.msc.write(ev3.line, core_id)

    def _fill_l3(self, line: int, dirty: bool = False) -> None:
        evicted = self.l3.fill(line, dirty=dirty)
        if evicted is not None and evicted.dirty:
            self.msc.write(evicted.line, core_id=-1)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _train_prefetch(self, core_id: int, line: int) -> None:
        if self.prefetchers is None:
            return
        for target in self.prefetchers[core_id].observe(line):
            if self._pf_inflight[core_id] >= self.max_prefetch_inflight:
                return
            if target < 0:
                continue
            if self.l2[core_id].probe(target) or self.l3.probe(target):
                continue
            if target in self._inflight:
                continue
            self._pf_inflight[core_id] += 1
            self._request_line(
                core_id, target, dirty=False,
                on_fill=lambda finish, c=core_id: self._pf_done(c),
                kind=AccessKind.PREFETCH_READ,
            )

    def _pf_done(self, core_id: int) -> None:
        self._pf_inflight[core_id] -= 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def l3_mpki(self, core_id: int, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.l3_demand_misses[core_id] / (instructions / 1000.0)

    def total_l3_misses(self) -> int:
        return sum(self.l3_demand_misses)
