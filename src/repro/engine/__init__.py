"""Discrete-event simulation engine.

The whole simulator runs in a single clock domain: CPU cycles of the
(default 4 GHz) core clock. :mod:`repro.engine.clock` converts DRAM-side
nanosecond/channel-cycle quantities into CPU cycles; the event queue in
:mod:`repro.engine.event_queue` orders and dispatches callbacks.
"""

from repro.engine.clock import ClockDomain, CPU_GHZ_DEFAULT
from repro.engine.event_queue import Simulator

__all__ = ["Simulator", "ClockDomain", "CPU_GHZ_DEFAULT"]
