"""Clock-domain conversion helpers.

All simulation time is expressed in CPU cycles. DRAM devices are specified
in their own channel clock (e.g. DDR4-2400's 1.2 GHz command clock, HBM's
800 MHz); :class:`ClockDomain` converts device cycles and nanoseconds into
integer CPU cycles, always rounding up so that a converted latency is never
optimistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

CPU_GHZ_DEFAULT = 4.0


@dataclass(frozen=True)
class ClockDomain:
    """Converts between a device clock and the CPU clock.

    Parameters
    ----------
    device_ghz:
        Frequency of the device (channel command) clock in GHz.
    cpu_ghz:
        Frequency of the CPU clock in GHz (default 4 GHz, per the paper's
        Skylake-like cores).
    """

    device_ghz: float
    cpu_ghz: float = CPU_GHZ_DEFAULT

    def __post_init__(self) -> None:
        if self.device_ghz <= 0 or self.cpu_ghz <= 0:
            raise ConfigError(
                f"clock frequencies must be positive, got device={self.device_ghz} "
                f"cpu={self.cpu_ghz}"
            )

    @property
    def cpu_cycles_per_device_cycle(self) -> float:
        return self.cpu_ghz / self.device_ghz

    def device_cycles_to_cpu(self, device_cycles: float) -> int:
        """Convert device cycles to CPU cycles, rounding up."""
        return math.ceil(device_cycles * self.cpu_cycles_per_device_cycle)

    def ns_to_cpu(self, nanoseconds: float) -> int:
        """Convert a latency in nanoseconds to CPU cycles, rounding up."""
        return math.ceil(nanoseconds * self.cpu_ghz)

    def cpu_to_ns(self, cpu_cycles: int) -> float:
        """Convert CPU cycles to nanoseconds."""
        return cpu_cycles / self.cpu_ghz


def bytes_per_cpu_cycle(gbps: float, cpu_ghz: float = CPU_GHZ_DEFAULT) -> float:
    """Translate a GB/s bandwidth into bytes per CPU cycle.

    1 GB/s is taken as 1e9 bytes/s, matching the paper's figures
    (e.g. 38.4 GB/s for dual-channel DDR4-2400).
    """
    if gbps <= 0:
        raise ConfigError(f"bandwidth must be positive, got {gbps}")
    return gbps / cpu_ghz


def accesses_per_cpu_cycle(
    gbps: float, access_bytes: int = 64, cpu_ghz: float = CPU_GHZ_DEFAULT
) -> float:
    """Bandwidth in 64-byte accesses per CPU cycle (the paper's B_i unit)."""
    if access_bytes <= 0:
        raise ConfigError(f"access size must be positive, got {access_bytes}")
    return bytes_per_cpu_cycle(gbps, cpu_ghz) / access_bytes
