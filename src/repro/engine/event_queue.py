"""Deterministic discrete-event simulator core.

Events are ``(time, sequence, callback)`` tuples kept in a binary heap.
The ``sequence`` tie-breaker makes simulations fully deterministic: two
events scheduled for the same cycle always fire in scheduling order, so a
run is a pure function of its inputs (all randomness in the library comes
from explicitly seeded generators).

Time is measured in integer CPU cycles. Components schedule callbacks
either at an absolute cycle (:meth:`Simulator.at`) or after a delay
(:meth:`Simulator.schedule`).

The dispatch loop is the innermost loop of every simulation, so it is
written allocation-free: heap primitives and queue references are bound
to locals, the common ``run()`` (no ``until``, no ``max_events``) takes
a fast path with no per-event bound checks, and the lifetime event
counter is updated once per ``run`` call rather than per event.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError

Callback = Callable[[], None]

_heappush = heapq.heappush
_heappop = heapq.heappop


class Simulator:
    """A single-clock discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(10, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10]
    """

    __slots__ = ("now", "_queue", "_seq", "_events_dispatched", "_running")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callback]] = []
        self._seq: int = 0
        self._events_dispatched: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Fast path for the dominant "fire once at now+delta" pattern:
        # push directly instead of routing through :meth:`at`'s
        # can-never-fail bounds check.
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (self.now + int(delay), seq, callback))

    def at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current cycle is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (int(time), seq, callback))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in time order; returns the events dispatched.

        Stopping conditions, and the clock contract for each:

        - **Queue empty** — every event has fired. ``now`` rests at the
          last dispatched event's cycle, except that with ``until`` set
          the clock is then advanced to ``until`` (an idle simulator
          still "waits out" the requested horizon).
        - **``until`` reached** — the next event lies strictly beyond
          ``until``. The event stays queued and ``now`` is advanced to
          exactly ``until``.
        - **``max_events`` dispatched** — the dispatch budget ran out.
          ``now`` stays at the cycle of the last dispatched event and is
          **not** advanced to ``until``, even when both limits are given:
          the simulation is paused mid-timeline, and a later ``run`` call
          must be able to resume with the remaining events still in the
          future. Callers that want the clock at ``until`` regardless
          should keep calling ``run(until=...)`` until it returns 0.
        """
        queue = self._queue
        pop = _heappop
        dispatched = 0
        self._running = True
        try:
            if until is None and max_events is None:
                # Fast path: drain the queue with no per-event bound
                # checks (the overwhelmingly common full-run case).
                while queue:
                    time, _seq, callback = pop(queue)
                    self.now = time
                    callback()
                    dispatched += 1
                return dispatched
            while queue:
                time = queue[0][0]
                if until is not None and time > until:
                    self.now = until
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                callback = pop(queue)[2]
                self.now = time
                callback()
                dispatched += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
            return dispatched
        finally:
            self._events_dispatched += dispatched
            self._running = False

    def step(self) -> bool:
        """Dispatch a single event; return False if the queue is empty."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched over the simulator's lifetime.

        Updated when a ``run`` call returns (batched for speed), so the
        count is not visible to callbacks firing *within* a run.
        """
        return self._events_dispatched

    def peek_time(self) -> Optional[int]:
        """Cycle of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None
