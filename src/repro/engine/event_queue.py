"""Deterministic discrete-event simulator core.

Events are ``(time, sequence, callback)`` tuples kept in a binary heap.
The ``sequence`` tie-breaker makes simulations fully deterministic: two
events scheduled for the same cycle always fire in scheduling order, so a
run is a pure function of its inputs (all randomness in the library comes
from explicitly seeded generators).

Time is measured in integer CPU cycles. Components schedule callbacks
either at an absolute cycle (:meth:`Simulator.at`) or after a delay
(:meth:`Simulator.schedule`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError

Callback = Callable[[], None]


class Simulator:
    """A single-clock discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(10, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10]
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callback]] = []
        self._seq: int = 0
        self._events_dispatched: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, callback)

    def at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current cycle is {self.now}"
            )
        heapq.heappush(self._queue, (int(time), self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in time order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` dispatches. Returns the number of events dispatched
        by this call.
        """
        dispatched = 0
        self._running = True
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self.now = until
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                heapq.heappop(self._queue)
                self.now = time
                callback()
                dispatched += 1
                self._events_dispatched += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return dispatched

    def step(self) -> bool:
        """Dispatch a single event; return False if the queue is empty."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched over the simulator's lifetime."""
        return self._events_dispatched

    def peek_time(self) -> Optional[int]:
        """Cycle of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None
