"""Trace file I/O.

Lets users persist generated traces or bring their own (e.g. converted
from pin/DynamoRIO/perf dumps). The format is one record per line::

    <gap> <R|W> <hex line address>

Lines starting with ``#`` are comments. Files ending in ``.gz`` are
transparently compressed.
"""

from __future__ import annotations

import gzip
import os
from typing import IO, Iterable, Iterator

from repro.errors import WorkloadError
from repro.hierarchy.cpu_core import TraceEntry


def _open(path: str, mode: str) -> IO[str]:
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_trace(path: str, entries: Iterable[TraceEntry],
                header: str = "") -> int:
    """Write a trace; returns the number of records written."""
    count = 0
    with _open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for gap, is_write, line in entries:
            handle.write(f"{gap} {'W' if is_write else 'R'} {line:x}\n")
            count += 1
    return count


def read_trace(path: str) -> Iterator[TraceEntry]:
    """Stream a trace file back as ``(gap, is_write, line)`` tuples."""
    if not os.path.exists(path):
        raise WorkloadError(f"trace file not found: {path}")
    with _open(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 3 or parts[1] not in ("R", "W"):
                raise WorkloadError(
                    f"{path}:{lineno}: malformed record {text!r} "
                    "(expected '<gap> <R|W> <hexline>')"
                )
            try:
                gap = int(parts[0])
                line = int(parts[2], 16)
            except ValueError as exc:
                raise WorkloadError(f"{path}:{lineno}: {exc}") from None
            if gap < 0 or line < 0:
                raise WorkloadError(
                    f"{path}:{lineno}: gap and address must be non-negative"
                )
            yield gap, parts[1] == "W", line


def trace_summary(path: str) -> dict[str, float]:
    """Cheap one-pass statistics over a trace file."""
    refs = writes = 0
    instructions = 0
    lines = set()
    for gap, is_write, line in read_trace(path):
        refs += 1
        writes += is_write
        instructions += gap + 1
        lines.add(line)
    return {
        "refs": refs,
        "writes": writes,
        "write_fraction": writes / refs if refs else 0.0,
        "instructions": instructions,
        "mem_per_kilo": refs / instructions * 1000 if instructions else 0.0,
        "footprint_lines": len(lines),
        "footprint_mb": len(lines) * 64 / (1 << 20),
    }
