"""Synthetic workload substrate.

The paper evaluates 1-billion-instruction snippets of SPEC CPU 2006,
HPCG and Parboil; those binaries and traces cannot ship with an
open-source reproduction, so :mod:`repro.workloads.profiles` defines
seventeen parameterized generators that reproduce the characteristics
the paper's results depend on: L3 MPKI band, bandwidth sensitivity,
read/write mix, footprint, and sector/tag-cache locality.

:mod:`repro.workloads.mixes` builds the paper's 44 multi-programmed
mixes (17 rate-8 homogeneous + 27 heterogeneous);
:mod:`repro.workloads.kernels` provides the Fig. 1 read-bandwidth
kernel.
"""

from repro.workloads.synthetic import AccessMix, WorkloadProfile, generate_trace
from repro.workloads.profiles import (
    PROFILES,
    BANDWIDTH_SENSITIVE,
    BANDWIDTH_INSENSITIVE,
    get_profile,
)
from repro.workloads.mixes import rate_mix, heterogeneous_mixes, all_mixes, Mix

__all__ = [
    "AccessMix",
    "WorkloadProfile",
    "generate_trace",
    "PROFILES",
    "BANDWIDTH_SENSITIVE",
    "BANDWIDTH_INSENSITIVE",
    "get_profile",
    "rate_mix",
    "heterogeneous_mixes",
    "all_mixes",
    "Mix",
]
