"""Multi-programmed mixes (Section V).

The paper evaluates 44 eight-way mixes: seventeen homogeneous rate-8
mixes (eight copies of one snippet) plus 27 heterogeneous mixes, half of
them combining snippets of *similar* bandwidth sensitivity and half
combining *dissimilar* ones. Mixes here are generated deterministically
from a fixed seed so every experiment sees the same 44 workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    BANDWIDTH_INSENSITIVE,
    BANDWIDTH_SENSITIVE,
    get_profile,
)
from repro.workloads.synthetic import core_base_line, generate_trace, warm_lines

MIX_SEED = 20170204  # HPCA 2017
NUM_HETEROGENEOUS = 27


@dataclass(frozen=True)
class Mix:
    """An N-way multi-programmed workload."""

    name: str
    members: tuple[str, ...]
    category: str  # "bandwidth-sensitive" | "bandwidth-insensitive" | "heterogeneous"

    @property
    def num_cores(self) -> int:
        return len(self.members)

    def traces(self, refs_per_core: int, scale: float = 1.0) -> list[Iterator]:
        """Build one trace per core with disjoint address spaces."""
        return [
            generate_trace(
                get_profile(member),
                num_refs=refs_per_core,
                base_line=core_base_line(core_id),
                scale=scale,
                seed=core_id,
            )
            for core_id, member in enumerate(self.members)
        ]

    def warm_sets(self, scale: float = 1.0) -> Iterator[tuple[int, bool]]:
        """All (line, dirty) pairs of the mix's warm set, across cores."""
        for core_id, member in enumerate(self.members):
            yield from warm_lines(
                get_profile(member),
                base_line=core_base_line(core_id),
                scale=scale,
                seed=core_id,
            )


def rate_mix(name: str, ways: int = 8) -> Mix:
    """Homogeneous rate-N mix: N copies of one snippet."""
    profile = get_profile(name)  # validates the name
    category = (
        "bandwidth-sensitive" if profile.bandwidth_sensitive
        else "bandwidth-insensitive"
    )
    return Mix(name=f"{name}.rate{ways}", members=(name,) * ways, category=category)


def heterogeneous_mixes(ways: int = 8,
                        count: int = NUM_HETEROGENEOUS) -> list[Mix]:
    """The 27 heterogeneous mixes: ~half similar-, half mixed-sensitivity."""
    rng = random.Random(MIX_SEED)
    mixes: list[Mix] = []
    similar = count // 2 + count % 2  # 14 similar-sensitivity, 13 dissimilar
    for idx in range(count):
        if idx < similar:
            # Similar sensitivity: draw all members from one class
            # (mostly the sensitive class, as in the paper's pool sizes).
            pool = BANDWIDTH_INSENSITIVE if idx % 3 == 2 else BANDWIDTH_SENSITIVE
            members = tuple(rng.choice(pool) for _ in range(ways))
        else:
            # Dissimilar sensitivity: half from each class, shuffled.
            half = ways // 2
            drawn = [rng.choice(BANDWIDTH_SENSITIVE) for _ in range(half)]
            drawn += [rng.choice(BANDWIDTH_INSENSITIVE) for _ in range(ways - half)]
            rng.shuffle(drawn)
            members = tuple(drawn)
        mixes.append(
            Mix(name=f"het{idx + 1:02d}", members=members,
                category="heterogeneous")
        )
    return mixes


def all_mixes(ways: int = 8) -> list[Mix]:
    """The full 44-mix evaluation set (Fig. 12)."""
    sensitive = [rate_mix(name, ways) for name in BANDWIDTH_SENSITIVE]
    insensitive = [rate_mix(name, ways) for name in BANDWIDTH_INSENSITIVE]
    return sensitive + insensitive + heterogeneous_mixes(ways)


def mixes_by_category(category: str, ways: int = 8) -> list[Mix]:
    mixes = [m for m in all_mixes(ways) if m.category == category]
    if not mixes:
        raise WorkloadError(f"unknown mix category {category!r}")
    return mixes
