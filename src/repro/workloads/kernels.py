"""The Fig. 1 read-bandwidth kernel.

"A simple read bandwidth kernel that streams through read-only arrays at
different target hit rates of the memory-side cache." The kernel drives
a memory-side cache controller directly (no cores): it keeps a fixed
number of reads outstanding and draws each read either from a pre-warmed
resident array (a cache hit) or from a cold, ever-advancing stream (a
cache miss), so the achieved hit rate tracks the target.

``run_read_kernel`` returns the delivered *demand* read bandwidth in
GB/s, measured exactly as Fig. 1 does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.event_queue import Simulator
from repro.errors import WorkloadError
from repro.hierarchy.msc_base import MscController


@dataclass
class KernelResult:
    delivered_gbps: float
    achieved_hit_rate: float
    reads_completed: int
    cycles: int


class ReadKernel:
    """Closed-loop read injector with a target hit rate."""

    def __init__(
        self,
        sim: Simulator,
        controller: MscController,
        hit_rate: float,
        total_reads: int,
        outstanding: int = 192,
        resident_lines: int = 4096,
        cpu_ghz: float = 4.0,
        seed: int = 1,
    ) -> None:
        if not 0.0 <= hit_rate <= 1.0:
            raise WorkloadError(f"hit rate must be in [0,1], got {hit_rate}")
        if total_reads <= 0 or outstanding <= 0:
            raise WorkloadError("total_reads and outstanding must be positive")
        self.sim = sim
        self.controller = controller
        self.hit_rate = hit_rate
        self.total_reads = total_reads
        self.outstanding_limit = outstanding
        self.resident_lines = resident_lines
        self.cpu_ghz = cpu_ghz
        self._rng = random.Random(seed)
        self._issued = 0
        self._completed = 0
        self._inflight = 0
        self._cold_line = resident_lines  # cold stream starts past the array
        self._hot_cursor = 0
        self.finish_cycle = 0

    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Install the resident array in the cache (functional pre-warm)."""
        array = self.controller.array
        for line in range(self.resident_lines):
            if hasattr(array, "allocate_sector"):
                if not array.sector_present(line):
                    array.allocate_sector(line)
                array.fill_block(line)
            else:
                array.fill(line)

    def run(self) -> KernelResult:
        self.warm()
        for _ in range(min(self.outstanding_limit, self.total_reads)):
            self._issue()
        self.sim.run()
        cycles = max(1, self.finish_cycle)
        bytes_moved = self._completed * 64
        seconds = cycles / (self.cpu_ghz * 1e9)
        hits = self.controller.served_hits
        misses = self.controller.served_misses
        return KernelResult(
            delivered_gbps=bytes_moved / seconds / 1e9,
            achieved_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            reads_completed=self._completed,
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    def _next_line(self) -> int:
        if self._rng.random() < self.hit_rate:
            # Sequential walk of the resident array: a cache hit.
            line = self._hot_cursor % self.resident_lines
            self._hot_cursor += 1
            return line
        line = self._cold_line
        self._cold_line += 1
        return line

    def _issue(self) -> None:
        if self._issued >= self.total_reads:
            return
        self._issued += 1
        self._inflight += 1
        self.controller.read(self._next_line(), core_id=0, callback=self._done)

    def _done(self, finish: int) -> None:
        self._completed += 1
        self._inflight -= 1
        self.finish_cycle = max(self.finish_cycle, finish)
        self._issue()


def run_read_kernel(
    controller_factory,
    hit_rate: float,
    total_reads: int = 20_000,
    outstanding: int = 192,
    resident_lines: int = 4096,
) -> KernelResult:
    """Build a fresh controller via ``controller_factory(sim)`` and
    measure delivered read bandwidth at the target hit rate."""
    sim = Simulator()
    controller = controller_factory(sim)
    kernel = ReadKernel(
        sim, controller, hit_rate=hit_rate, total_reads=total_reads,
        outstanding=outstanding, resident_lines=resident_lines,
    )
    return kernel.run()
