"""The seventeen benchmark stand-ins (Section V).

Parameters are tuned so each profile reproduces the characteristics the
paper reports for its namesake:

- **L3 MPKI** ≈ ``mem_per_kilo × (1 - local weight)`` lands the twelve
  bandwidth-sensitive snippets in the ~15-50 band and the five
  insensitive ones under ~10 (Fig. 4 bottom: averages 20.4 vs 11.6);
- **MS$ hit rate** ≈ ``1 - fresh / (1 - local)`` sits in the 70-95%
  range the paper's warmed 4 GB cache delivers (Fig. 8 bottom);
- **sector / tag-cache locality**: omnetpp and astar.BigLakes put much
  of their traffic in the sparse class (one line per 4 KB region over a
  multi-GB space), reproducing their Fig. 5 tag-cache thrash;
- **write mix**: the gcc inputs and parboil-lbm are write-heavy, so
  DAP serves them mostly with FWB + WB (Fig. 7).

Region sizes are stated at paper scale (MB per copy) and shrink together
with the cache capacities via the experiment scale.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.synthetic import AccessMix, WorkloadProfile


def _p(name, mpk, wf, local, stream, hot, fresh, sparse,
       stream_mb, hot_mb, sparse_mb=0.0, local_kb=24, stride=1,
       sensitive=True):
    return WorkloadProfile(
        name=name,
        mem_per_kilo=mpk,
        write_fraction=wf,
        stream_mb=stream_mb,
        hot_mb=hot_mb,
        sparse_mb=sparse_mb,
        local_kb=local_kb,
        stride_lines=stride,
        mix=AccessMix(local=local, stream=stream, hot=hot, fresh=fresh,
                      sparse=sparse),
        bandwidth_sensitive=sensitive,
    )


PROFILES: dict[str, WorkloadProfile] = {}

for profile in [
    # ------------------------------------------------------------------
    # Twelve bandwidth-sensitive snippets (Fig. 4 top, left group)
    # ------------------------------------------------------------------
    # Sparse walk with poor sector utilization -> tag-cache thrash.
    _p("astar.BigLakes", mpk=250, wf=0.15,
       local=0.925, stream=0.005, hot=0.030, fresh=0.010, sparse=0.030,
       stream_mb=16, hot_mb=96, sparse_mb=256, local_kb=28),
    _p("bzip2.combined", mpk=280, wf=0.30,
       local=0.930, stream=0.020, hot=0.032, fresh=0.012, sparse=0.006,
       stream_mb=64, hot_mb=64, sparse_mb=128),
    # gcc inputs are write-heavy: FWB+WB territory (Fig. 7).
    _p("gcc.expr", mpk=300, wf=0.35,
       local=0.950, stream=0.018, hot=0.022, fresh=0.008, sparse=0.002,
       stream_mb=48, hot_mb=64, sparse_mb=128, local_kb=20),
    _p("gcc.s04", mpk=320, wf=0.35,
       local=0.940, stream=0.020, hot=0.028, fresh=0.010, sparse=0.002,
       stream_mb=48, hot_mb=80, sparse_mb=128, local_kb=20),
    _p("gobmk.score2", mpk=260, wf=0.30,
       local=0.950, stream=0.010, hot=0.028, fresh=0.010, sparse=0.002,
       stream_mb=24, hot_mb=64, sparse_mb=128, local_kb=28),
    _p("hpcg", mpk=380, wf=0.15,
       local=0.920, stream=0.050, hot=0.020, fresh=0.008, sparse=0.002,
       stream_mb=192, hot_mb=64, sparse_mb=128),
    _p("libquantum", mpk=350, wf=0.25,
       local=0.900, stream=0.080, hot=0.006, fresh=0.014, sparse=0.0,
       stream_mb=128, hot_mb=48, local_kb=16),
    # Large random chase over a reused hot core: IFRM fodder.
    _p("mcf", mpk=320, wf=0.20,
       local=0.860, stream=0.010, hot=0.100, fresh=0.025, sparse=0.005,
       stream_mb=16, hot_mb=160, sparse_mb=128, local_kb=32),
    # Dominated by sparse one-line-per-page accesses: the SFRM star.
    _p("omnetpp", mpk=280, wf=0.25,
       local=0.930, stream=0.002, hot=0.014, fresh=0.009, sparse=0.045,
       stream_mb=16, hot_mb=48, sparse_mb=320, local_kb=28),
    _p("parboil-lbm", mpk=400, wf=0.45,
       local=0.875, stream=0.100, hot=0.006, fresh=0.019, sparse=0.0,
       stream_mb=256, hot_mb=48, local_kb=16),
    _p("sjeng", mpk=240, wf=0.25,
       local=0.940, stream=0.005, hot=0.035, fresh=0.015, sparse=0.005,
       stream_mb=16, hot_mb=96, sparse_mb=256, local_kb=28),
    _p("soplex.ref", mpk=330, wf=0.20,
       local=0.925, stream=0.040, hot=0.025, fresh=0.009, sparse=0.001,
       stream_mb=96, hot_mb=64, sparse_mb=128),
    # ------------------------------------------------------------------
    # Five bandwidth-insensitive snippets: lower demand, friendlier
    # locality (Fig. 4 top, right group).
    # ------------------------------------------------------------------
    # Stream-dominated and prefetch-friendly: their memory latency is
    # largely hidden, so extra cache bandwidth buys little.
    _p("bwaves", mpk=180, wf=0.20,
       local=0.983, stream=0.011, hot=0.003, fresh=0.003, sparse=0.0,
       stream_mb=96, hot_mb=48, sensitive=False),
    _p("cactusADM", mpk=150, wf=0.25,
       local=0.982, stream=0.012, hot=0.004, fresh=0.002, sparse=0.0,
       stream_mb=48, hot_mb=48, sensitive=False),
    _p("leslie3D", mpk=170, wf=0.25,
       local=0.978, stream=0.015, hot=0.005, fresh=0.002, sparse=0.0,
       stream_mb=64, hot_mb=48, sensitive=False),
    _p("milc", mpk=160, wf=0.20,
       local=0.980, stream=0.013, hot=0.004, fresh=0.003, sparse=0.0,
       stream_mb=96, hot_mb=64, sensitive=False),
    _p("parboil-histo", mpk=140, wf=0.30,
       local=0.982, stream=0.008, hot=0.008, fresh=0.002, sparse=0.0,
       stream_mb=24, hot_mb=48, sensitive=False),
]:
    PROFILES[profile.name] = profile

BANDWIDTH_SENSITIVE: list[str] = [
    name for name, p in PROFILES.items() if p.bandwidth_sensitive
]
BANDWIDTH_INSENSITIVE: list[str] = [
    name for name, p in PROFILES.items() if not p.bandwidth_sensitive
]

assert len(PROFILES) == 17
assert len(BANDWIDTH_SENSITIVE) == 12
assert len(BANDWIDTH_INSENSITIVE) == 5


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(PROFILES)}"
        ) from None
