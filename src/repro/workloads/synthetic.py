"""Parameterized synthetic memory-trace generation.

A trace is a deterministic stream of ``(gap, is_write, line)`` tuples.
Each memory reference is drawn from a five-class mixture chosen to
reproduce the steady-state behaviour of the paper's warmed-up
1-billion-instruction snippets:

- **local** — uniform random in a small SRAM-resident region (tens of
  KB): the dominant class; keeps L3 MPKI in the paper's 5-50 band;
- **stream** — sequential walks over the workload's streaming arrays
  (several concurrent streams). The arrays are part of the *warm set*:
  resident in the memory-side cache, as they would be after warmup;
- **hot** — uniform random over a warmed region larger than the L3 but
  comfortably inside the memory-side cache: produces MS$ read hits;
- **fresh** — an ever-advancing cold pointer: compulsory MS$ misses,
  the main-memory demand;
- **sparse** — one line per 4 KB region over a wide (warmed) space:
  hits the MS$ but thrashes sector metadata structures (the tag-cache
  pathology of omnetpp/astar in Fig. 5).

``warm_lines`` enumerates the warm set (stream + hot + sparse regions)
so a run can pre-install it in the memory-side cache, standing in for
the paper's warmup phase. All randomness is a pure function of
(profile, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError

LINE_BYTES = 64
LINES_PER_MB = (1 << 20) // LINE_BYTES
SECTOR_LINES = 64  # 4 KB regions for the sparse class
NUM_STREAMS = 4
LOCAL_REGION_OFFSET = 1 << 28  # keeps the local region away from the warm set


@dataclass(frozen=True)
class AccessMix:
    """Mixture weights of the five access classes (must sum to 1)."""

    local: float
    stream: float
    hot: float
    fresh: float
    sparse: float

    def __post_init__(self) -> None:
        weights = (self.local, self.stream, self.hot, self.fresh, self.sparse)
        if abs(sum(weights) - 1.0) > 1e-6:
            raise WorkloadError(f"access mix must sum to 1, got {sum(weights)}")
        if min(weights) < 0:
            raise WorkloadError("access mix weights must be non-negative")


@dataclass(frozen=True)
class WorkloadProfile:
    """Tunable stand-in for one of the paper's benchmark snippets.

    Region sizes are stated at paper scale (MB); experiments shrink them
    together with the cache capacities. ``local_kb`` is *not* scaled —
    it models the SRAM-resident working set, and the private caches do
    not scale either.
    """

    name: str
    mem_per_kilo: int        # memory references per 1000 instructions
    write_fraction: float
    stream_mb: float         # warmed streaming arrays
    hot_mb: float            # warmed hot region (bigger than the L3)
    mix: AccessMix
    local_kb: int = 24
    stride_lines: int = 1
    sparse_mb: float = 0.0   # warmed sparse space (0 = none)
    hot_sector_burst: int = 10  # consecutive hot accesses per 4 KB sector
    bandwidth_sensitive: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.mem_per_kilo <= 1000:
            raise WorkloadError(f"{self.name}: mem_per_kilo out of range")
        if not 0 <= self.write_fraction < 1:
            raise WorkloadError(f"{self.name}: bad write fraction")
        if self.stream_mb < 0 or self.hot_mb <= 0 or self.sparse_mb < 0:
            raise WorkloadError(f"{self.name}: region sizes must be sensible")
        if self.mix.sparse > 0 and self.sparse_mb <= 0:
            raise WorkloadError(f"{self.name}: sparse accesses need sparse_mb")


@dataclass(frozen=True)
class _Regions:
    """Scaled line-address layout of one workload copy."""

    local_lines: int
    stream_lines: int
    hot_base: int
    hot_lines: int
    sparse_base: int
    sparse_regions: int
    fresh_base: int

    @property
    def warm_lines_count(self) -> int:
        return self.stream_lines + self.hot_lines + self.sparse_regions


def _align(lines: int) -> int:
    """Round a region up to a whole number of 4 KB sectors."""
    return ((lines + SECTOR_LINES - 1) // SECTOR_LINES) * SECTOR_LINES


def _layout(profile: WorkloadProfile, scale: float) -> _Regions:
    stream_lines = _align(int(profile.stream_mb * scale * LINES_PER_MB))
    if profile.mix.stream > 0:
        stream_lines = max(stream_lines, 4 * SECTOR_LINES)
    hot_lines = max(SECTOR_LINES,
                    _align(int(profile.hot_mb * scale * LINES_PER_MB)))
    sparse_regions = (
        max(64, int(profile.sparse_mb * scale * LINES_PER_MB) // SECTOR_LINES)
        if profile.mix.sparse > 0
        else 0
    )
    hot_base = stream_lines
    sparse_base = hot_base + hot_lines
    # Round the fresh space up to a sector boundary past the sparse span.
    fresh_base = sparse_base + sparse_regions * SECTOR_LINES
    fresh_base = (fresh_base // SECTOR_LINES + 1) * SECTOR_LINES
    return _Regions(
        local_lines=max(64, profile.local_kb * 1024 // LINE_BYTES),
        stream_lines=stream_lines,
        hot_base=hot_base,
        hot_lines=hot_lines,
        sparse_base=sparse_base,
        sparse_regions=sparse_regions,
        fresh_base=fresh_base,
    )


def _seed_for(profile: WorkloadProfile, seed: int) -> int:
    name_hash = sum((i + 1) * ord(c) for i, c in enumerate(profile.name))
    return (name_hash & 0xFFFFFFFF) ^ (seed * 0x9E3779B9)


def generate_trace(
    profile: WorkloadProfile,
    num_refs: int,
    base_line: int = 0,
    scale: float = 1.0,
    seed: int = 0,
) -> Iterator[tuple[int, bool, int]]:
    """Yield ``num_refs`` trace entries for one copy of the workload.

    ``base_line`` offsets the copy's address space (rate mode runs
    disjoint copies); ``scale`` shrinks the warmed regions in step with
    the experiment's capacity scaling.
    """
    if num_refs <= 0:
        raise WorkloadError(f"num_refs must be positive, got {num_refs}")
    rng = random.Random(_seed_for(profile, seed))
    regions = _layout(profile, scale)

    mean_gap = max(0, 1000 // profile.mem_per_kilo - 1)
    mix = profile.mix
    t_local = mix.local
    t_stream = t_local + mix.stream
    t_hot = t_stream + mix.hot
    t_fresh = t_hot + mix.fresh

    stride = profile.stride_lines
    stream_pos = [
        regions.stream_lines * i // NUM_STREAMS for i in range(NUM_STREAMS)
    ]
    stream_idx = 0
    fresh_ptr = regions.fresh_base
    local_base = base_line + LOCAL_REGION_OFFSET
    # Hot accesses burst within one 4 KB sector before moving on, the
    # page-level spatial locality real workloads have (keeps the sector
    # metadata / tag-cache working set realistic).
    hot_sectors = max(1, regions.hot_lines // SECTOR_LINES)
    hot_burst = profile.hot_sector_burst
    hot_sector_base = regions.hot_base

    # The loop runs once per reference across every core, so RNG methods
    # and per-draw constants are bound to locals, and each bounded draw
    # inlines CPython's ``_randbelow_with_getrandbits`` rejection loop
    # (k = bound.bit_length(); draw getrandbits(k) until < bound). The
    # draw *sequence* is part of the reproducibility contract: these are
    # the exact getrandbits calls randrange(bound) makes, so the stream
    # is bit-identical — just without two interpreter frames per draw.
    rand = rng.random
    getrandbits = rng.getrandbits
    gap_span = 2 * mean_gap + 1
    gap_bits = gap_span.bit_length()
    local_lines = regions.local_lines
    local_bits = local_lines.bit_length()
    stream_mod = max(1, regions.stream_lines)
    hot_base = regions.hot_base
    hot_bits = hot_sectors.bit_length()
    hot_move = 1.0 / hot_burst
    sector_bits = SECTOR_LINES.bit_length()
    sparse_base = regions.sparse_base
    sparse_regions = regions.sparse_regions
    sparse_bits = sparse_regions.bit_length()
    write_fraction = profile.write_fraction

    for _ in range(num_refs):
        if mean_gap:
            gap = getrandbits(gap_bits)
            while gap >= gap_span:
                gap = getrandbits(gap_bits)
        else:
            gap = 0
        draw = rand()
        if draw < t_local:
            r = getrandbits(local_bits)
            while r >= local_lines:
                r = getrandbits(local_bits)
            line = local_base + r
        elif draw < t_stream:
            pos = stream_pos[stream_idx]
            line = base_line + pos % stream_mod
            stream_pos[stream_idx] = (pos + stride) % stream_mod
            stream_idx = (stream_idx + 1) % NUM_STREAMS
        elif draw < t_hot:
            if rand() < hot_move:
                r = getrandbits(hot_bits)
                while r >= hot_sectors:
                    r = getrandbits(hot_bits)
                hot_sector_base = hot_base + r * SECTOR_LINES
            r = getrandbits(sector_bits)
            while r >= SECTOR_LINES:
                r = getrandbits(sector_bits)
            line = base_line + hot_sector_base + r
        elif draw < t_fresh:
            line = base_line + fresh_ptr
            fresh_ptr += 1
        else:
            r = getrandbits(sparse_bits)
            while r >= sparse_regions:
                r = getrandbits(sparse_bits)
            line = base_line + sparse_base + r * SECTOR_LINES
        is_write = rand() < write_fraction
        yield gap, is_write, line


def trace_columns(
    profile: WorkloadProfile,
    num_refs: int,
    scale: float = 1.0,
    seed: int = 0,
) -> tuple[list[int], list[float], list[int]]:
    """Column-wise twin of :func:`generate_trace` at ``base_line == 0``.

    Returns ``(gaps, write_draws, rel_lines)``: ``write_draws`` holds
    the raw ``rng.random()`` value the generator compares against the
    write fraction, and ``rel_lines`` are base-0 line addresses.  The
    RNG call *sequence* is identical to the generator's — the same
    ``getrandbits`` rejection loops, in the same order, on the same
    ``Random`` state — so a vectorizing backend can batch the final
    ``line = base + rel`` / ``is_write = draw < wf`` materialization
    (pure arithmetic; no entropy) while the random stream stays
    byte-identical.  ``base_line`` never enters the RNG stream, which is
    why one base-0 column set serves every per-core offset.
    """
    if num_refs <= 0:
        raise WorkloadError(f"num_refs must be positive, got {num_refs}")
    rng = random.Random(_seed_for(profile, seed))
    regions = _layout(profile, scale)

    mean_gap = max(0, 1000 // profile.mem_per_kilo - 1)
    mix = profile.mix
    t_local = mix.local
    t_stream = t_local + mix.stream
    t_hot = t_stream + mix.hot
    t_fresh = t_hot + mix.fresh

    stride = profile.stride_lines
    stream_pos = [
        regions.stream_lines * i // NUM_STREAMS for i in range(NUM_STREAMS)
    ]
    stream_idx = 0
    fresh_ptr = regions.fresh_base

    rand = rng.random
    getrandbits = rng.getrandbits
    gap_span = 2 * mean_gap + 1
    gap_bits = gap_span.bit_length()
    local_lines = regions.local_lines
    local_bits = local_lines.bit_length()
    stream_mod = max(1, regions.stream_lines)
    hot_sectors = max(1, regions.hot_lines // SECTOR_LINES)
    hot_base = regions.hot_base
    hot_bits = hot_sectors.bit_length()
    hot_move = 1.0 / profile.hot_sector_burst
    hot_sector_base = hot_base
    sector_bits = SECTOR_LINES.bit_length()
    sparse_base = regions.sparse_base
    sparse_regions = regions.sparse_regions
    sparse_bits = sparse_regions.bit_length()

    gaps: list[int] = []
    draws: list[float] = []
    rels: list[int] = []
    append_gap = gaps.append
    append_draw = draws.append
    append_rel = rels.append
    for _ in range(num_refs):
        if mean_gap:
            gap = getrandbits(gap_bits)
            while gap >= gap_span:
                gap = getrandbits(gap_bits)
        else:
            gap = 0
        draw = rand()
        if draw < t_local:
            r = getrandbits(local_bits)
            while r >= local_lines:
                r = getrandbits(local_bits)
            rel = LOCAL_REGION_OFFSET + r
        elif draw < t_stream:
            pos = stream_pos[stream_idx]
            rel = pos % stream_mod
            stream_pos[stream_idx] = (pos + stride) % stream_mod
            stream_idx = (stream_idx + 1) % NUM_STREAMS
        elif draw < t_hot:
            if rand() < hot_move:
                r = getrandbits(hot_bits)
                while r >= hot_sectors:
                    r = getrandbits(hot_bits)
                hot_sector_base = hot_base + r * SECTOR_LINES
            r = getrandbits(sector_bits)
            while r >= SECTOR_LINES:
                r = getrandbits(sector_bits)
            rel = hot_sector_base + r
        elif draw < t_fresh:
            rel = fresh_ptr
            fresh_ptr += 1
        else:
            r = getrandbits(sparse_bits)
            while r >= sparse_regions:
                r = getrandbits(sparse_bits)
            rel = sparse_base + r * SECTOR_LINES
        append_gap(gap)
        append_rel(rel)
        append_draw(rand())
    return gaps, draws, rels


def warm_lines(
    profile: WorkloadProfile,
    base_line: int = 0,
    scale: float = 1.0,
    seed: int = 0,
) -> Iterator[tuple[int, bool]]:
    """Enumerate the warm set: ``(line, dirty)`` for every block that
    would be resident in the memory-side cache after warmup."""
    rng = random.Random(_seed_for(profile, seed) ^ 0x5A5A5A5A)
    regions = _layout(profile, scale)
    wf = profile.write_fraction
    rand = rng.random
    if profile.mix.stream > 0:
        for line in range(base_line, base_line + regions.stream_lines):
            yield line, rand() < wf
    if profile.mix.hot > 0:
        for line in range(base_line + regions.hot_base,
                          base_line + regions.hot_base + regions.hot_lines):
            yield line, rand() < wf
    sparse_start = base_line + regions.sparse_base
    for region in range(regions.sparse_regions):
        yield sparse_start + region * SECTOR_LINES, rand() < wf


def warm_columns(
    profile: WorkloadProfile,
    scale: float = 1.0,
    seed: int = 0,
) -> tuple[list[tuple[int, int]], tuple[int, int], list[float]]:
    """Column-wise twin of :func:`warm_lines` at ``base_line == 0``.

    Returns ``(spans, sparse, draws)``: ``spans`` is the base-0
    ``[start, stop)`` contiguous line ranges (stream, then hot),
    ``sparse`` is ``(start, regions)`` for the one-line-per-4KB sparse
    heads, and ``draws`` holds the raw ``rng.random()`` dirty draw for
    every warm line in yield order.  The draw sequence is exactly the
    generator's (one ``random()`` per line, same seeding), so comparing
    the draws against the write fraction — scalar or vectorized —
    reproduces :func:`warm_lines` bit for bit.
    """
    rng = random.Random(_seed_for(profile, seed) ^ 0x5A5A5A5A)
    regions = _layout(profile, scale)
    spans: list[tuple[int, int]] = []
    if profile.mix.stream > 0:
        spans.append((0, regions.stream_lines))
    if profile.mix.hot > 0:
        spans.append((regions.hot_base,
                      regions.hot_base + regions.hot_lines))
    total = sum(stop - start for start, stop in spans) + regions.sparse_regions
    rand = rng.random
    draws = [rand() for _ in range(total)]
    return spans, (regions.sparse_base, regions.sparse_regions), draws


def core_base_line(core_id: int) -> int:
    """Disjoint, set-staggered per-copy address spaces.

    Copies sit ~64 GB apart, offset by an odd number of 4 KB sectors so
    different cores' regions do not alias to the same cache sets (the
    OS's physical page assignment provides this in a real system).
    """
    return core_id * ((1 << 30) + 6529 * SECTOR_LINES)
