"""Closed-form workload expectations.

The profile parameters predict the headline characteristics in closed
form; these helpers expose the arithmetic used to tune the seventeen
profiles and let users sanity-check a custom profile before burning
simulation time:

- expected L3 MPKI  ≈ ``mem_per_kilo * (1 - local)``
  (every non-local class misses the scaled L3);
- expected MS$ hit rate ≈ ``1 - fresh / (1 - local)``
  (fresh is the only class outside the warm set);
- warm-set size and sector demand, to check capacity budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import (
    SECTOR_LINES,
    WorkloadProfile,
    _layout,
)


@dataclass(frozen=True)
class ProfileExpectations:
    """Predicted characteristics of one profile at a given scale."""

    name: str
    expected_mpki: float
    expected_hit_rate: float
    warm_lines: int
    warm_sectors: int
    warm_mb: float
    write_fraction: float
    bandwidth_sensitive: bool


def analyze_profile(profile: WorkloadProfile,
                    scale: float = 1.0) -> ProfileExpectations:
    """Closed-form expectations for one profile."""
    mix = profile.mix
    non_local = 1.0 - mix.local
    expected_mpki = profile.mem_per_kilo * non_local
    expected_hit = 1.0 - (mix.fresh / non_local if non_local > 0 else 0.0)

    regions = _layout(profile, scale)
    warm_lines = (regions.stream_lines + regions.hot_lines
                  + regions.sparse_regions)
    # Sector demand: dense regions fill sectors; each sparse region costs
    # a whole sector for one line.
    dense_sectors = (regions.stream_lines + regions.hot_lines) // SECTOR_LINES
    warm_sectors = dense_sectors + regions.sparse_regions
    return ProfileExpectations(
        name=profile.name,
        expected_mpki=expected_mpki,
        expected_hit_rate=expected_hit,
        warm_lines=warm_lines,
        warm_sectors=warm_sectors,
        warm_mb=warm_sectors * SECTOR_LINES * 64 / (1 << 20),
        write_fraction=profile.write_fraction,
        bandwidth_sensitive=profile.bandwidth_sensitive,
    )


def catalog_expectations(scale: float = 1.0) -> list[ProfileExpectations]:
    """Expectations for every named profile, sorted by name."""
    return [analyze_profile(p, scale) for _, p in sorted(PROFILES.items())]


def sector_budget_ok(num_copies: int, capacity_bytes: int,
                     sector_bytes: int, assoc: int,
                     scale: float = 1.0,
                     headroom: float = 0.95) -> dict[str, bool]:
    """Check each profile's rate-N warm set against a cache's sector
    capacity (the constraint that broke early tunings: sparse regions
    consume a whole sector per line)."""
    total_sectors = capacity_bytes // sector_bytes
    verdicts = {}
    for exp in catalog_expectations(scale):
        demand = exp.warm_sectors * num_copies
        verdicts[exp.name] = demand <= total_sectors * headroom
    return verdicts


def print_catalog(scale: float = 1.0) -> None:
    """Dump the tuning table (used during profile calibration)."""
    print(f"{'profile':16s} {'mpki':>6s} {'hit%':>6s} {'warmMB':>7s} "
          f"{'sectors':>8s} {'wf':>5s} {'class':>11s}")
    for exp in catalog_expectations(scale):
        cls = "sensitive" if exp.bandwidth_sensitive else "insensitive"
        print(f"{exp.name:16s} {exp.expected_mpki:6.1f} "
              f"{exp.expected_hit_rate * 100:6.1f} {exp.warm_mb:7.1f} "
              f"{exp.warm_sectors:8d} {exp.write_fraction:5.2f} {cls:>11s}")


if __name__ == "__main__":
    print_catalog()
