"""``repro`` — the single command-line entry point.

One command, eight subcommands, each delegating to the subsystem CLI it
replaces::

    repro experiment fig06 --scale smoke     (was: repro-experiment)
    repro analyze report .repro-traces       (was: repro-analyze)
    repro validate run all                   (was: repro-validate)
    repro serve --port 8321                  (new: the job service)
    repro top --url http://host:8321         (live service dashboard)
    repro metrics --lint                     (scrape/lint /metrics)
    repro profile run fig06                  (sampling profiler + flamegraphs)
    repro dash --out dash.html               (offline performance observatory)

Global flags (before the subcommand) configure structured logging for
every subsystem: ``repro --log-level debug --log-json serve ...``.

The old console scripts still work as thin shims: they print a
one-line deprecation note to stderr and delegate here, so existing
automation keeps running while migrating (see the table in
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence

PROG = "repro"

_USAGE = """\
usage: repro [--log-level LEVEL] [--log-json] <command> [args...]

commands:
  experiment  regenerate the paper's tables and figures
  analyze     offline trace analysis, run comparison, bench trajectory
  validate    judge machine-checkable paper-shape claims
  serve       run the async job service (POST /jobs, SSE progress)
  top         live terminal dashboard over a running service
  metrics     fetch, snapshot, or lint a service's /metrics scrape
  profile     capture, diff, and flamegraph sampling profiles
  dash        render the offline HTML performance observatory

global options:
  --log-level LEVEL   emit repro.* logs at LEVEL (debug/info/warning/...)
  --log-json          structured one-JSON-object-per-line logs

run 'repro <command> --help' for command-specific options.
"""


def _command_main(command: str) -> Callable[[Optional[Sequence[str]]], int]:
    """Resolve a subcommand's main lazily: 'repro serve --help' must not
    import the experiment registry, and vice versa."""
    if command == "experiment":
        from repro.experiments.runner import main
    elif command == "analyze":
        from repro.obs.cli import main
    elif command == "validate":
        from repro.validate.cli import main
    elif command == "serve":
        from repro.service.server import main
    elif command == "top":
        from repro.obs.top import top_main as main
    elif command == "metrics":
        from repro.obs.top import metrics_main as main
    elif command == "profile":
        from repro.obs.profcli import profile_main as main
    elif command == "dash":
        from repro.obs.dash import dash_main as main
    else:
        raise KeyError(command)
    return main


def _strip_logging_flags(argv: list) -> tuple[list, Optional[str], bool]:
    """Pull global ``--log-level``/``--log-json`` out of the front of
    argv (before the subcommand), leaving subcommand args untouched."""
    level: Optional[str] = None
    json_mode = False
    rest: list = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if rest:  # past the subcommand: everything belongs to it
            rest.append(arg)
        elif arg == "--log-json":
            json_mode = True
        elif arg == "--log-level":
            if i + 1 >= len(argv):
                raise ValueError("--log-level needs a value")
            level = argv[i + 1]
            i += 1
        elif arg.startswith("--log-level="):
            level = arg.split("=", 1)[1]
        else:
            rest.append(arg)
        i += 1
    return rest, level, json_mode


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        argv, log_level, log_json = _strip_logging_flags(argv)
    except ValueError as exc:
        print(f"{PROG}: {exc}", file=sys.stderr)
        return 2
    if log_level is not None or log_json:
        from repro.obs.logs import configure_logging
        try:
            configure_logging(level=log_level or "info", json_mode=log_json)
        except ValueError as exc:
            print(f"{PROG}: {exc}", file=sys.stderr)
            return 2
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    if argv[0] in ("-V", "--version"):
        from repro import __version__
        print(f"repro {__version__}")
        return 0
    try:
        command_main = _command_main(argv[0])
    except KeyError:
        print(f"{PROG}: unknown command {argv[0]!r}\n", file=sys.stderr)
        print(_USAGE, end="", file=sys.stderr)
        return 2
    return command_main(argv[1:])


# ----------------------------------------------------------------------
# Deprecation shims for the pre-unification console scripts
# ----------------------------------------------------------------------

def _shim(old: str, command: str,
          argv: Optional[Sequence[str]] = None) -> int:
    print(f"warning: '{old}' is deprecated; use 'repro {command}' "
          "(same arguments)", file=sys.stderr)
    return _command_main(command)(
        list(sys.argv[1:] if argv is None else argv))


def experiment_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-experiment`` console script."""
    return _shim("repro-experiment", "experiment", argv)


def analyze_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-analyze`` console script."""
    return _shim("repro-analyze", "analyze", argv)


def validate_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-validate`` console script."""
    return _shim("repro-validate", "validate", argv)


if __name__ == "__main__":
    raise SystemExit(main())
