"""``repro`` — the single command-line entry point.

One command, four subcommands, each delegating to the subsystem CLI it
replaces::

    repro experiment fig06 --scale smoke     (was: repro-experiment)
    repro analyze report .repro-traces       (was: repro-analyze)
    repro validate run all                   (was: repro-validate)
    repro serve --port 8321                  (new: the job service)

The old console scripts still work as thin shims: they print a
one-line deprecation note to stderr and delegate here, so existing
automation keeps running while migrating (see the table in
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence

PROG = "repro"

_USAGE = """\
usage: repro <command> [args...]

commands:
  experiment  regenerate the paper's tables and figures
  analyze     offline trace analysis, run comparison, bench trajectory
  validate    judge machine-checkable paper-shape claims
  serve       run the async job service (POST /jobs, SSE progress)

run 'repro <command> --help' for command-specific options.
"""


def _command_main(command: str) -> Callable[[Optional[Sequence[str]]], int]:
    """Resolve a subcommand's main lazily: 'repro serve --help' must not
    import the experiment registry, and vice versa."""
    if command == "experiment":
        from repro.experiments.runner import main
    elif command == "analyze":
        from repro.obs.cli import main
    elif command == "validate":
        from repro.validate.cli import main
    elif command == "serve":
        from repro.service.server import main
    else:
        raise KeyError(command)
    return main


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    if argv[0] in ("-V", "--version"):
        from repro import __version__
        print(f"repro {__version__}")
        return 0
    try:
        command_main = _command_main(argv[0])
    except KeyError:
        print(f"{PROG}: unknown command {argv[0]!r}\n", file=sys.stderr)
        print(_USAGE, end="", file=sys.stderr)
        return 2
    return command_main(argv[1:])


# ----------------------------------------------------------------------
# Deprecation shims for the pre-unification console scripts
# ----------------------------------------------------------------------

def _shim(old: str, command: str,
          argv: Optional[Sequence[str]] = None) -> int:
    print(f"warning: '{old}' is deprecated; use 'repro {command}' "
          "(same arguments)", file=sys.stderr)
    return _command_main(command)(
        list(sys.argv[1:] if argv is None else argv))


def experiment_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-experiment`` console script."""
    return _shim("repro-experiment", "experiment", argv)


def analyze_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-analyze`` console script."""
    return _shim("repro-analyze", "analyze", argv)


def validate_shim(argv: Optional[Sequence[str]] = None) -> int:
    """The legacy ``repro-validate`` console script."""
    return _shim("repro-validate", "validate", argv)


if __name__ == "__main__":
    raise SystemExit(main())
