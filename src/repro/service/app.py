"""The service's HTTP surface: a dependency-free ASGI application.

Implements the ASGI 3.0 protocol directly (``async def __call__(scope,
receive, send)``), so the same object is served by uvicorn (the
``[service]`` extra), by the bundled stdlib fallback server, and by the
in-process test client — with zero third-party imports in the core.

Routes::

    POST /jobs               submit an ExperimentRequest     -> 202 JobStatus
    GET  /jobs               list jobs (?state=, ?limit=)    -> 200 [JobStatus]
    GET  /jobs/<id>          job status                      -> 200 JobStatus
    GET  /jobs/<id>/result   rendered result table           -> 200 / 409
    GET  /jobs/<id>/events   progress stream                 -> 200 SSE
    POST /jobs/<id>/cancel   cancel queued/running job       -> 202 JobStatus
    GET  /healthz            combined health (back-compat)   -> 200
    GET  /healthz/live       liveness: process is serving    -> 200
    GET  /healthz/ready      readiness: can accept work      -> 200 / 503
    GET  /metrics            Prometheus text exposition      -> 200
    GET  /stats              queue depth, cache-hit ratio,
                             events/sec, service counters    -> 200

Every request passes through a small middleware in :meth:`ServiceApp.
__call__` that tracks in-flight count, per-route request totals and a
latency histogram (routes are *templates* — ``/jobs/{id}`` — so metric
cardinality stays bounded no matter how many jobs exist).

``POST /jobs`` participates in W3C Trace Context: a valid incoming
``traceparent`` header is adopted, anything else gets a freshly minted
one; either way the id is persisted on the job row, echoed as a
response header, injected into every SSE frame, and carried by the
worker into logs, cell spans, and run manifests.

The SSE stream replays the job's persisted progress events from
``?after=<seq>`` (or the ``Last-Event-ID`` header), then keeps polling
the store until the job reaches a terminal state, closing with an
``event: done`` frame — so clients connecting before, during, or after
execution all see the same ordered event sequence.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional
from urllib.parse import parse_qs

from repro.api import ExperimentRequest
from repro.errors import ConfigError, ReproError
from repro.obs.metrics import REGISTRY
from repro.obs.spans import make_traceparent, parse_traceparent
from repro.service.jobstore import JobNotFound, JobStore

#: How often the SSE loop polls the store for new events (seconds).
SSE_POLL_SECONDS = 0.1
#: Idle heartbeat cadence: a comment frame keeps proxies from timing out.
SSE_HEARTBEAT_SECONDS = 10.0

JSON_HEADERS = [(b"content-type", b"application/json")]
SSE_HEADERS = [
    (b"content-type", b"text/event-stream"),
    (b"cache-control", b"no-cache"),
    (b"connection", b"keep-alive"),
]
METRICS_CONTENT_TYPE = b"text/plain; version=0.0.4; charset=utf-8"

#: Sub-second buckets: HTTP handling is store queries, not simulation.
_HTTP_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                 1.0, 2.5, 5.0, 10.0)

HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, route template, and status",
    ("method", "route", "status"))
HTTP_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by method and route template",
    ("method", "route"), buckets=_HTTP_BUCKETS)
HTTP_IN_FLIGHT = REGISTRY.gauge(
    "repro_http_requests_in_flight",
    "HTTP requests currently being handled")
SSE_STREAMS = REGISTRY.gauge(
    "repro_sse_streams_active",
    "Server-sent-event streams currently open")
SSE_FRAMES = REGISTRY.counter(
    "repro_sse_frames_total",
    "Server-sent-event data frames written (excludes heartbeats)")
QUEUE_DEPTH = REGISTRY.gauge(
    "repro_queue_depth", "Jobs currently queued (refreshed on scrape)")
JOBS_BY_STATE = REGISTRY.gauge(
    "repro_jobs_by_state",
    "Jobs in the store by lifecycle state (refreshed on scrape)",
    ("state",))
WORKERS_ALIVE = REGISTRY.gauge(
    "repro_workers_alive", "Live worker threads in this service process")

#: Known route templates, so unmatched paths collapse into one label.
_ROUTES = {
    "/", "/healthz", "/healthz/live", "/healthz/ready",
    "/metrics", "/stats", "/jobs",
}
_JOB_VERBS = {"result", "events", "cancel"}


def route_template(path: str) -> str:
    """Collapse a concrete path to its bounded-cardinality template."""
    if path in _ROUTES:
        return path
    if path.startswith("/jobs/"):
        parts = path.split("/")[2:]
        if len(parts) == 1:
            return "/jobs/{id}"
        if len(parts) == 2 and parts[1] in _JOB_VERBS:
            return "/jobs/{id}/" + parts[1]
    return "(unmatched)"


def _header(scope, name: bytes) -> Optional[str]:
    for key, value in scope.get("headers", []):
        if key == name:
            return value.decode("latin-1")
    return None


class ServiceApp:
    """ASGI app over one :class:`JobStore` (and, optionally, its pool)."""

    def __init__(self, store: JobStore, pool=None) -> None:
        self.store = store
        self.pool = pool

    # ------------------------------------------------------------------
    # ASGI plumbing
    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        query = parse_qs(scope.get("query_string", b"").decode("latin-1"))
        route = route_template(path)

        status_box = {"status": None}

        async def instrumented_send(message) -> None:
            if message["type"] == "http.response.start":
                status_box["status"] = message["status"]
            await send(message)

        HTTP_IN_FLIGHT.inc()
        started = time.perf_counter()
        try:
            try:
                await self._route(method, path, query, scope, receive,
                                  instrumented_send)
            except JobNotFound as exc:
                await self._json(instrumented_send, 404, {"error": str(exc)})
            except ConfigError as exc:
                await self._json(instrumented_send, 400, {"error": str(exc)})
            except ReproError as exc:
                await self._json(instrumented_send, 500, {"error": str(exc)})
        finally:
            HTTP_IN_FLIGHT.dec()
            elapsed = time.perf_counter() - started
            status = status_box["status"]
            HTTP_REQUESTS.labels(method=method, route=route,
                                 status=str(status or 500)).inc()
            HTTP_LATENCY.labels(method=method, route=route).observe(elapsed)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _route(self, method, path, query, scope, receive, send) -> None:
        if path == "/healthz" and method == "GET":
            # Back-compat combined view: old monitors keep working.
            await self._json(send, 200, self._health_payload())
            return
        if path == "/healthz/live" and method == "GET":
            # Liveness is just "the event loop answers": no store I/O,
            # so a wedged database cannot make an orchestrator restart
            # an otherwise-healthy process.
            await self._json(send, 200, {"ok": True})
            return
        if path == "/healthz/ready" and method == "GET":
            payload = self._health_payload()
            await self._json(send, 200 if payload["ok"] else 503, payload)
            return
        if path == "/metrics" and method == "GET":
            await self._metrics(send)
            return
        if path == "/stats" and method == "GET":
            stats = self.store.stats()
            if self.pool is not None:
                stats["workers"] = self.pool.alive
                stats["jobs_run_by_this_process"] = self.pool.jobs_run
            stats["counters"] = self._service_counters()
            await self._json(send, 200, stats)
            return
        if path == "/jobs" and method == "POST":
            await self._submit(scope, receive, send)
            return
        if path == "/jobs" and method == "GET":
            state = (query.get("state") or [None])[0]
            limit = int((query.get("limit") or ["100"])[0])
            jobs = self.store.list_jobs(state=state, limit=limit)
            await self._json(send, 200,
                             {"jobs": [job.to_dict() for job in jobs]})
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]  # ['<id>'] or ['<id>', verb]
            job_id = parts[0]
            verb = parts[1] if len(parts) > 1 else None
            if verb is None and method == "GET":
                await self._json(send, 200, self.store.get(job_id).to_dict())
                return
            if verb == "result" and method == "GET":
                await self._result(send, job_id)
                return
            if verb == "events" and method == "GET":
                await self._events(scope, query, send, job_id)
                return
            if verb == "cancel" and method == "POST":
                await self._json(send, 202,
                                 self.store.cancel(job_id).to_dict())
                return
        await self._json(send, 404, {"error": f"no route {method} {path}"})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict:
        """Readiness: can this process actually accept and run work?"""
        stats = self.store.stats()
        workers = self.pool.alive if self.pool is not None else 0
        # A pool that was started but whose threads all died is the
        # one state where accepting jobs would silently strand them.
        pool_dead = (self.pool is not None
                     and getattr(self.pool, "_threads", None)
                     and workers == 0)
        return {
            "ok": not pool_dead,
            "queue_depth": stats["queue_depth"],
            "workers": workers,
            # Seconds since the least-recently-beating running job last
            # signalled progress (None = nothing running).  A large value
            # with live workers means execution is stalled, not idle.
            "stalest_heartbeat_seconds":
                stats.get("stalest_heartbeat_seconds"),
            "last_orphan_recovery": self.store.last_recovery,
        }

    def _service_counters(self) -> dict:
        """Registry-backed counters folded into ``GET /stats``."""
        value = REGISTRY.value
        return {
            "jobs_submitted": value("repro_jobs_submitted_total"),
            "jobs_deduped": value("repro_jobs_deduped_total"),
            "job_retries": value("repro_job_retries_total"),
            "orphans_requeued": value("repro_jobs_orphaned_total",
                                      {"outcome": "requeued"}),
            "orphans_failed": value("repro_jobs_orphaned_total",
                                    {"outcome": "failed"}),
            "torn_trace_lines": value("repro_trace_torn_lines_total"),
            "sse_frames": value("repro_sse_frames_total"),
        }

    async def _metrics(self, send) -> None:
        # Queue/state gauges are *sampled* at scrape time from SQLite
        # (this app may share the store with other processes), then the
        # registry renders one atomic snapshot.
        stats = self.store.stats()
        QUEUE_DEPTH.set(stats["queue_depth"])
        for state, count in stats["jobs"].items():
            JOBS_BY_STATE.labels(state=state).set(count)
        WORKERS_ALIVE.set(self.pool.alive if self.pool is not None else 0)
        body = REGISTRY.render().encode("utf-8")
        await send({"type": "http.response.start", "status": 200,
                    "headers": [(b"content-type", METRICS_CONTENT_TYPE)]})
        await send({"type": "http.response.body", "body": body})

    async def _submit(self, scope, receive, send) -> None:
        body = await self._read_body(receive)
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            await self._json(send, 400, {"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(data, dict):
            await self._json(send, 400,
                             {"error": "request body must be a JSON object"})
            return
        request = ExperimentRequest.from_dict(data)
        request.validate()
        incoming = _header(scope, b"traceparent")
        traceparent = (incoming if parse_traceparent(incoming)
                       else make_traceparent())
        job = self.store.submit(request, traceparent=traceparent)
        headers = list(JSON_HEADERS)
        headers.append((b"traceparent",
                        (job.traceparent or traceparent).encode("latin-1")))
        await self._json(send, 202, job.to_dict(), headers=headers)

    async def _result(self, send, job_id: str) -> None:
        job = self.store.get(job_id)
        if job.state != "succeeded":
            await self._json(send, 409, {
                "error": f"job is {job.state}, not succeeded",
                "job": job.to_dict(),
            })
            return
        await self._json(send, 200, {
            "job": job.to_dict(),
            "result": self.store.result(job_id),
        })

    async def _events(self, scope, query, send, job_id: str) -> None:
        job = self.store.get(job_id)  # 404 before the stream starts
        traceparent = job.traceparent
        after = int((query.get("after") or ["0"])[0])
        for name, value in scope.get("headers", []):
            if name == b"last-event-id":
                try:
                    after = int(value.decode("latin-1"))
                except ValueError:
                    pass
        poll = float((query.get("poll") or [str(SSE_POLL_SECONDS)])[0])
        await send({"type": "http.response.start", "status": 200,
                    "headers": list(SSE_HEADERS)})
        last_sent = 0.0
        loop = asyncio.get_event_loop()
        SSE_STREAMS.inc()
        try:
            while True:
                events = self.store.events_since(job_id, after)
                for seq, payload in events:
                    after = seq
                    if traceparent:
                        payload = dict(payload)
                        payload.setdefault("traceparent", traceparent)
                    frame = (f"id: {seq}\n"
                             f"data: {json.dumps(payload)}\n\n")
                    await send({"type": "http.response.body",
                                "body": frame.encode("utf-8"),
                                "more_body": True})
                    SSE_FRAMES.inc()
                    last_sent = loop.time()
                job = self.store.get(job_id)
                if job.terminal and not self.store.events_since(job_id, after):
                    done = (f"event: done\n"
                            f"data: {json.dumps(job.to_dict())}\n\n")
                    await send({"type": "http.response.body",
                                "body": done.encode("utf-8"),
                                "more_body": False})
                    SSE_FRAMES.inc()
                    return
                if loop.time() - last_sent > SSE_HEARTBEAT_SECONDS:
                    await send({"type": "http.response.body",
                                "body": b": heartbeat\n\n",
                                "more_body": True})
                    last_sent = loop.time()
                await asyncio.sleep(poll)
        except (asyncio.CancelledError, ConnectionError):
            return  # client went away; nothing to clean up
        finally:
            SSE_STREAMS.dec()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    async def _read_body(receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":
                break
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        return b"".join(chunks)

    @staticmethod
    async def _json(send, status: int, payload: dict,
                    headers: Optional[list] = None) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        await send({"type": "http.response.start", "status": status,
                    "headers": (headers or list(JSON_HEADERS))})
        await send({"type": "http.response.body", "body": body})


def create_app(store, pool=None) -> ServiceApp:
    """App factory: ``store`` is a JobStore or a database path."""
    if not isinstance(store, JobStore):
        store = JobStore(store)
    return ServiceApp(store, pool=pool)
