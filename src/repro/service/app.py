"""The service's HTTP surface: a dependency-free ASGI application.

Implements the ASGI 3.0 protocol directly (``async def __call__(scope,
receive, send)``), so the same object is served by uvicorn (the
``[service]`` extra), by the bundled stdlib fallback server, and by the
in-process test client — with zero third-party imports in the core.

Routes::

    POST /jobs               submit an ExperimentRequest     -> 202 JobStatus
    GET  /jobs               list jobs (?state=, ?limit=)    -> 200 [JobStatus]
    GET  /jobs/<id>          job status                      -> 200 JobStatus
    GET  /jobs/<id>/result   rendered result table           -> 200 / 409
    GET  /jobs/<id>/events   progress stream                 -> 200 SSE
    POST /jobs/<id>/cancel   cancel queued/running job       -> 202 JobStatus
    GET  /healthz            liveness + worker count         -> 200
    GET  /stats              queue depth, cache-hit ratio,
                             events/sec                      -> 200

The SSE stream replays the job's persisted progress events from
``?after=<seq>`` (or the ``Last-Event-ID`` header), then keeps polling
the store until the job reaches a terminal state, closing with an
``event: done`` frame — so clients connecting before, during, or after
execution all see the same ordered event sequence.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional
from urllib.parse import parse_qs

from repro.api import ExperimentRequest
from repro.errors import ConfigError, ReproError
from repro.service.jobstore import JobNotFound, JobStore

#: How often the SSE loop polls the store for new events (seconds).
SSE_POLL_SECONDS = 0.1
#: Idle heartbeat cadence: a comment frame keeps proxies from timing out.
SSE_HEARTBEAT_SECONDS = 10.0

JSON_HEADERS = [(b"content-type", b"application/json")]
SSE_HEADERS = [
    (b"content-type", b"text/event-stream"),
    (b"cache-control", b"no-cache"),
    (b"connection", b"keep-alive"),
]


class ServiceApp:
    """ASGI app over one :class:`JobStore` (and, optionally, its pool)."""

    def __init__(self, store: JobStore, pool=None) -> None:
        self.store = store
        self.pool = pool

    # ------------------------------------------------------------------
    # ASGI plumbing
    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        query = parse_qs(scope.get("query_string", b"").decode("latin-1"))
        try:
            await self._route(method, path, query, scope, receive, send)
        except JobNotFound as exc:
            await self._json(send, 404, {"error": str(exc)})
        except ConfigError as exc:
            await self._json(send, 400, {"error": str(exc)})
        except ReproError as exc:
            await self._json(send, 500, {"error": str(exc)})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _route(self, method, path, query, scope, receive, send) -> None:
        if path == "/healthz" and method == "GET":
            await self._json(send, 200, {
                "ok": True,
                "queue_depth": self.store.stats()["queue_depth"],
                "workers": self.pool.alive if self.pool is not None else 0,
            })
            return
        if path == "/stats" and method == "GET":
            stats = self.store.stats()
            if self.pool is not None:
                stats["workers"] = self.pool.alive
                stats["jobs_run_by_this_process"] = self.pool.jobs_run
            await self._json(send, 200, stats)
            return
        if path == "/jobs" and method == "POST":
            await self._submit(receive, send)
            return
        if path == "/jobs" and method == "GET":
            state = (query.get("state") or [None])[0]
            limit = int((query.get("limit") or ["100"])[0])
            jobs = self.store.list_jobs(state=state, limit=limit)
            await self._json(send, 200,
                             {"jobs": [job.to_dict() for job in jobs]})
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]  # ['<id>'] or ['<id>', verb]
            job_id = parts[0]
            verb = parts[1] if len(parts) > 1 else None
            if verb is None and method == "GET":
                await self._json(send, 200, self.store.get(job_id).to_dict())
                return
            if verb == "result" and method == "GET":
                await self._result(send, job_id)
                return
            if verb == "events" and method == "GET":
                await self._events(scope, query, send, job_id)
                return
            if verb == "cancel" and method == "POST":
                await self._json(send, 202,
                                 self.store.cancel(job_id).to_dict())
                return
        await self._json(send, 404, {"error": f"no route {method} {path}"})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _submit(self, receive, send) -> None:
        body = await self._read_body(receive)
        try:
            data = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            await self._json(send, 400, {"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(data, dict):
            await self._json(send, 400,
                             {"error": "request body must be a JSON object"})
            return
        request = ExperimentRequest.from_dict(data)
        request.validate()
        job = self.store.submit(request)
        await self._json(send, 202, job.to_dict())

    async def _result(self, send, job_id: str) -> None:
        job = self.store.get(job_id)
        if job.state != "succeeded":
            await self._json(send, 409, {
                "error": f"job is {job.state}, not succeeded",
                "job": job.to_dict(),
            })
            return
        await self._json(send, 200, {
            "job": job.to_dict(),
            "result": self.store.result(job_id),
        })

    async def _events(self, scope, query, send, job_id: str) -> None:
        self.store.get(job_id)  # 404 before the stream starts
        after = int((query.get("after") or ["0"])[0])
        for name, value in scope.get("headers", []):
            if name == b"last-event-id":
                try:
                    after = int(value.decode("latin-1"))
                except ValueError:
                    pass
        poll = float((query.get("poll") or [str(SSE_POLL_SECONDS)])[0])
        await send({"type": "http.response.start", "status": 200,
                    "headers": list(SSE_HEADERS)})
        last_sent = 0.0
        loop = asyncio.get_event_loop()
        try:
            while True:
                events = self.store.events_since(job_id, after)
                for seq, payload in events:
                    after = seq
                    frame = (f"id: {seq}\n"
                             f"data: {json.dumps(payload)}\n\n")
                    await send({"type": "http.response.body",
                                "body": frame.encode("utf-8"),
                                "more_body": True})
                    last_sent = loop.time()
                job = self.store.get(job_id)
                if job.terminal and not self.store.events_since(job_id, after):
                    done = (f"event: done\n"
                            f"data: {json.dumps(job.to_dict())}\n\n")
                    await send({"type": "http.response.body",
                                "body": done.encode("utf-8"),
                                "more_body": False})
                    return
                if loop.time() - last_sent > SSE_HEARTBEAT_SECONDS:
                    await send({"type": "http.response.body",
                                "body": b": heartbeat\n\n",
                                "more_body": True})
                    last_sent = loop.time()
                await asyncio.sleep(poll)
        except (asyncio.CancelledError, ConnectionError):
            return  # client went away; nothing to clean up

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    async def _read_body(receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":
                break
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        return b"".join(chunks)

    @staticmethod
    async def _json(send, status: int, payload: dict,
                    headers: Optional[list] = None) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        await send({"type": "http.response.start", "status": status,
                    "headers": (headers or list(JSON_HEADERS))})
        await send({"type": "http.response.body", "body": body})


def create_app(store, pool=None) -> ServiceApp:
    """App factory: ``store`` is a JobStore or a database path."""
    if not isinstance(store, JobStore):
        store = JobStore(store)
    return ServiceApp(store, pool=pool)
