"""The service worker pool: jobs → the cell engine, with guard rails.

Each worker thread claims jobs from the :class:`~repro.service.jobstore.
JobStore` and executes them through the public facade
(:func:`repro.api.run_experiment`), so a service-executed job takes the
*identical* code path as a direct ``repro experiment`` invocation —
that, plus the shared content-addressed cell cache, is what makes
service results bit-identical to local runs and repeat submissions free.

Guard rails, all first-class:

- **timeout** — a per-job deadline checked between cells through the
  engine's ``should_stop`` hook; an expired job is failed (and retried,
  if its attempt budget allows) with everything simulated so far already
  in the cell cache;
- **cancellation** — ``cancel_requested`` on the job row, observed by
  the same hook;
- **retries** — bounded by ``ExperimentRequest.max_attempts`` with
  exponential backoff, bookkept by the store;
- **graceful drain** — ``stop()`` lets the in-flight *cells* finish,
  then releases unfinished jobs back to the queue without an attempt
  penalty, so a redeploy loses zero simulation work;
- **progress** — every settled cell posts an event to the store (the
  SSE feed), and traced jobs additionally stream sampled telemetry
  records through a :class:`~repro.obs.progress.TraceTailer`;
- **janitor** — one housekeeping thread per pool periodically recovers
  jobs whose worker heartbeat went silent (live orphan recovery, no
  restart needed), prunes terminal jobs' event logs past the TTL, and
  appends a metrics snapshot to the time-series store for `repro dash`.

Jobs submitted with ``profile=true`` run with the sampling profiler on
(observation-only: the result rows stay bit-identical) and carry the
merged collapsed-stack profile in their result payload.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.api import (
    CellExecutionCancelled,
    ExperimentRequest,
    JobStatus,
    result_to_dict,
    run_experiment,
)
from repro.errors import ReproError
from repro.experiments.cellcache import CellCache
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.progress import TraceTailer
from repro.obs.spans import use_span_sink, use_traceparent
from repro.service.jobstore import JobStore

#: How long an idle worker sleeps between claim attempts.
DEFAULT_POLL_SECONDS = 0.1
#: A running job whose heartbeat is older than this is an orphan the
#: janitor may recover while the service is live.  Deliberately generous:
#: a healthy worker beats on every settled cell, so minutes of silence
#: means the thread (or a sibling process) is gone, not slow.
DEFAULT_HEARTBEAT_TIMEOUT = 600.0
#: How often the janitor thread wakes up.
DEFAULT_JANITOR_INTERVAL = 30.0
#: Throttle for the cancel-flag poll inside should_stop (seconds).
CANCEL_POLL_SECONDS = 0.25
#: Keep every Nth telemetry sample when forwarding to the SSE feed.
SSE_SAMPLE_STRIDE = 10

log = get_logger("repro.service.worker")

JOBS_SETTLED = REGISTRY.counter(
    "repro_jobs_total",
    "Jobs settled by this process's worker pool, by outcome",
    ("outcome",))
JOBS_DEDUPED = REGISTRY.counter(
    "repro_jobs_deduped_total",
    "Succeeded jobs served entirely from the cell cache "
    "(zero executed cells)")
JOB_SECONDS = REGISTRY.histogram(
    "repro_job_seconds", "Wall-clock seconds per job execution attempt")
WORKER_CELLS = REGISTRY.counter(
    "repro_worker_cells_total",
    "Cells settled under service jobs, by engine status",
    ("status",))


class _JobRun:
    """Per-job execution context: hooks, deadline, telemetry tailer."""

    def __init__(self, store: JobStore, job: JobStatus,
                 stop_event: threading.Event,
                 trace_dir: Optional[str]) -> None:
        self.store = store
        self.job = job
        self.stop_event = stop_event
        self.trace_dir = trace_dir
        self.deadline = (time.monotonic() + job.request.timeout_seconds
                         if job.request.timeout_seconds else None)
        self._last_cancel_poll = 0.0
        self._cancelled = False
        self._tailer = TraceTailer(trace_dir, sample=SSE_SAMPLE_STRIDE) \
            if trace_dir else None

    def should_stop(self) -> Optional[str]:
        """The engine's cancellation hook, polled between cells."""
        if self.stop_event.is_set():
            return "shutdown"
        if self.deadline is not None and time.monotonic() > self.deadline:
            return "timeout"
        now = time.monotonic()
        if now - self._last_cancel_poll >= CANCEL_POLL_SECONDS:
            self._last_cancel_poll = now
            self._cancelled = self.store.cancel_requested(self.job.id)
        return "cancelled" if self._cancelled else None

    def on_cell(self, label: str, status: str, done: int, total: int) -> None:
        """The engine's progress hook: one event per settled cell."""
        WORKER_CELLS.labels(status=status).inc()
        self.store.set_progress(self.job.id, done, total)
        self.store.add_event(self.job.id, {
            "t": "cell", "label": label, "status": status,
            "done": done, "total": total,
        })
        self.pump_telemetry()

    def on_span(self, finished) -> None:
        """Span sink: per-cell timing spans join the job's SSE feed."""
        self.store.add_event(self.job.id, {"t": "span", **finished.to_dict()})

    def pump_telemetry(self) -> None:
        """Forward new telemetry JSONL records to the SSE feed."""
        if self._tailer is None:
            return
        for stem, record in self._tailer.iter_new():
            kind = record.get("t")
            if kind == "sample":
                self.store.add_event(self.job.id, {
                    "t": "telemetry", "trace": stem,
                    "cycle": record.get("cycle"),
                    "values": record.get("values"),
                })
            elif kind == "meta":
                self.store.add_event(self.job.id, {
                    "t": "telemetry-meta", "trace": stem,
                    "probes": record.get("probes"),
                })


class WorkerPool:
    """N worker threads draining one job store."""

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        cache: Optional[CellCache] = None,
        trace_root: Optional[str] = None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        events_ttl: Optional[float] = None,
        janitor_interval: float = DEFAULT_JANITOR_INTERVAL,
        tsdb: Optional[object] = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.trace_root = trace_root
        self.poll_seconds = poll_seconds
        self.num_workers = max(1, workers)
        self.heartbeat_timeout = heartbeat_timeout
        self.events_ttl = events_ttl
        self.janitor_interval = janitor_interval
        self.tsdb = tsdb  # a repro.obs.tsdb.TimeSeriesStore, or None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._janitor: Optional[threading.Thread] = None
        self.jobs_run = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.num_workers):
            name = f"repro-worker-{os.getpid()}-{i}"
            thread = threading.Thread(
                target=self._loop, name=name, args=(name,), daemon=True)
            thread.start()
            self._threads.append(thread)
        self._janitor = threading.Thread(
            target=self._janitor_loop,
            name=f"repro-janitor-{os.getpid()}", daemon=True)
        self._janitor.start()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful drain: finish in-flight cells, requeue their jobs."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._janitor is not None:
            self._janitor.join(timeout=timeout)
            self._janitor = None

    @property
    def alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    # ------------------------------------------------------------------
    def _loop(self, worker_name: str) -> None:
        while not self._stop.is_set():
            try:
                job = self.store.claim(worker_name)
            except Exception:
                # A transient DB hiccup (e.g. lock timeout) must not
                # kill the worker; back off and retry.
                self._stop.wait(self.poll_seconds * 10)
                continue
            if job is None:
                self._stop.wait(self.poll_seconds)
                continue
            self.jobs_run += 1
            self._run_job(worker_name, job)

    def _janitor_loop(self) -> None:
        """Periodic housekeeping; every pass is exception-guarded so a
        transient DB error can never kill the janitor."""
        while not self._stop.wait(self.janitor_interval):
            self.janitor_pass()

    def janitor_pass(self) -> None:
        """One housekeeping sweep (public so tests can call it directly)."""
        try:
            recovered = self.store.recover_orphans(
                stale_seconds=self.heartbeat_timeout)
            if recovered:
                log.warning("janitor requeued %d stale job(s): %s",
                            len(recovered), ", ".join(recovered))
        except Exception as exc:  # noqa: BLE001 — housekeeping is best-effort
            log.warning("janitor orphan pass failed: %s", exc)
        if self.events_ttl is not None:
            try:
                pruned = self.store.prune_events(self.events_ttl)
                if pruned:
                    log.info("janitor pruned %d event row(s) past the "
                             "%.0fs TTL", pruned, self.events_ttl)
            except Exception as exc:  # noqa: BLE001
                log.warning("janitor event prune failed: %s", exc)
        if self.tsdb is not None:
            try:
                from repro.obs.tsdb import metrics_row

                self.tsdb.append("metrics", metrics_row(REGISTRY.snapshot()))
            except Exception as exc:  # noqa: BLE001
                log.warning("janitor metrics scrape failed: %s", exc)

    def _trace_dir_for(self, job: JobStatus) -> Optional[str]:
        if not (job.request.trace and self.trace_root):
            return None
        return os.path.join(self.trace_root, job.id)

    def _run_job(self, worker_name: str, job: JobStatus) -> None:
        # The job's submission-time traceparent becomes the worker
        # thread's trace context: manifests, cell spans, and every log
        # record below carry the same trace id the client holds.
        started = time.perf_counter()
        run = _JobRun(self.store, job, self._stop,
                      self._trace_dir_for(job))
        with use_traceparent(job.traceparent), use_span_sink(run.on_span):
            outcome = self._execute(worker_name, job, run)
        JOBS_SETTLED.labels(outcome=outcome).inc()
        JOB_SECONDS.observe(time.perf_counter() - started)

    def _execute(self, worker_name: str, job: JobStatus,
                 run: _JobRun) -> str:
        """One execution attempt; returns the settled outcome label."""
        log.info("job %s claimed by %s (%s)", job.id, worker_name,
                 job.request.experiment,
                 extra={"job_id": job.id, "worker": worker_name})
        try:
            result = run_experiment(
                job.request,
                cache=self.cache,
                trace_dir=run.trace_dir,
                should_stop=run.should_stop,
                on_cell=run.on_cell,
            )
        except CellExecutionCancelled as exc:
            run.pump_telemetry()
            log.info("job %s stopped: %s", job.id, exc.reason,
                     extra={"job_id": job.id})
            if exc.reason == "shutdown":
                # Drained mid-job: completed cells are cached, so the
                # next claimer resumes instead of re-simulating.
                self.store.release(job.id)
                return "released"
            if exc.reason == "cancelled":
                self.store.mark_cancelled(job.id)
                return "cancelled"
            # timeout (or a future reason): retryable failure
            self.store.fail(job.id, f"stopped: {exc.reason} ({exc})",
                            retryable=True)
            return "timeout"
        except ReproError as exc:
            run.pump_telemetry()
            log.warning("job %s failed: %s: %s", job.id,
                        type(exc).__name__, exc,
                        extra={"job_id": job.id})
            self.store.fail(job.id, f"{type(exc).__name__}: {exc}",
                            retryable=True)
            return "failed"
        except Exception as exc:  # noqa: BLE001 — worker must survive jobs
            log.error("job %s crashed: %s: %s", job.id,
                      type(exc).__name__, exc,
                      extra={"job_id": job.id})
            self.store.fail(job.id, f"unexpected {type(exc).__name__}: {exc}",
                            retryable=True)
            return "failed"
        run.pump_telemetry()
        stats = result.stats
        if (stats is not None and stats.executed == 0
                and stats.cache_hits > 0):
            # Every cell came from the content-addressed cache: this
            # submission was a pure dedupe hit (CI asserts on this).
            JOBS_DEDUPED.inc()
        payload = result_to_dict(result)
        if (job.request.profile and stats is not None
                and stats.stack_profiles):
            # Only profiled jobs get the key at all, so an unprofiled
            # service result still compares bit-identical to a direct run.
            from repro.obs.profiler import DEFAULT_HZ, Profile

            merged = Profile()
            for text in stats.stack_profiles.values():
                merged.merge(Profile.parse(text))
            payload["profile"] = {
                "hz": DEFAULT_HZ,
                "samples": merged.total_samples,
                "collapsed": merged.collapsed(),
            }
        self.store.complete(job.id, payload)
        log.info("job %s succeeded (%d executed, %d cached)", job.id,
                 stats.executed if stats else 0,
                 stats.cache_hits if stats else 0,
                 extra={"job_id": job.id})
        return "succeeded"
