"""In-process ASGI test client (no sockets, no third-party deps).

Drives any ASGI 3.0 application — in practice
:class:`repro.service.app.ServiceApp` — by calling it directly with a
synthesized HTTP scope, the way httpx's ASGI transport or Starlette's
TestClient would, but implemented on the stdlib so the endpoint tests
run in environments without the ``[service]`` extra.

Two modes:

- :meth:`TestClient.get` / :meth:`TestClient.post` — buffered
  request/response for plain JSON endpoints;
- :meth:`TestClient.stream` — a background-thread consumer for SSE
  endpoints, handing parsed events to the caller as they arrive.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
from typing import Optional
from urllib.parse import urlsplit


class Response:
    """A fully buffered HTTP response."""

    def __init__(self, status: int, headers: list[tuple[bytes, bytes]],
                 body: bytes) -> None:
        self.status = status
        self.headers = {k.decode("latin-1").lower(): v.decode("latin-1")
                        for k, v in headers}
        self.body = body

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self):
        return json.loads(self.body)

    def __repr__(self) -> str:
        return f"Response(status={self.status}, bytes={len(self.body)})"


def parse_sse(text: str) -> list[dict]:
    """Parse an SSE byte stream into event dicts.

    Each event becomes ``{"id": ..., "event": ..., "data": <parsed
    JSON or raw string>}``; comment-only frames (heartbeats) are
    dropped.
    """
    events: list[dict] = []
    for frame in text.split("\n\n"):
        event: dict = {}
        for line in frame.splitlines():
            if not line or line.startswith(":"):
                continue
            field, _, value = line.partition(":")
            value = value.lstrip(" ")
            if field == "data":
                try:
                    event["data"] = json.loads(value)
                except json.JSONDecodeError:
                    event["data"] = value
            elif field in ("id", "event"):
                event[field] = value
        if event:
            events.append(event)
    return events


class TestClient:
    """Synchronous facade over one ASGI application."""

    __test__ = False  # "Test" prefix is descriptive, not a pytest class

    def __init__(self, app) -> None:
        self.app = app

    # ------------------------------------------------------------------
    def request(self, method: str, url: str,
                json_body: Optional[dict] = None,
                headers: Optional[dict] = None) -> Response:
        return asyncio.run(self._request(method, url, json_body, headers))

    def get(self, url: str, headers: Optional[dict] = None) -> Response:
        return self.request("GET", url, headers=headers)

    def post(self, url: str, json_body: Optional[dict] = None,
             headers: Optional[dict] = None) -> Response:
        return self.request("POST", url, json_body=json_body, headers=headers)

    async def _request(self, method, url, json_body, headers) -> Response:
        split = urlsplit(url)
        body = (json.dumps(json_body).encode("utf-8")
                if json_body is not None else b"")
        raw_headers = [(k.lower().encode("latin-1"), v.encode("latin-1"))
                       for k, v in (headers or {}).items()]
        if json_body is not None:
            raw_headers.append((b"content-type", b"application/json"))
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": split.path,
            "raw_path": split.path.encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "headers": raw_headers,
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
            "scheme": "http",
        }
        sent = {"body": False}

        async def receive():
            if sent["body"]:
                return {"type": "http.disconnect"}
            sent["body"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        status: list[int] = []
        resp_headers: list[tuple[bytes, bytes]] = []
        chunks: list[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                status.append(message["status"])
                resp_headers.extend(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        if not status:
            raise AssertionError("app sent no response start")
        return Response(status[0], resp_headers, b"".join(chunks))

    # ------------------------------------------------------------------
    def stream(self, url: str, timeout: float = 30.0) -> "EventStream":
        """Consume an SSE endpoint live from a background thread."""
        return EventStream(self.app, url, timeout=timeout)


class EventStream:
    """Background consumer of one SSE response.

    Events appear on :meth:`next_event` as they are sent by the app;
    the stream ends when the app closes the response (``more_body``
    False) or ``timeout`` elapses.  Use as a context manager to
    guarantee the thread is joined.
    """

    def __init__(self, app, url: str, timeout: float = 30.0) -> None:
        self.app = app
        self.url = url
        self.timeout = timeout
        self._queue: "queue.Queue[Optional[dict]]" = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        try:
            asyncio.run(self._consume())
        finally:
            self._queue.put(None)  # end-of-stream marker

    async def _consume(self) -> None:
        split = urlsplit(self.url)
        scope = {
            "type": "http", "asgi": {"version": "3.0"},
            "http_version": "1.1", "method": "GET",
            "path": split.path,
            "query_string": split.query.encode("latin-1"),
            "headers": [], "scheme": "http",
        }
        buffer = [""]

        async def receive():
            await asyncio.sleep(3600)  # the app never reads a GET body

        async def send(message):
            if message["type"] != "http.response.body":
                return
            buffer[0] += message.get("body", b"").decode("utf-8")
            # Emit every complete frame; keep the partial tail.
            while "\n\n" in buffer[0]:
                frame, buffer[0] = buffer[0].split("\n\n", 1)
                for event in parse_sse(frame + "\n\n"):
                    self._queue.put(event)
            if not message.get("more_body"):
                raise _StreamDone

        try:
            await asyncio.wait_for(self.app(scope, receive, send),
                                   timeout=self.timeout)
        except (_StreamDone, asyncio.TimeoutError):
            pass

    def next_event(self, timeout: float = 10.0) -> Optional[dict]:
        """The next event, or None at end-of-stream (or timeout)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def collect(self, timeout: float = 30.0) -> list[dict]:
        """Drain the stream to completion, returning every event."""
        events: list[dict] = []
        while True:
            event = self.next_event(timeout=timeout)
            if event is None:
                return events
            events.append(event)

    def close(self) -> None:
        self._thread.join(timeout=self.timeout)

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _StreamDone(Exception):
    """Raised inside the send callable to unwind a finished stream."""
