"""Persistent SQLite-backed job queue for the simulation service.

One database file holds every job the service has ever seen, so a
restarted service resumes exactly where it stopped: queued jobs stay
queued, finished jobs keep their results, and jobs orphaned mid-run by
a crash are re-enqueued on startup (:meth:`JobStore.recover_orphans`).

Concurrency model: the store opens a short-lived connection per
operation (WAL journal, busy timeout), so any number of worker threads
— or whole worker processes sharing the database file — can claim jobs
without stepping on each other.  Claiming uses ``BEGIN IMMEDIATE`` so
exactly one worker wins each queued job.

Progress events are persisted per job in an ``events`` table; the SSE
endpoint replays them by sequence number, which makes progress streams
resumable (``Last-Event-ID`` semantics) and visible even to clients
that connect after the job finished.
"""

from __future__ import annotations

import json
import sqlite3
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.api import ExperimentRequest, JobStatus
from repro.errors import ReproError
from repro.obs.metrics import REGISTRY

#: Default retry backoff: ``base * 2**(attempt-1)`` seconds.
DEFAULT_BACKOFF_BASE = 0.5

# Queue observability (process-global; the /metrics scrape adds live
# queue-depth/state gauges on top of these event counters).
JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted onto the queue")
CLAIM_LATENCY = REGISTRY.histogram(
    "repro_claim_latency_seconds",
    "Seconds between a job becoming runnable and a worker claiming it")
JOB_RETRIES = REGISTRY.counter(
    "repro_job_retries_total",
    "Failed attempts re-enqueued with backoff")
ORPHANS_RECOVERED = REGISTRY.counter(
    "repro_jobs_orphaned_total",
    "Jobs found 'running' under a dead worker, by recovery outcome",
    ("outcome",))
EVENTS_PRUNED = REGISTRY.counter(
    "repro_jobstore_events_pruned_total",
    "Per-job progress-event rows pruned from terminal jobs past the TTL")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    fingerprint      TEXT NOT NULL,
    request          TEXT NOT NULL,
    state            TEXT NOT NULL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 2,
    timeout_seconds  REAL,
    not_before       REAL NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    error            TEXT,
    result           TEXT,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    done_cells       INTEGER NOT NULL DEFAULT 0,
    total_cells      INTEGER NOT NULL DEFAULT 0,
    executed_cells   INTEGER NOT NULL DEFAULT 0,
    cached_cells     INTEGER NOT NULL DEFAULT 0,
    events_simulated INTEGER NOT NULL DEFAULT 0,
    sim_wall_seconds REAL NOT NULL DEFAULT 0,
    traceparent      TEXT,
    heartbeat        REAL
);
CREATE INDEX IF NOT EXISTS jobs_claimable
    ON jobs (state, not_before, submitted_at);
CREATE TABLE IF NOT EXISTS events (
    job_id  TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    ts      REAL NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


class JobNotFound(ReproError):
    """No job with that id in the store."""


class JobStore:
    """The service's persistent queue + result + progress-event store."""

    def __init__(self, path: Union[str, Path],
                 backoff_base: float = DEFAULT_BACKOFF_BASE) -> None:
        self.path = Path(path)
        self.backoff_base = backoff_base
        #: Result of the most recent :meth:`recover_orphans` pass (the
        #: readiness endpoint reports it); None until one has run.
        self.last_recovery: Optional[dict] = None
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._db() as conn:
            conn.executescript(_SCHEMA)
            # Migration for stores created before request tracing: the
            # jobs row gained a traceparent column.
            cols = {row["name"] for row in
                    conn.execute("PRAGMA table_info(jobs)")}
            if "traceparent" not in cols:
                conn.execute("ALTER TABLE jobs ADD COLUMN traceparent TEXT")
            # Migration: the jobs row gained a worker-liveness heartbeat
            # (updated on claim and on every per-cell progress report).
            if "heartbeat" not in cols:
                conn.execute("ALTER TABLE jobs ADD COLUMN heartbeat REAL")

    @contextmanager
    def _db(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection per operation: commit + close.

        Short-lived connections are what make the store safe to share
        between worker threads and whole processes without a lock.
        """
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            with conn:
                yield conn
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Submission and lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: ExperimentRequest,
               traceparent: Optional[str] = None) -> JobStatus:
        """Enqueue one request; returns the queued job's status.

        ``traceparent`` (a W3C trace-context header value) is persisted
        on the job row, so the submitting request's trace id follows
        the job through workers, traces, and progress streams.
        """
        request.validate()
        job_id = uuid.uuid4().hex
        now = time.time()
        with self._db() as conn:
            conn.execute(
                "INSERT INTO jobs (id, fingerprint, request, state,"
                " max_attempts, timeout_seconds, submitted_at, traceparent)"
                " VALUES (?, ?, ?, 'queued', ?, ?, ?, ?)",
                (job_id, request.fingerprint(),
                 json.dumps(request.to_dict()), request.max_attempts,
                 request.timeout_seconds, now, traceparent),
            )
        JOBS_SUBMITTED.inc()
        self.add_event(job_id, {"t": "state", "state": "queued"})
        return self.get(job_id)

    def claim(self, worker: str) -> Optional[JobStatus]:
        """Atomically take the oldest runnable queued job, or None.

        ``BEGIN IMMEDIATE`` serializes claimers, so a job goes to
        exactly one worker even across processes.
        """
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT id, submitted_at, not_before FROM jobs"
                " WHERE state = 'queued'"
                " AND not_before <= ? ORDER BY submitted_at LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', worker = ?,"
                " attempts = attempts + 1, started_at = ?, heartbeat = ?,"
                " done_cells = 0, total_cells = 0 WHERE id = ?",
                (worker, now, now, row["id"]),
            )
            conn.execute("COMMIT")
        # Claim latency: runnable (submission, or a retry's backoff
        # expiry) -> claimed.  The queue-health signal for scaling out.
        runnable_at = max(float(row["submitted_at"]),
                          float(row["not_before"]))
        CLAIM_LATENCY.observe(max(0.0, now - runnable_at))
        self.add_event(row["id"], {"t": "state", "state": "running",
                                   "worker": worker})
        return self.get(row["id"])

    def complete(self, job_id: str, result: dict) -> None:
        """Record success and the JSON-ready result table."""
        stats = result.get("stats") or {}
        with self._db() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'succeeded', result = ?,"
                " error = NULL, finished_at = ?, executed_cells = ?,"
                " cached_cells = ?, events_simulated = ?,"
                " sim_wall_seconds = ? WHERE id = ?",
                (json.dumps(result), time.time(),
                 int(stats.get("executed", 0)),
                 int(stats.get("cache_hits", 0)),
                 int(stats.get("events", 0)),
                 float(stats.get("elapsed", 0.0)),
                 job_id),
            )
        self.add_event(job_id, {
            "t": "state", "state": "succeeded",
            "executed": int(stats.get("executed", 0)),
            "cached": int(stats.get("cache_hits", 0)),
        })

    def fail(self, job_id: str, error: str, *, retryable: bool = True) -> str:
        """Record a failed attempt; re-enqueue with backoff if allowed.

        Returns the job's new state (``"queued"`` when a retry was
        scheduled, else ``"failed"``).
        """
        job = self.get(job_id)
        retry = retryable and job.attempts < job.request.max_attempts
        now = time.time()
        with self._db() as conn:
            if retry:
                backoff = self.backoff_base * (2 ** max(0, job.attempts - 1))
                conn.execute(
                    "UPDATE jobs SET state = 'queued', error = ?,"
                    " not_before = ?, worker = NULL WHERE id = ?",
                    (error, now + backoff, job_id),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET state = 'failed', error = ?,"
                    " finished_at = ? WHERE id = ?",
                    (error, now, job_id),
                )
        state = "queued" if retry else "failed"
        if retry:
            JOB_RETRIES.inc()
        event = {"t": "state", "state": state, "error": error,
                 "attempt": job.attempts}
        if retry:
            event["retry_in"] = round(
                self.backoff_base * (2 ** max(0, job.attempts - 1)), 3)
        self.add_event(job_id, event)
        return state

    def release(self, job_id: str) -> None:
        """Put a running job back on the queue without an attempt penalty.

        Used by graceful shutdown: the worker drains its in-flight cells
        (they land in the cell cache), then releases the job so the next
        worker resumes from the cache instead of re-simulating.
        """
        with self._db() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'queued', worker = NULL,"
                " attempts = MAX(0, attempts - 1), not_before = 0"
                " WHERE id = ? AND state = 'running'",
                (job_id,),
            )
        self.add_event(job_id, {"t": "state", "state": "queued",
                                "released": True})

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a job: queued jobs die now, running ones get flagged.

        A running job's worker observes ``cancel_requested`` through its
        ``should_stop`` hook and stops between cells.
        """
        job = self.get(job_id)
        with self._db() as conn:
            if job.state == "queued":
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                    " WHERE id = ? AND state = 'queued'",
                    (time.time(), job_id),
                )
            elif job.state == "running":
                conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                    (job_id,),
                )
        if job.state == "queued":
            self.add_event(job_id, {"t": "state", "state": "cancelled"})
        elif job.state == "running":
            self.add_event(job_id, {"t": "cancel-requested"})
        return self.get(job_id)

    def mark_cancelled(self, job_id: str) -> None:
        with self._db() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                " WHERE id = ?",
                (time.time(), job_id),
            )
        self.add_event(job_id, {"t": "state", "state": "cancelled"})

    def cancel_requested(self, job_id: str) -> bool:
        with self._db() as conn:
            row = conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
        return bool(row and row["cancel_requested"])

    def recover_orphans(self,
                        stale_seconds: Optional[float] = None) -> list[str]:
        """Re-enqueue jobs left 'running' by a dead service process.

        With ``stale_seconds=None`` (service startup, *before* workers
        start) every running job is an orphan by definition.  With a
        value, only jobs whose worker heartbeat went silent for longer
        than that are recovered — which makes the pass safe to run
        *while the service is live*: the worker pool's janitor calls it
        periodically, so a worker thread that died mid-job (or a sibling
        service process that crashed) gets its job back on the queue
        without a restart.  A job whose claim already consumed its last
        allowed attempt fails instead of looping forever.  Returns the
        re-enqueued job ids.
        """
        recovered: list[str] = []
        failed: list[str] = []
        with self._db() as conn:
            if stale_seconds is None:
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running'",
                ).fetchall()
            else:
                horizon = time.time() - stale_seconds
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running' AND"
                    " COALESCE(heartbeat, started_at, submitted_at) < ?",
                    (horizon,),
                ).fetchall()
            for row in rows:
                if row["attempts"] < row["max_attempts"]:
                    conn.execute(
                        "UPDATE jobs SET state = 'queued', worker = NULL,"
                        " not_before = 0 WHERE id = ?",
                        (row["id"],),
                    )
                    recovered.append(row["id"])
                else:
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', finished_at = ?,"
                        " error = 'orphaned mid-run (worker died); attempt"
                        " budget exhausted' WHERE id = ?",
                        (time.time(), row["id"]),
                    )
                    failed.append(row["id"])
        for job_id in recovered:
            self.add_event(job_id, {"t": "state", "state": "queued",
                                    "recovered": True})
        for job_id in failed:
            self.add_event(job_id, {"t": "state", "state": "failed",
                                    "recovered": False})
        ORPHANS_RECOVERED.labels(outcome="requeued").inc(len(recovered))
        ORPHANS_RECOVERED.labels(outcome="failed").inc(len(failed))
        self.last_recovery = {"at": time.time(),
                              "requeued": len(recovered),
                              "failed": len(failed),
                              "live": stale_seconds is not None}
        return recovered

    def prune_events(self, ttl_seconds: float) -> int:
        """Drop progress-event rows of terminal jobs past the TTL.

        Keeps the long-lived store bounded: per-cell progress events are
        only useful for live SSE streams and short-horizon replays, so
        once a job has been finished for ``ttl_seconds`` its event log
        goes (the job row — state, result, counters — stays).  SSE
        clients connecting later still get the terminal ``done`` frame.
        Returns the number of rows pruned (also counted on
        ``repro_jobstore_events_pruned_total``).
        """
        horizon = time.time() - ttl_seconds
        with self._db() as conn:
            cursor = conn.execute(
                "DELETE FROM events WHERE job_id IN"
                " (SELECT id FROM jobs WHERE state IN"
                "  ('succeeded', 'failed', 'cancelled')"
                "  AND finished_at IS NOT NULL AND finished_at < ?)",
                (horizon,),
            )
            pruned = cursor.rowcount
        if pruned > 0:
            EVENTS_PRUNED.inc(pruned)
        return max(0, pruned)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def set_progress(self, job_id: str, done: int, total: int) -> None:
        """Record per-cell progress; doubles as the worker heartbeat."""
        with self._db() as conn:
            conn.execute(
                "UPDATE jobs SET done_cells = ?, total_cells = ?,"
                " heartbeat = ? WHERE id = ?",
                (done, total, time.time(), job_id),
            )

    def beat(self, job_id: str) -> None:
        """Refresh a running job's heartbeat without touching progress."""
        with self._db() as conn:
            conn.execute(
                "UPDATE jobs SET heartbeat = ? WHERE id = ?"
                " AND state = 'running'",
                (time.time(), job_id),
            )

    def add_event(self, job_id: str, payload: dict) -> int:
        """Append one progress event; returns its sequence number."""
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) AS seq FROM events"
                " WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            seq = int(row["seq"]) + 1
            conn.execute(
                "INSERT INTO events (job_id, seq, ts, payload)"
                " VALUES (?, ?, ?, ?)",
                (job_id, seq, time.time(), json.dumps(payload)),
            )
            conn.execute("COMMIT")
        return seq

    def events_since(self, job_id: str, after_seq: int = 0,
                     limit: int = 1000) -> list[tuple[int, dict]]:
        """Events with seq > ``after_seq``, oldest first."""
        with self._db() as conn:
            rows = conn.execute(
                "SELECT seq, payload FROM events WHERE job_id = ?"
                " AND seq > ? ORDER BY seq LIMIT ?",
                (job_id, after_seq, limit),
            ).fetchall()
        return [(int(r["seq"]), json.loads(r["payload"])) for r in rows]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _status_of(self, row: sqlite3.Row) -> JobStatus:
        return JobStatus(
            id=row["id"],
            state=row["state"],
            request=ExperimentRequest.from_dict(json.loads(row["request"])),
            fingerprint=row["fingerprint"],
            attempts=row["attempts"],
            error=row["error"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            worker=row["worker"],
            done_cells=row["done_cells"],
            total_cells=row["total_cells"],
            executed_cells=row["executed_cells"],
            cached_cells=row["cached_cells"],
            traceparent=row["traceparent"],
            heartbeat=row["heartbeat"],
        )

    def get(self, job_id: str) -> JobStatus:
        with self._db() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise JobNotFound(f"no job {job_id!r}")
        return self._status_of(row)

    def result(self, job_id: str) -> Optional[dict]:
        """The stored result table of a succeeded job, or None."""
        with self._db() as conn:
            row = conn.execute(
                "SELECT result FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise JobNotFound(f"no job {job_id!r}")
        return json.loads(row["result"]) if row["result"] else None

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 100) -> list[JobStatus]:
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY submitted_at DESC LIMIT ?"
        with self._db() as conn:
            rows = conn.execute(query, params + (limit,)).fetchall()
        return [self._status_of(row) for row in rows]

    def stats(self) -> dict:
        """Aggregate observability counters for ``GET /stats``."""
        with self._db() as conn:
            by_state = {
                row["state"]: row["n"]
                for row in conn.execute(
                    "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state")
            }
            agg = conn.execute(
                "SELECT COALESCE(SUM(executed_cells), 0) AS executed,"
                " COALESCE(SUM(cached_cells), 0) AS cached,"
                " COALESCE(SUM(events_simulated), 0) AS events,"
                " COALESCE(SUM(sim_wall_seconds), 0) AS wall"
                " FROM jobs WHERE state = 'succeeded'",
            ).fetchone()
            oldest_beat = conn.execute(
                "SELECT MIN(COALESCE(heartbeat, started_at, submitted_at))"
                " AS beat FROM jobs WHERE state = 'running'",
            ).fetchone()
        stalest = (round(max(0.0, time.time() - float(oldest_beat["beat"])), 3)
                   if oldest_beat and oldest_beat["beat"] is not None else None)
        executed = int(agg["executed"])
        cached = int(agg["cached"])
        settled = executed + cached
        wall = float(agg["wall"])
        return {
            "jobs": {state: int(by_state.get(state, 0))
                     for state in ("queued", "running", "succeeded",
                                   "failed", "cancelled")},
            "queue_depth": int(by_state.get("queued", 0)),
            #: Seconds since the least-recently-beating running job's
            #: heartbeat; None when nothing is running.  The liveness
            #: signal /healthz/ready and `repro top` surface.
            "stalest_heartbeat_seconds": stalest,
            "cells_executed": executed,
            "cells_cached": cached,
            "cache_hit_ratio": round(cached / settled, 4) if settled else 0.0,
            "events_simulated": int(agg["events"]),
            "events_per_sec": round(int(agg["events"]) / wall, 1)
            if wall > 0 else 0.0,
        }
