"""Simulation-as-a-service: an async job API over the cell engine.

The service turns the repo's cached, parallel cell engine into a
long-running process that accepts experiment requests over HTTP,
executes them on a worker pool, and answers repeat submissions from the
content-addressed cell cache without re-simulating anything — the
service-tier analogue of the paper's DAP steering every access to the
cheapest bandwidth source.

Pieces (each importable on its own):

- :mod:`repro.service.jobstore` — persistent SQLite job queue with
  atomic claiming, bounded retries with backoff, per-job progress
  events, and orphan recovery after a crash;
- :mod:`repro.service.worker` — the worker pool executing jobs through
  :mod:`repro.api` with per-job timeouts, cancellation, and graceful
  drain;
- :mod:`repro.service.app` — a dependency-free ASGI application
  (``POST /jobs``, ``GET /jobs/<id>``, SSE progress at
  ``GET /jobs/<id>/events``, ``GET /healthz``, ``GET /stats``) that any
  ASGI server — uvicorn via the ``[service]`` extra — can serve;
- :mod:`repro.service.server` — the ``repro-serve`` entry point, with a
  bundled stdlib HTTP/1.1 fallback server so the service runs even
  without the extra installed;
- :mod:`repro.service.testing` — an in-process ASGI test client.

The app speaks raw ASGI on purpose: the repo's core stays
zero-dependency, the endpoint tests run everywhere, and installing the
``[service]`` extra only upgrades *how* the same app is served.
"""

from repro.service.jobstore import JobStore
from repro.service.worker import WorkerPool

__all__ = ["JobStore", "WorkerPool"]
