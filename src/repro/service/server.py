"""``repro-serve`` — run the simulation service.

Wires the pieces together: open (or create) the SQLite job store,
recover jobs orphaned by a previous crash, start the worker pool over
the shared cell cache, and serve the ASGI app.

Serving prefers uvicorn when the ``[service]`` extra is installed;
otherwise a bundled minimal HTTP/1.1-over-asyncio bridge serves the
same app (correct, streaming-capable, fine for dev and CI — install
the extra for production traffic).

Shutdown is graceful on SIGINT/SIGTERM: the HTTP server stops
accepting, then the worker pool drains — in-flight *cells* run to
completion (their results land in the cell cache) and unfinished jobs
are released back to the queue, so a restart resumes with zero lost
simulation work.

Usage::

    repro-serve --port 8321 --workers 2 --data-dir .repro-service
    repro serve --port 8321            # same, via the unified CLI
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import Optional, Sequence

from repro.experiments.cellcache import CellCache, default_cache_dir
from repro.service.app import ServiceApp
from repro.service.jobstore import JobStore
from repro.service.worker import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    WorkerPool,
)

DEFAULT_DATA_DIR = ".repro-service"
DEFAULT_PORT = 8321


def build_service(
    data_dir: str = DEFAULT_DATA_DIR,
    *,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    recover: bool = True,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    events_ttl: Optional[float] = None,
    tsdb_path: Optional[str] = None,
) -> tuple[JobStore, WorkerPool, ServiceApp]:
    """Assemble store + pool + app (shared by serve() and tests)."""
    store = JobStore(os.path.join(data_dir, "jobs.sqlite3"))
    if recover:
        recovered = store.recover_orphans()
        if recovered:
            print(f"[recovered {len(recovered)} orphaned job(s)]",
                  file=sys.stderr)
    cache = CellCache(cache_dir or default_cache_dir())
    tsdb = None
    if tsdb_path is not None:
        from repro.obs.tsdb import TimeSeriesStore

        tsdb = TimeSeriesStore(tsdb_path)
    pool = WorkerPool(
        store, workers=workers, cache=cache,
        trace_root=os.path.join(data_dir, "traces"),
        heartbeat_timeout=heartbeat_timeout,
        events_ttl=events_ttl,
        tsdb=tsdb,
    )
    app = ServiceApp(store, pool=pool)
    return store, pool, app


# ----------------------------------------------------------------------
# Bundled fallback server: minimal HTTP/1.1 -> ASGI over asyncio streams
# ----------------------------------------------------------------------

async def _handle_connection(app, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2))
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            return
        headers: list[tuple[bytes, bytes]] = []
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.strip().partition(b":")
            name = name.lower()
            headers.append((name, value.strip()))
            if name == b"content-length":
                content_length = int(value.strip() or 0)
        body = await reader.readexactly(content_length) \
            if content_length else b""
        path, _, query = target.partition("?")

        scope = {
            "type": "http", "asgi": {"version": "3.0"},
            "http_version": "1.1", "method": method.upper(),
            "path": path, "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers, "scheme": "http",
            "server": writer.get_extra_info("sockname"),
            "client": writer.get_extra_info("peername"),
        }
        delivered = [False]

        async def receive():
            if delivered[0]:
                return {"type": "http.disconnect"}
            delivered[0] = True
            return {"type": "http.request", "body": body, "more_body": False}

        started = [False]

        async def send(message):
            if message["type"] == "http.response.start":
                started[0] = True
                status = message["status"]
                lines = [f"HTTP/1.1 {status} X".encode("latin-1")]
                has_length = False
                for name, value in message.get("headers", []):
                    if name.lower() == b"content-length":
                        has_length = True
                    lines.append(name + b": " + value)
                if not has_length:
                    # Stream and close: fine for one-shot HTTP/1.1.
                    lines.append(b"connection: close")
                writer.write(b"\r\n".join(lines) + b"\r\n\r\n")
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        await app(scope, receive, send)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _serve_stdlib(app, host: str, port: int,
                        shutdown: asyncio.Event) -> None:
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port)
    addrs = ", ".join(f"{s.getsockname()[0]}:{s.getsockname()[1]}"
                      for s in server.sockets)
    print(f"[repro-serve] listening on {addrs} "
          "(stdlib fallback server; install repro[service] for uvicorn)",
          file=sys.stderr)
    async with server:
        await shutdown.wait()
        server.close()
        await server.wait_closed()


def _run_stdlib(app, host: str, port: int) -> None:
    shutdown = asyncio.Event()
    loop = asyncio.new_event_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, shutdown.set)
        except NotImplementedError:  # non-POSIX event loops
            pass
    try:
        loop.run_until_complete(_serve_stdlib(app, host, port, shutdown))
    finally:
        loop.close()


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve experiments as async jobs over HTTP "
                    "(POST /jobs, SSE progress, shared cell cache).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="job worker threads (default: 2)")
    parser.add_argument("--data-dir", default=DEFAULT_DATA_DIR, metavar="DIR",
                        help="job database + per-job traces "
                             f"(default: {DEFAULT_DATA_DIR})")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared cell cache "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-recover", action="store_true",
                        help="skip re-enqueueing jobs orphaned by a crash")
    parser.add_argument("--heartbeat-timeout", type=float,
                        default=DEFAULT_HEARTBEAT_TIMEOUT, metavar="SECONDS",
                        help="running jobs silent for this long are "
                             "requeued by the live janitor "
                             f"(default: {DEFAULT_HEARTBEAT_TIMEOUT:.0f})")
    parser.add_argument("--events-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="prune per-job progress events this long "
                             "after the job finishes (default: keep all)")
    parser.add_argument("--tsdb", default=None, metavar="FILE",
                        help="append periodic metrics snapshots to this "
                             "JSONL time-series store (feeds 'repro dash')")
    parser.add_argument("--no-uvicorn", action="store_true",
                        help="force the bundled stdlib server even when "
                             "uvicorn is installed")
    args = parser.parse_args(argv)

    store, pool, app = build_service(
        args.data_dir, workers=args.workers, cache_dir=args.cache_dir,
        recover=not args.no_recover,
        heartbeat_timeout=args.heartbeat_timeout,
        events_ttl=args.events_ttl,
        tsdb_path=args.tsdb,
    )
    pool.start()
    print(f"[repro-serve] {pool.num_workers} worker(s), "
          f"queue depth {store.stats()['queue_depth']}, "
          f"db {store.path}", file=sys.stderr)
    try:
        uvicorn = None
        if not args.no_uvicorn:
            try:
                import uvicorn  # type: ignore[no-redef]
            except ImportError:
                uvicorn = None
        if uvicorn is not None:
            uvicorn.run(app, host=args.host, port=args.port,
                        log_level="info")
        else:
            _run_stdlib(app, args.host, args.port)
    except KeyboardInterrupt:
        pass
    finally:
        print("[repro-serve] draining in-flight cells...", file=sys.stderr)
        pool.stop()
        print("[repro-serve] stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
