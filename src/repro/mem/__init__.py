"""DRAM device substrate.

Models banked DRAM channels at burst granularity: per-bank row buffers,
FR-FCFS-lite scheduling, batched write draining with read/write turnaround
penalties, and an optional fixed I/O delay (used for the off-package DDR
main memory). Devices are built from :class:`repro.mem.configs.DramConfig`
presets matching the paper's evaluation platforms.
"""

from repro.mem.request import AccessKind, Request
from repro.mem.timing import DramTiming
from repro.mem.channel import DramChannel
from repro.mem.device import MemoryDevice
from repro.mem.configs import (
    DramConfig,
    ddr4_2400,
    ddr4_2400_no_io,
    ddr4_3200,
    lpddr4_2400,
    hbm_102,
    hbm_128,
    hbm_204,
    edram_channels,
)

__all__ = [
    "AccessKind",
    "Request",
    "DramTiming",
    "DramChannel",
    "MemoryDevice",
    "DramConfig",
    "ddr4_2400",
    "ddr4_2400_no_io",
    "ddr4_3200",
    "lpddr4_2400",
    "hbm_102",
    "hbm_128",
    "hbm_204",
    "edram_channels",
]
