"""Memory request representation.

Every transfer that reaches a DRAM channel (demand read, fill write,
writeback, metadata access, TAD fetch, ...) is a :class:`Request`. The
:class:`AccessKind` tag is what lets the metrics layer compute the paper's
CAS-fraction breakdowns (Figs. 8 and 14) without re-deriving intent from
context.

Requests are the single most-allocated object on the simulation hot
path, so the class is deliberately lean: ``__slots__``, a hand-written
``__init__``, and per-kind flags (``is_write``, ``index``) precomputed
once on the enum members instead of per-call set membership tests.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

LINE_BYTES = 64
LINE_SHIFT = 6

_request_ids = itertools.count()


class AccessKind(enum.Enum):
    """Why a request exists.

    Each member carries two precomputed attributes (assigned right after
    the class body, so they are plain attribute loads on the hot path):

    - ``is_write`` — whether the transfer moves data *into* a device;
    - ``index`` — dense 0-based position in definition order, used for
      array-based CAS accounting in
      :class:`~repro.mem.channel.ChannelStats`.
    """

    DEMAND_READ = "demand_read"          # CPU-side read (L3 miss)
    PREFETCH_READ = "prefetch_read"      # core-side stride prefetcher
    FILL_WRITE = "fill_write"            # read-miss fill into the MS$
    L4_WRITE = "l4_write"                # dirty L3 eviction written to the MS$
    WRITEBACK = "writeback"              # dirty MS$ eviction written to main memory
    EVICT_READ = "evict_read"            # reading dirty victim data out of the MS$
    META_READ = "meta_read"              # sector metadata fetch from in-DRAM tags
    META_WRITE = "meta_write"            # sector metadata update
    TAD_READ = "tad_read"                # Alloy cache tag-and-data fetch
    TAD_WRITE = "tad_write"              # Alloy cache tag-and-data write
    SPEC_READ = "spec_read"              # SFRM speculative main-memory read
    FOOTPRINT_READ = "footprint_read"    # footprint prefetch from main memory
    WT_WRITE = "wt_write"                # opportunistic write-through to main memory


_WRITE_KINDS = frozenset(
    {
        AccessKind.FILL_WRITE,
        AccessKind.L4_WRITE,
        AccessKind.WRITEBACK,
        AccessKind.META_WRITE,
        AccessKind.TAD_WRITE,
        AccessKind.WT_WRITE,
    }
)

#: Members in definition order, indexable by ``AccessKind.index``.
ACCESS_KINDS: tuple[AccessKind, ...] = tuple(AccessKind)
NUM_ACCESS_KINDS = len(ACCESS_KINDS)

for _index, _kind in enumerate(ACCESS_KINDS):
    _kind.is_write = _kind in _WRITE_KINDS
    _kind.index = _index
del _index, _kind


class Request:
    """One 64-byte-granularity DRAM access.

    Parameters
    ----------
    line:
        64-byte line address (byte address >> 6).
    kind:
        The :class:`AccessKind` of the transfer.
    core_id:
        Originating core, or -1 for maintenance traffic with no single
        owner.
    on_complete:
        Called as ``on_complete(request, finish_cycle)`` when the data
        transfer (plus any I/O delay) finishes. Writes usually pass None.
    burst_override:
        Data-bus occupancy in *device* cycles, overriding the channel's
        default 64-byte burst. The Alloy cache uses this for its 72-byte
        TAD transfers (3 cycles instead of 2 on HBM).
    """

    __slots__ = (
        "line",
        "kind",
        "core_id",
        "on_complete",
        "burst_override",
        "req_id",
        "issue_cycle",
        "start_cycle",
        "finish_cycle",
        "is_write",
    )

    def __init__(
        self,
        line: int,
        kind: AccessKind,
        core_id: int = -1,
        on_complete: Optional[Callable[["Request", int], None]] = None,
        burst_override: Optional[int] = None,
    ) -> None:
        self.line = line
        self.kind = kind
        self.core_id = core_id
        self.on_complete = on_complete
        self.burst_override = burst_override
        self.req_id = next(_request_ids)
        self.issue_cycle = -1
        self.start_cycle = -1
        self.finish_cycle = -1
        # Copied off the kind so the dispatch loop pays one attribute
        # load, not an enum property plus a set lookup.
        self.is_write = kind.is_write

    def __repr__(self) -> str:
        return (
            f"Request(line={self.line}, kind={self.kind.value!r}, "
            f"core_id={self.core_id}, req_id={self.req_id})"
        )

    @property
    def byte_addr(self) -> int:
        return self.line << LINE_SHIFT

    def queue_latency(self) -> int:
        """Cycles spent waiting before service began (after completion)."""
        if self.start_cycle < 0 or self.issue_cycle < 0:
            return 0
        return self.start_cycle - self.issue_cycle

    def total_latency(self) -> int:
        """Issue-to-finish latency in CPU cycles (after completion)."""
        if self.finish_cycle < 0 or self.issue_cycle < 0:
            return 0
        return self.finish_cycle - self.issue_cycle


def line_of(byte_addr: int) -> int:
    """64-byte line address of a byte address."""
    return byte_addr >> LINE_SHIFT
