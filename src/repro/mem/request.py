"""Memory request representation.

Every transfer that reaches a DRAM channel (demand read, fill write,
writeback, metadata access, TAD fetch, ...) is a :class:`Request`. The
:class:`AccessKind` tag is what lets the metrics layer compute the paper's
CAS-fraction breakdowns (Figs. 8 and 14) without re-deriving intent from
context.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

LINE_BYTES = 64
LINE_SHIFT = 6

_request_ids = itertools.count()


class AccessKind(enum.Enum):
    """Why a request exists. ``is_write`` is derived from the kind."""

    DEMAND_READ = "demand_read"          # CPU-side read (L3 miss)
    PREFETCH_READ = "prefetch_read"      # core-side stride prefetcher
    FILL_WRITE = "fill_write"            # read-miss fill into the MS$
    L4_WRITE = "l4_write"                # dirty L3 eviction written to the MS$
    WRITEBACK = "writeback"              # dirty MS$ eviction written to main memory
    EVICT_READ = "evict_read"            # reading dirty victim data out of the MS$
    META_READ = "meta_read"              # sector metadata fetch from in-DRAM tags
    META_WRITE = "meta_write"            # sector metadata update
    TAD_READ = "tad_read"                # Alloy cache tag-and-data fetch
    TAD_WRITE = "tad_write"              # Alloy cache tag-and-data write
    SPEC_READ = "spec_read"              # SFRM speculative main-memory read
    FOOTPRINT_READ = "footprint_read"    # footprint prefetch from main memory
    WT_WRITE = "wt_write"                # opportunistic write-through to main memory

    @property
    def is_write(self) -> bool:
        return self in _WRITE_KINDS


_WRITE_KINDS = frozenset(
    {
        AccessKind.FILL_WRITE,
        AccessKind.L4_WRITE,
        AccessKind.WRITEBACK,
        AccessKind.META_WRITE,
        AccessKind.TAD_WRITE,
        AccessKind.WT_WRITE,
    }
)


@dataclass
class Request:
    """One 64-byte-granularity DRAM access.

    Parameters
    ----------
    line:
        64-byte line address (byte address >> 6).
    kind:
        The :class:`AccessKind` of the transfer.
    core_id:
        Originating core, or -1 for maintenance traffic with no single
        owner.
    on_complete:
        Called as ``on_complete(request, finish_cycle)`` when the data
        transfer (plus any I/O delay) finishes. Writes usually pass None.
    burst_override:
        Data-bus occupancy in *device* cycles, overriding the channel's
        default 64-byte burst. The Alloy cache uses this for its 72-byte
        TAD transfers (3 cycles instead of 2 on HBM).
    """

    line: int
    kind: AccessKind
    core_id: int = -1
    on_complete: Optional[Callable[["Request", int], None]] = None
    burst_override: Optional[int] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))
    issue_cycle: int = -1
    start_cycle: int = -1
    finish_cycle: int = -1

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def byte_addr(self) -> int:
        return self.line << LINE_SHIFT

    def queue_latency(self) -> int:
        """Cycles spent waiting before service began (after completion)."""
        if self.start_cycle < 0 or self.issue_cycle < 0:
            return 0
        return self.start_cycle - self.issue_cycle

    def total_latency(self) -> int:
        """Issue-to-finish latency in CPU cycles (after completion)."""
        if self.finish_cycle < 0 or self.issue_cycle < 0:
            return 0
        return self.finish_cycle - self.issue_cycle


def line_of(byte_addr: int) -> int:
    """64-byte line address of a byte address."""
    return byte_addr >> LINE_SHIFT
