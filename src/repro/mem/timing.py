"""DRAM timing parameters.

Timings are given in device (command-clock) cycles, exactly as the paper
states them (e.g. DDR4-2400 15-15-15-39 at 1.2 GHz). Conversion to CPU
cycles happens once at channel construction through
:class:`repro.engine.clock.ClockDomain`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class DramTiming:
    """tCAS-tRCD-tRP-tRAS plus bus/turnaround parameters.

    Attributes
    ----------
    t_cas, t_rcd, t_rp, t_ras:
        The classic latency quad in device cycles.
    burst:
        Device cycles the data bus is occupied by one 64-byte transfer
        (4 for an 8-byte-wide DDR4 channel with BL8, 2 for a 16-byte HBM
        channel with BL4).
    turnaround:
        Extra device cycles charged when the channel switches between
        read and write service (write-induced interference). Zero for
        eDRAM-style separate read/write channels.
    extra_io:
        Fixed additional device cycles per access (board/floorplan I/O
        delay; the paper charges ten 1.2 GHz cycles on main memory).
    t_refi, t_rfc:
        Refresh interval and refresh cycle time in device cycles;
        ``t_refi == 0`` disables refresh (the paper's evaluation does not
        model it; enable via :meth:`with_refresh` for fidelity studies —
        DDR4's tREFI=7.8us / tRFC~350ns costs ~4-5% bandwidth).
    """

    t_cas: int
    t_rcd: int
    t_rp: int
    t_ras: int
    burst: int
    turnaround: int = 8
    extra_io: int = 0
    t_refi: int = 0
    t_rfc: int = 0

    def __post_init__(self) -> None:
        for name in ("t_cas", "t_rcd", "t_rp", "t_ras", "burst"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        if self.turnaround < 0 or self.extra_io < 0:
            raise ConfigError("turnaround and extra_io must be non-negative")
        if self.t_refi < 0 or self.t_rfc < 0:
            raise ConfigError("refresh timings must be non-negative")
        if self.t_refi and self.t_rfc >= self.t_refi:
            raise ConfigError("t_rfc must be smaller than t_refi")

    @property
    def row_hit_latency(self) -> int:
        """Command-to-data latency for a row-buffer hit (device cycles)."""
        return self.t_cas

    @property
    def row_miss_latency(self) -> int:
        """Precharge + activate + CAS latency for a row-buffer miss."""
        return self.t_rp + self.t_rcd + self.t_cas

    def with_extra_io(self, extra_io: int) -> "DramTiming":
        """Copy of these timings with a different fixed I/O delay."""
        return replace(self, extra_io=extra_io)

    def with_refresh(self, t_refi: int, t_rfc: int) -> "DramTiming":
        """Copy of these timings with refresh enabled."""
        return replace(self, t_refi=t_refi, t_rfc=t_rfc)
