"""A memory device: several DRAM channels behind a line-interleaved map.

Consecutive 64-byte lines round-robin across channels (so streams use all
channels), and consecutive lines *within* a channel share a row (so
streams get row-buffer hits).
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.clock import ClockDomain, accesses_per_cpu_cycle
from repro.engine.event_queue import Simulator
from repro.mem.channel import DramChannel
from repro.mem.configs import DramConfig
from repro.mem.request import AccessKind, Request


class MemoryDevice:
    """A set of channels sharing one configuration (one bandwidth source)."""

    def __init__(self, sim: Simulator, config: DramConfig,
                 cpu_ghz: float = 4.0) -> None:
        self.sim = sim
        self.config = config
        self.cpu_ghz = cpu_ghz
        clock = ClockDomain(device_ghz=config.device_ghz, cpu_ghz=cpu_ghz)
        self.channels = [
            DramChannel(
                sim,
                clock,
                config.timing,
                num_banks=config.banks_per_channel,
                row_bytes=config.row_bytes,
                name=f"{config.name}.ch{i}",
                interleave=config.num_channels,
            )
            for i in range(config.num_channels)
        ]
        self._nch = config.num_channels

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def channel_of(self, line: int) -> DramChannel:
        return self.channels[line % self._nch]

    def enqueue(self, req: Request) -> None:
        """Route a request to its channel by line interleaving."""
        self.channel_of(req.line).enqueue(req)

    # ------------------------------------------------------------------
    # Bandwidth characteristics (the paper's B_i terms)
    # ------------------------------------------------------------------
    @property
    def peak_gbps(self) -> float:
        return self.config.peak_gbps

    def peak_accesses_per_cycle(self) -> float:
        """Peak bandwidth in 64-byte accesses per CPU cycle."""
        return accesses_per_cpu_cycle(self.config.peak_gbps, cpu_ghz=self.cpu_ghz)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_cas(self) -> int:
        return sum(ch.stats.total_cas for ch in self.channels)

    def cas_by_kind(self) -> dict[AccessKind, int]:
        merged: dict[AccessKind, int] = {}
        for ch in self.channels:
            for kind, count in ch.stats.cas_by_kind.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def busy_cycles(self) -> int:
        return sum(ch.stats.busy_cycles for ch in self.channels)

    def utilization(self) -> float:
        if not self.sim.now:
            return 0.0
        return self.busy_cycles() / (self.sim.now * len(self.channels))

    def delivered_gbps(self) -> float:
        """Average delivered data bandwidth since cycle zero."""
        if not self.sim.now:
            return 0.0
        bytes_moved = self.total_cas() * 64
        seconds = self.sim.now / (self.cpu_ghz * 1e9)
        return bytes_moved / seconds / 1e9

    def row_hit_rate(self) -> float:
        hits = sum(ch.stats.row_hits for ch in self.channels)
        misses = sum(ch.stats.row_misses for ch in self.channels)
        total = hits + misses
        return hits / total if total else 0.0

    def read_queue_len(self) -> int:
        return sum(ch.read_queue_len for ch in self.channels)

    def write_queue_len(self) -> int:
        return sum(ch.write_queue_len for ch in self.channels)

    def pending(self) -> int:
        return self.read_queue_len() + self.write_queue_len()

    def iter_channels(self) -> Iterable[DramChannel]:
        return iter(self.channels)

    def telemetry_sample(self) -> dict:
        """Device snapshot with per-channel drill-down (telemetry)."""
        return {
            "read_q": self.read_queue_len(),
            "write_q": self.write_queue_len(),
            "busy_frac": self.utilization(),
            "row_hit_rate": self.row_hit_rate(),
            "delivered_gbps": self.delivered_gbps(),
            "channels": {
                ch.name: ch.telemetry_sample() for ch in self.channels
            },
        }
