"""Banked DRAM channel with FR-FCFS-lite scheduling and write batching.

The data bus is the serializing resource: requests are dispatched in bus
order, but their DRAM commands (precharge/activate/CAS) are allowed to
have issued earlier on idle banks, which models bank-level parallelism.
Consecutive column hits to an open row stream back-to-back at the burst
rate; row misses pay precharge+activate+CAS and respect tRAS between
activates.

Writes are collected in a write queue and drained in batches (entered at
a high watermark or when no reads are pending, exited at a low watermark)
to amortize the read/write turnaround penalty — matching the paper's
"writes are scheduled in batches to reduce channel turn-arounds".

Hot-path notes
--------------
``_dispatch``/``_complete`` run once per DRAM access and dominate
memory-bound simulations, so they avoid per-call allocation: CAS
accounting is a flat per-kind integer array (``cas_by_kind`` is a
derived view), completions ride a FIFO drained by one bound method
instead of a fresh closure per dispatch (data-bus serialization makes
finish times monotonic, so FIFO order is completion order), and bank /
timing lookups are bound to locals inside the loop bodies.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Deque, Optional

from repro.engine.clock import ClockDomain
from repro.engine.event_queue import Simulator
from repro.errors import SimulationError
from repro.mem.request import ACCESS_KINDS, NUM_ACCESS_KINDS, AccessKind, Request
from repro.mem.timing import DramTiming

_READ = 0
_WRITE = 1

_DEMAND_READ = AccessKind.DEMAND_READ


class _Bank:
    """Row-buffer and command-availability state of one DRAM bank."""

    __slots__ = ("open_row", "busy_until", "last_activate")

    def __init__(self) -> None:
        self.open_row: int = -1
        self.busy_until: int = 0
        self.last_activate: int = -(10**9)


class ChannelStats:
    """Per-channel accounting used by the metrics layer.

    CAS counts are kept in a flat list indexed by ``AccessKind.index``
    (one integer add per dispatch); :attr:`cas_by_kind` materializes the
    familiar ``{AccessKind: count}`` view on demand for the metrics
    layer, listing only kinds that occurred, in enum definition order.
    """

    __slots__ = (
        "_cas_counts",
        "row_hits",
        "row_misses",
        "busy_cycles",
        "reads_done",
        "writes_done",
        "demand_read_latency_sum",
        "demand_reads_done",
        "mode_switches",
    )

    def __init__(self) -> None:
        self._cas_counts: list[int] = [0] * NUM_ACCESS_KINDS
        self.row_hits: int = 0
        self.row_misses: int = 0
        self.busy_cycles: int = 0
        self.reads_done: int = 0
        self.writes_done: int = 0
        self.demand_read_latency_sum: int = 0
        self.demand_reads_done: int = 0
        self.mode_switches: int = 0

    def record_dispatch(self, req: Request, row_hit: bool, burst: int) -> None:
        self._cas_counts[req.kind.index] += 1
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        self.busy_cycles += burst

    def record_completion(self, req: Request) -> None:
        if req.is_write:
            self.writes_done += 1
        else:
            self.reads_done += 1
        if req.kind is _DEMAND_READ:
            self.demand_reads_done += 1
            self.demand_read_latency_sum += req.total_latency()

    @property
    def cas_by_kind(self) -> dict[AccessKind, int]:
        """Derived per-kind CAS view (kinds seen, enum order)."""
        counts = self._cas_counts
        return {kind: counts[kind.index] for kind in ACCESS_KINDS
                if counts[kind.index]}

    @property
    def total_cas(self) -> int:
        return sum(self._cas_counts)

    def cas_count(self, kind: AccessKind) -> int:
        """CAS count of one kind without building the dict view."""
        return self._cas_counts[kind.index]

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DramChannel:
    """One DRAM channel: banks, a data bus, and read/write queues."""

    __slots__ = (
        "sim",
        "name",
        "timing",
        "num_banks",
        "row_lines",
        "write_hi",
        "write_lo",
        "frfcfs_window",
        "interleave",
        "_burst",
        "_hit_lat",
        "_miss_lat",
        "_trp",
        "_tras",
        "_turnaround",
        "_io",
        "_trefi",
        "_trfc",
        "_clock",
        "_miss_extra",
        "_banks",
        "_read_q",
        "_write_q",
        "_bus_free",
        "_mode",
        "_dispatch_pending",
        "_completions",
        "stats",
    )

    def __init__(
        self,
        sim: Simulator,
        clock: ClockDomain,
        timing: DramTiming,
        num_banks: int,
        row_bytes: int,
        name: str = "chan",
        write_hi: int = 16,
        write_lo: int = 4,
        frfcfs_window: int = 4,
        interleave: int = 1,
    ) -> None:
        if num_banks <= 0 or row_bytes < 64:
            raise SimulationError(
                f"invalid channel geometry: banks={num_banks} row_bytes={row_bytes}"
            )
        self.sim = sim
        self.name = name
        self.timing = timing
        self.num_banks = num_banks
        self.row_lines = row_bytes // 64
        self.write_hi = write_hi
        self.write_lo = write_lo
        self.frfcfs_window = frfcfs_window
        # Number of channels interleaving the global line space; lines that
        # are `interleave` apart are contiguous within this channel.
        self.interleave = max(1, interleave)

        # Pre-converted latencies in CPU cycles.
        self._burst = clock.device_cycles_to_cpu(timing.burst)
        self._hit_lat = clock.device_cycles_to_cpu(timing.row_hit_latency)
        self._miss_lat = clock.device_cycles_to_cpu(timing.row_miss_latency)
        self._trp = clock.device_cycles_to_cpu(timing.t_rp)
        self._tras = clock.device_cycles_to_cpu(timing.t_ras)
        self._turnaround = clock.device_cycles_to_cpu(timing.turnaround)
        self._io = clock.device_cycles_to_cpu(timing.extra_io)
        self._trefi = clock.device_cycles_to_cpu(timing.t_refi) if timing.t_refi else 0
        self._trfc = clock.device_cycles_to_cpu(timing.t_rfc) if timing.t_rfc else 0
        self._clock = clock
        # Miss penalty beyond the hit path, hoisted out of _dispatch.
        self._miss_extra = self._miss_lat - self._hit_lat

        self._banks = [_Bank() for _ in range(num_banks)]
        self._read_q: Deque[Request] = deque()
        self._write_q: Deque[Request] = deque()
        self._bus_free: int = 0
        self._mode: int = _READ
        self._dispatch_pending: bool = False
        # In-flight completions in finish order (bus serialization makes
        # finish cycles strictly monotonic per channel, so a FIFO pairs
        # each scheduled _complete_next event with its request without a
        # per-dispatch closure).
        self._completions: Deque[tuple[Request, int]] = deque()
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def enqueue(self, req: Request) -> None:
        """Accept a request; completion is signalled via its callback."""
        req.issue_cycle = self.sim.now
        if req.is_write:
            self._write_q.append(req)
        else:
            self._read_q.append(req)
        if not self._dispatch_pending:
            self._kick()

    @property
    def read_queue_len(self) -> int:
        return len(self._read_q)

    @property
    def write_queue_len(self) -> int:
        return len(self._write_q)

    @property
    def burst_cpu_cycles(self) -> int:
        return self._burst

    def expected_read_latency(self) -> int:
        """Rough service estimate used by SBD: queue drain + one access.

        Queued writes count too — they occupy the data bus when the
        write batch drains ahead of the read.
        """
        queued = len(self._read_q) + len(self._write_q)
        return queued * self._burst + self._hit_lat + self._burst + self._io

    def utilization(self) -> float:
        """Fraction of elapsed cycles the data bus carried data."""
        return self.stats.busy_cycles / self.sim.now if self.sim.now else 0.0

    def telemetry_sample(self) -> dict:
        """Point-in-time snapshot for per-channel telemetry drill-down."""
        return {
            "read_q": len(self._read_q),
            "write_q": len(self._write_q),
            "busy_frac": self.utilization(),
            "row_hit_rate": self.stats.row_hit_rate(),
            "mode_switches": self.stats.mode_switches,
            "total_cas": self.stats.total_cas,
        }

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def _bank_and_row(self, line: int) -> tuple[int, int]:
        row = (line // self.interleave) // self.row_lines
        return row % self.num_banks, row

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        sim = self.sim
        bus_free = self._bus_free
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue,
                  (bus_free if bus_free > sim.now else sim.now, seq,
                   self._dispatch))

    def _select_queue(self) -> Optional[Deque[Request]]:
        """Pick the queue to serve, handling write-drain mode."""
        read_q, write_q = self._read_q, self._write_q
        if self._mode == _WRITE:
            if write_q and (len(write_q) > self.write_lo or not read_q):
                return write_q
            if read_q:
                self._mode = _READ
                self.stats.mode_switches += 1
                return read_q
            return write_q if write_q else None
        # Read mode.
        if read_q:
            if len(write_q) >= self.write_hi:
                self._mode = _WRITE
                self.stats.mode_switches += 1
                return write_q
            return read_q
        if write_q:
            self._mode = _WRITE
            self.stats.mode_switches += 1
            return write_q
        return None

    def _pick_request(self, queue: Deque[Request]) -> Request:
        """FR-FCFS-lite: pick the request that can deliver data soonest.

        Scans a small window: an open-row hit wins immediately; otherwise
        the request whose bank frees earliest is chosen, so a bank-blocked
        head of line does not idle the data bus.
        """
        limit = min(self.frfcfs_window, len(queue))
        if limit == 1:
            return queue.popleft()
        interleave = self.interleave
        row_lines = self.row_lines
        num_banks = self.num_banks
        banks = self._banks
        hit_lat = self._hit_lat
        miss_lat = self._miss_lat
        tras = self._tras
        best_idx = 0
        best_ready: Optional[int] = None
        for idx in range(limit):
            req = queue[idx]
            row = (req.line // interleave) // row_lines
            bank = banks[row % num_banks]
            busy = bank.busy_until
            issue = req.issue_cycle
            if busy < issue:
                busy = issue
            if bank.open_row == row:
                ready = busy + hit_lat
            else:
                activate_ok = bank.last_activate + tras
                if busy < activate_ok:
                    busy = activate_ok
                ready = busy + miss_lat
            if best_ready is None or ready < best_ready:
                best_idx, best_ready = idx, ready
        if best_idx == 0:
            return queue.popleft()
        req = queue[best_idx]
        del queue[best_idx]
        return req

    def _after_refresh(self, t: int) -> int:
        """Defer a command that lands inside an all-bank refresh window.

        Refresh is modeled as a periodic blackout: every tREFI, the
        device spends tRFC refreshing and accepts no commands.
        """
        window_start = (t // self._trefi) * self._trefi
        if t < window_start + self._trfc:
            return window_start + self._trfc
        return t

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        prev_mode = self._mode
        queue = self._select_queue()
        if queue is None:
            return
        switched = self._mode != prev_mode
        req = self._pick_request(queue)

        line = req.line
        row = (line // self.interleave) // self.row_lines
        bank = self._banks[row % self.num_banks]
        row_hit = bank.open_row == row

        cmd_t = bank.busy_until
        if cmd_t < req.issue_cycle:
            cmd_t = req.issue_cycle
        if row_hit:
            cmd_lat = self._hit_lat
        else:
            cmd_lat = self._miss_lat
            activate_ok = bank.last_activate + self._tras
            if cmd_t < activate_ok:
                cmd_t = activate_ok
        if self._trefi:
            cmd_t = self._after_refresh(cmd_t)

        bus_ready = self._bus_free + (self._turnaround if switched else 0)
        if req.burst_override is not None:
            burst = self._clock.device_cycles_to_cpu(req.burst_override)
        else:
            burst = self._burst
        data_start = cmd_t + cmd_lat
        if data_start < bus_ready:
            data_start = bus_ready
        data_end = data_start + burst

        # Update bank state so later requests pipeline correctly.
        if row_hit:
            bank.busy_until = cmd_t + burst
        else:
            bank.last_activate = cmd_t + self._trp
            bank.busy_until = cmd_t + self._miss_extra + burst
            bank.open_row = row

        self._bus_free = data_end
        req.start_cycle = data_start
        self.stats.record_dispatch(req, row_hit, burst)

        finish = data_end + self._io
        self._completions.append((req, finish))
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue, (finish, seq, self._complete_next))
        if (self._read_q or self._write_q) and not self._dispatch_pending:
            self._kick()

    def _complete_next(self) -> None:
        req, finish = self._completions.popleft()
        req.finish_cycle = finish
        self.stats.record_completion(req)
        if req.on_complete is not None:
            req.on_complete(req, finish)
        # A completed request may have freed room for draining decisions.
        if (self._read_q or self._write_q) and not self._dispatch_pending:
            self._kick()
