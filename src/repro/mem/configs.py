"""Device configurations used in the paper's evaluation.

Peak bandwidth sanity (64-byte transfers):

========================  ========  ==========  ======  ============
Config                    channels  cmd clock   burst   peak GB/s
========================  ========  ==========  ======  ============
DDR4-2400 (default MM)      2        1.2 GHz     4       38.4
DDR4-3200                   2        1.6 GHz     4       51.2
LPDDR4-2400 (quad 32-bit)   4        1.2 GHz     8       38.4
HBM 102.4 (default MS$)     4        0.8 GHz     2      102.4
HBM 128                     4        1.0 GHz     2      128.0
HBM 204.8                   8        0.8 GHz     2      204.8
eDRAM (per direction)       2        0.8 GHz     2       51.2
========================  ========  ==========  ======  ============

per-channel GB/s = 64 bytes / (burst / cmd_ghz ns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.mem.timing import DramTiming


@dataclass(frozen=True)
class DramConfig:
    """Geometry + timing for one memory device (a set of channels)."""

    name: str
    num_channels: int
    device_ghz: float
    timing: DramTiming
    banks_per_channel: int
    row_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.num_channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError(f"invalid geometry in config {self.name}")

    @property
    def channel_gbps(self) -> float:
        """Peak data bandwidth of one channel in GB/s."""
        seconds_per_64b = self.timing.burst / (self.device_ghz * 1e9)
        return 64 / seconds_per_64b / 1e9

    @property
    def peak_gbps(self) -> float:
        """Peak data bandwidth of the whole device in GB/s."""
        return self.channel_gbps * self.num_channels

    def scaled_io(self, extra_io: int) -> "DramConfig":
        """Copy with a different fixed I/O delay (device cycles)."""
        return replace(self, timing=self.timing.with_extra_io(extra_io))


# ----------------------------------------------------------------------
# Main-memory configurations (Section V and Fig. 9)
# ----------------------------------------------------------------------

def ddr4_2400(extra_io: int = 10) -> DramConfig:
    """Dual-channel DDR4-2400 15-15-15-39, 38.4 GB/s, 2 ranks x 8 banks.

    The paper charges an additional ten 1.2 GHz I/O cycles per access for
    board delays; pass ``extra_io=0`` for the "w/o I/O" variant in Fig. 9.
    """
    return DramConfig(
        name="DDR4-2400",
        num_channels=2,
        device_ghz=1.2,
        timing=DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4,
                          extra_io=extra_io),
        banks_per_channel=16,  # two ranks of eight banks
    )


def ddr4_2400_no_io() -> DramConfig:
    """Fig. 9's "default w/o I/O" main memory."""
    return ddr4_2400(extra_io=0)


def ddr4_3200(extra_io: int = 10) -> DramConfig:
    """Dual-channel DDR4-3200 20-20-20-52, 51.2 GB/s (Figs. 9 and 13)."""
    return DramConfig(
        name="DDR4-3200",
        num_channels=2,
        device_ghz=1.6,
        timing=DramTiming(t_cas=20, t_rcd=20, t_rp=20, t_ras=52, burst=4,
                          extra_io=extra_io),
        banks_per_channel=16,
    )


def lpddr4_2400(extra_io: int = 10) -> DramConfig:
    """Quad-channel 32-bit LPDDR4-2400 24-24-24-53 (Fig. 9).

    Same 38.4 GB/s aggregate as the default, ~70% higher row-hit latency,
    more cross-channel parallelism.
    """
    return DramConfig(
        name="LPDDR4-2400",
        num_channels=4,
        device_ghz=1.2,
        timing=DramTiming(t_cas=24, t_rcd=24, t_rp=24, t_ras=53, burst=8,
                          extra_io=extra_io),
        banks_per_channel=8,
    )


# ----------------------------------------------------------------------
# Memory-side cache configurations (Sections V, VI-A3)
# ----------------------------------------------------------------------

def hbm_102() -> DramConfig:
    """Default die-stacked HBM: 4x128-bit channels at 800 MHz, 102.4 GB/s,
    single rank, 16 banks, 2 KB rows, 10-10-10-26."""
    return DramConfig(
        name="HBM-102.4",
        num_channels=4,
        device_ghz=0.8,
        timing=DramTiming(t_cas=10, t_rcd=10, t_rp=10, t_ras=26, burst=2),
        banks_per_channel=16,
    )


def hbm_128() -> DramConfig:
    """128 GB/s point: 1 GHz channels, timings scaled to 12-12-12-32."""
    return DramConfig(
        name="HBM-128",
        num_channels=4,
        device_ghz=1.0,
        timing=DramTiming(t_cas=12, t_rcd=12, t_rp=12, t_ras=32, burst=2),
        banks_per_channel=16,
    )


def hbm_204() -> DramConfig:
    """204.8 GB/s point: eight channels at 800 MHz."""
    return DramConfig(
        name="HBM-204.8",
        num_channels=8,
        device_ghz=0.8,
        timing=DramTiming(t_cas=10, t_rcd=10, t_rp=10, t_ras=26, burst=2),
        banks_per_channel=16,
    )


def edram_channels(direction: str) -> DramConfig:
    """One direction (read or write) of the sectored eDRAM cache.

    The eDRAM cache has independent 51.2 GB/s read and write channel sets;
    access latency is about two-thirds of the main memory page-hit latency
    and there is no read/write turnaround within a direction.
    """
    if direction not in ("read", "write"):
        raise ConfigError(f"direction must be 'read' or 'write', got {direction!r}")
    return DramConfig(
        name=f"eDRAM-{direction}",
        num_channels=2,
        device_ghz=0.8,
        timing=DramTiming(t_cas=7, t_rcd=7, t_rp=7, t_ras=18, burst=2,
                          turnaround=0),
        banks_per_channel=8,
    )
