"""repro — reproduction of "Near-Optimal Access Partitioning for Memory
Hierarchies with Multiple Heterogeneous Bandwidth Sources" (HPCA 2017).

Quickstart::

    from repro import SystemConfig, build_system, collect_result
    from repro.workloads import rate_mix

    mix = rate_mix("mcf")
    config = SystemConfig(policy="dap")
    system = build_system(config, mix.traces(refs_per_core=20_000, scale=1/256))
    system.run()
    print(collect_result(system).mean_ipc)

Subpackages:

- :mod:`repro.core` — the DAP algorithm (bandwidth model, credit
  counters, per-architecture solvers);
- :mod:`repro.mem` — banked DRAM channel/device models;
- :mod:`repro.cache` — SRAM, sectored, Alloy and eDRAM cache arrays;
- :mod:`repro.policies` — baseline, DAP, SBD, BATMAN, BEAR steering;
- :mod:`repro.hierarchy` — cores, SRAM hierarchy, MSC controllers,
  system assembly;
- :mod:`repro.workloads` — synthetic benchmark stand-ins and mixes;
- :mod:`repro.metrics` — weighted speedup and run summaries;
- :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.hierarchy.system import System, SystemConfig, build_system
from repro.metrics.stats import RunResult, collect_result
from repro.metrics.speedup import (
    geomean,
    normalized_weighted_speedup,
    weighted_speedup,
)

__version__ = "1.0.0"

__all__ = [
    "System",
    "SystemConfig",
    "build_system",
    "RunResult",
    "collect_result",
    "weighted_speedup",
    "normalized_weighted_speedup",
    "geomean",
    "__version__",
]
