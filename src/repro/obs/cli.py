"""``repro-analyze`` — decisions-grade reports from finished runs.

Usage::

    repro-analyze report .repro-traces/fig06            # every trace under a dir
    repro-analyze report mcf_dap.trace.jsonl --format csv --out win.csv
    repro-analyze compare traces/before traces/after    # exit 1 on regression
    repro-analyze compare a.trace.jsonl b.trace.jsonl --threshold cycles=0.02
    repro-analyze bench .ci-bench.json --repo .         # vs latest BENCH_*.json

``report`` renders per-window measured-vs-optimal access partitioning
(Eq. 2/3), DAP technique accounting, and channel timelines; ``compare``
diffs two runs or trace directories and exits non-zero when a metric
regresses past its threshold; ``bench`` validates a performance
trajectory record and compares it against the most recent committed
``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ConfigError, ReproError
from repro.obs.analysis import analyze_trace, render_csv, render_markdown
from repro.obs.bench import (
    DEFAULT_BENCH_THRESHOLD,
    bench_backend,
    compare_bench,
    latest_bench,
    load_bench,
)
from repro.obs.compare import (
    MetricSpec,
    compare_dirs,
    compare_runs,
    render_comparison,
    render_dir_comparison,
)


def _expand_traces(paths: Sequence[str]) -> list[Path]:
    """Trace files named directly, plus every trace under named dirs."""
    traces: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            traces.extend(sorted(path.rglob("*.trace.jsonl")))
        elif path.is_file():
            traces.append(path)
        else:
            raise ConfigError(f"no trace file or directory at {raw}")
    if not traces:
        raise ConfigError(f"no *.trace.jsonl found under {list(paths)}")
    return traces


def _parse_bandwidths(text: Optional[str]) -> Optional[dict[str, float]]:
    """``cache=102.4,mm=38.4`` -> {"cache": 102.4, "mm": 38.4}."""
    if not text:
        return None
    out: dict[str, float] = {}
    for part in text.split(","):
        name, _, value = part.partition("=")
        if not _ or not name.strip():
            raise ConfigError(
                f"bad --bandwidths entry {part!r}; expected source=GBps")
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise ConfigError(
                f"bad --bandwidths value {value!r} for {name!r}") from None
    return out


def _parse_thresholds(entries: Sequence[str]) -> dict[str, MetricSpec]:
    """Repeated ``metric=REL`` overrides, keeping the default direction."""
    from repro.obs.compare import DEFAULT_THRESHOLDS

    out: dict[str, MetricSpec] = {}
    for entry in entries:
        name, _, value = entry.partition("=")
        if not _ or not name.strip():
            raise ConfigError(
                f"bad --threshold entry {entry!r}; expected metric=REL")
        try:
            rel = float(value)
        except ValueError:
            raise ConfigError(
                f"bad --threshold value {value!r} for {name!r}") from None
        base = DEFAULT_THRESHOLDS.get(name.strip(), MetricSpec())
        out[name.strip()] = MetricSpec(
            threshold=rel, higher_is_better=base.higher_is_better,
            abs_floor=base.abs_floor)
    return out


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_report(args: argparse.Namespace) -> int:
    traces = _expand_traces(args.paths)
    bandwidths = _parse_bandwidths(args.bandwidths)
    chunks = []
    for trace in traces:
        analysis = analyze_trace(trace, bandwidths=bandwidths)
        if args.format == "csv":
            chunks.append(render_csv(analysis))
        else:
            chunks.append(render_markdown(analysis, width=args.width))
    text = "\n".join(chunks)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"[report on {len(traces)} trace(s) written to {out}]")
    else:
        print(text)
    return 0


def _maybe_validation_doc(path: Path):
    """The parsed document when *path* is a validation JSON, else None."""
    import json

    from repro.validate.evaluate import is_validation_doc

    if not (path.is_file() and path.suffix == ".json"):
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return doc if is_validation_doc(doc) else None


def cmd_compare(args: argparse.Namespace) -> int:
    thresholds = _parse_thresholds(args.threshold or [])
    baseline, candidate = Path(args.baseline), Path(args.candidate)
    base_doc = _maybe_validation_doc(baseline)
    cand_doc = _maybe_validation_doc(candidate)
    if base_doc is not None and cand_doc is not None:
        # Two paper-shape validation documents: a verdict flip into a
        # failing state gates exactly like a metric regression.
        from repro.validate.diff import diff_validations

        print(f"[diffing validation verdicts: {candidate} vs {baseline}]")
        diff = diff_validations(base_doc, cand_doc)
        print(diff.render())
        if diff.regressed and not args.no_fail:
            return 1
        return 0
    if baseline.is_dir() and candidate.is_dir():
        result = compare_dirs(baseline, candidate, thresholds)
        print(render_dir_comparison(result))
        regressed = result.regressed
    else:
        run = compare_runs(analyze_trace(baseline), analyze_trace(candidate),
                           thresholds)
        print(render_comparison(run))
        regressed = run.regressed
    if regressed and not args.no_fail:
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    current = load_bench(args.record)
    backend = bench_backend(current)
    print(f"[bench record ok: {current['run_id']} ({backend}) @ "
          f"{current['events_per_sec']:,.0f} events/s over "
          f"{current['total_wall_seconds']:.1f}s]")
    previous_path: Optional[Path] = None
    if args.against:
        previous_path = Path(args.against)
    elif args.repo:
        # Trajectories are per backend: judge a python sample only
        # against the latest python record, numpy against numpy.
        previous_path = latest_bench(args.repo, backend=backend)
        if previous_path is None:
            print(f"[no {backend}-backend BENCH_*.json under {args.repo}; "
                  "nothing to compare]")
            return 0
    if previous_path is None:
        return 0
    previous = load_bench(previous_path)
    regressions, notes = compare_bench(current, previous,
                                       threshold=args.threshold)
    print(f"[comparing against {previous_path} "
          f"({previous.get('git_sha') or 'no sha'})]")
    for note in notes:
        print(f"  {note}")
    for line in regressions:
        print(f"  REGRESSED: {line}")
    if regressions:
        _explain_bench_regression(getattr(args, "profile", None),
                                  getattr(args, "profile_baseline", None))
    if regressions and not args.no_fail:
        return 1
    return 0


def _explain_bench_regression(profile_path: Optional[str],
                              baseline_path: Optional[str]) -> None:
    """On a bench regression, point at *where* the time went: rank the
    top frame-level self-time deltas between the run's profile and the
    committed baseline profile (both optional — silent if absent)."""
    if not profile_path or not baseline_path:
        return
    from repro.obs.profdiff import diff_profiles, render_diff
    from repro.obs.profiler import Profile

    try:
        before = Profile.parse(
            Path(baseline_path).read_text(encoding="utf-8"))
        after = Profile.parse(Path(profile_path).read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"  (profile diff unavailable: {exc})")
        return
    if not before.total_samples or not after.total_samples:
        print("  (profile diff unavailable: empty profile)")
        return
    print()
    print("  where the time went (top frame-level deltas vs baseline):")
    diff = diff_profiles(before, after)
    for line in render_diff(diff, top=10).splitlines():
        print(f"  {line}")


# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze, compare, and regression-gate finished runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="per-window partition-optimality report")
    report.add_argument("paths", nargs="+",
                        help="trace files and/or trace directories")
    report.add_argument("--format", choices=("md", "csv"), default="md")
    report.add_argument("--out", metavar="FILE", default=None,
                        help="write the report here instead of stdout")
    report.add_argument("--bandwidths", metavar="SRC=GBPS,...", default=None,
                        help="override per-source peak bandwidths "
                             "(default: reconstructed from the manifest)")
    report.add_argument("--width", type=int, default=60, metavar="COLS",
                        help="sparkline width (default 60)")
    report.set_defaults(fn=cmd_report)

    compare = sub.add_parser(
        "compare", help="diff two runs or trace dirs; exit 1 on regression")
    compare.add_argument("baseline", help="trace file or directory")
    compare.add_argument("candidate", help="trace file or directory")
    compare.add_argument("--threshold", action="append", metavar="METRIC=REL",
                         help="override a metric's relative threshold "
                              "(repeatable)")
    compare.add_argument("--no-fail", action="store_true",
                         help="report regressions but always exit 0")
    compare.set_defaults(fn=cmd_compare)

    bench = sub.add_parser(
        "bench", help="validate a BENCH record; compare vs the latest")
    bench.add_argument("record", help="bench JSON written by --bench")
    bench.add_argument("--against", metavar="FILE", default=None,
                       help="previous bench record to compare against")
    bench.add_argument("--repo", metavar="DIR", default=None,
                       help="repo root to search for the latest BENCH_*.json")
    bench.add_argument("--threshold", type=float,
                       default=DEFAULT_BENCH_THRESHOLD, metavar="REL",
                       help="relative events/sec drop treated as regression "
                            f"(default {DEFAULT_BENCH_THRESHOLD})")
    bench.add_argument("--no-fail", action="store_true",
                       help="report regressions but always exit 0")
    bench.add_argument("--profile", metavar="FILE", default=None,
                       help="collapsed profile captured with this bench "
                            "run; on regression the top frame deltas vs "
                            "--profile-baseline are printed")
    bench.add_argument("--profile-baseline", metavar="FILE", default=None,
                       help="committed baseline collapsed profile "
                            "(e.g. profiles/BENCH_4.collapsed)")
    bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pipe (head, grep -q) closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
