"""Append-only, retention-bounded JSONL store for observability rows.

The service's ``/metrics`` endpoint and the BENCH trajectory answer
"what is the state *now*" and "how fast at each milestone"; the tsdb
keeps the history in between without running a real database.  Rows are
one JSON object per line::

    {"ts": 1754650000.0, "kind": "metrics", "data": {...}}

Appends are O(1) file appends; retention is enforced by an occasional
atomic rewrite that drops rows beyond ``max_rows`` (oldest first) or
older than ``max_age_seconds``.  Readers tolerate a torn final line
(same contract as the telemetry trace reader), so a crash mid-append
never poisons the store.

Two row builders cover the standard producers:
:func:`metrics_row` flattens a metrics-registry snapshot to scalars and
:func:`bench_row` digests a ``BENCH_*.json`` record — both feed the
``repro dash`` sparklines.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterable, Optional, Union

__all__ = ["TimeSeriesStore", "metrics_row", "bench_row", "samples_row"]

DEFAULT_MAX_ROWS = 20000


class TimeSeriesStore:
    """One JSONL file of timestamped rows with bounded retention."""

    def __init__(self, path: Union[str, Path],
                 max_rows: int = DEFAULT_MAX_ROWS,
                 max_age_seconds: Optional[float] = None) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.path = Path(path)
        self.max_rows = max_rows
        self.max_age_seconds = max_age_seconds
        self._count: Optional[int] = None  # lazy; maintained across appends

    # -- writing --------------------------------------------------------

    def append(self, kind: str, data: dict,
               ts: Optional[float] = None) -> dict:
        """Append one row (and enforce retention when over budget)."""
        row = {"ts": float(ts if ts is not None else time.time()),
               "kind": str(kind), "data": data}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        if self._count is None:
            self._count = self._scan_count()
        else:
            self._count += 1
        # Rewrite lazily at 25% overshoot so steady-state appends stay O(1).
        if self._count > self.max_rows * 1.25:
            self.prune(now=row["ts"])
        return row

    def prune(self, now: Optional[float] = None) -> int:
        """Drop rows beyond the retention bounds; returns rows dropped."""
        rows = list(self.rows())
        kept = rows
        if self.max_age_seconds is not None:
            horizon = (now if now is not None else time.time())
            horizon -= self.max_age_seconds
            kept = [row for row in kept if row["ts"] >= horizon]
        if len(kept) > self.max_rows:
            kept = kept[-self.max_rows:]
        dropped = len(rows) - len(kept)
        if dropped > 0:
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for row in kept:
                        handle.write(json.dumps(row, sort_keys=True) + "\n")
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._count = len(kept)
        return dropped

    # -- reading --------------------------------------------------------

    def rows(self, kind: Optional[str] = None,
             limit: Optional[int] = None) -> list:
        """Rows oldest-first, optionally filtered by kind / last ``limit``."""
        out = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a crashed appender
                    if not isinstance(row, dict) or "ts" not in row:
                        continue
                    if kind is not None and row.get("kind") != kind:
                        continue
                    out.append(row)
        except OSError:
            return []
        if limit is not None:
            out = out[-limit:]
        return out

    def series(self, kind: str, key: str) -> list:
        """``[(ts, value), ...]`` for one numeric data key, oldest first."""
        points = []
        for row in self.rows(kind=kind):
            value = row.get("data", {}).get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                points.append((row["ts"], value))
        return points

    def _scan_count(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def __len__(self) -> int:
        if self._count is None:
            self._count = self._scan_count()
        return self._count


# ----------------------------------------------------------------------
# Row builders
# ----------------------------------------------------------------------

def metrics_row(snapshot: dict) -> dict:
    """Flatten a :meth:`MetricsRegistry.snapshot` to scalar series.

    Counters/gauges sum across label children under the family name;
    histograms contribute ``<name>_count`` and ``<name>_sum``.
    """
    flat: dict = {}
    for name, children in snapshot.items():
        for child in children:
            if "value" in child:
                flat[name] = flat.get(name, 0.0) + child["value"]
            else:
                flat[f"{name}_count"] = (
                    flat.get(f"{name}_count", 0.0) + child.get("count", 0))
                flat[f"{name}_sum"] = (
                    flat.get(f"{name}_sum", 0.0) + child.get("sum", 0.0))
    return flat


def samples_row(samples: Iterable) -> dict:
    """Flatten parsed exposition samples (``parse_exposition``) likewise."""
    flat: dict = {}
    for sample in samples:
        name = sample.name
        if name.endswith("_bucket"):
            continue  # cumulative buckets are not a useful scalar series
        flat[name] = flat.get(name, 0.0) + sample.value
    return flat


def bench_row(record: dict, n: Optional[int] = None) -> dict:
    """Digest one BENCH record for the trajectory series.

    ``n`` is the milestone number from the ``BENCH_<n>.json`` filename
    (the record itself does not carry it).
    """
    return {
        "n": n,
        "run_id": record.get("run_id"),
        "events_per_sec": record.get("events_per_sec"),
        "total_events": record.get("total_events"),
        "total_wall_seconds": record.get("total_wall_seconds"),
        "git_sha": record.get("git_sha"),
        "scale": record.get("scale"),
    }
