"""Dependency-free service metrics: counters, gauges, histograms.

The simulation's *in-run* telemetry (probes, JSONL traces) observes what
happens inside one simulated system; this module observes the **service
around it** — request rates, queue depth, claim latency, cache-hit and
dedupe counters, per-cell wall-time distributions.  It is a minimal
Prometheus-client workalike built on the stdlib:

- :class:`MetricsRegistry` holds metric *families* (``counter``,
  ``gauge``, ``histogram``), each optionally labelled; families and
  their children are process-global singletons, cheap enough to touch
  from any layer (nothing here ever runs inside the simulator's
  per-event hot path — instrumentation is at cell/request granularity);
- :meth:`MetricsRegistry.render` emits the Prometheus **text exposition
  format v0.0.4** (``GET /metrics`` serves it verbatim), atomically:
  one lock guards every update and the snapshot, so a scrape never sees
  a histogram whose bucket counts disagree with its ``_count``;
- :func:`parse_exposition` / :func:`lint_exposition` re-parse and
  validate exposition text (CI lints the live scrape with them, and
  ``repro top`` uses the parser as its client).

Everything is observation-only: no simulation state is read or written,
and the default registry can be :meth:`reset <MetricsRegistry.reset>`
between tests.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "lint_exposition",
    "parse_exposition",
]

#: Default histogram buckets (seconds): spans sub-ms request handling
#: through multi-minute simulation cells.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                   2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(labelnames: Sequence[str], labelvalues: Sequence[str],
                   extra: Sequence[tuple[str, str]] = ()) -> str:
    pairs = [(n, v) for n, v in zip(labelnames, labelvalues)]
    pairs += list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{n}="{_escape_label(v)}"' for n, v in pairs)
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# Metric children (one per label combination)
# ----------------------------------------------------------------------

class Counter:
    """Monotonically increasing value.  ``inc`` only."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go anywhere: ``set``/``inc``/``dec``."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock,
                 buckets: Sequence[float]) -> None:
        self._lock = lock
        self.buckets = tuple(buckets)
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # Per-bucket counts; cumulated lazily at render time.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative(self) -> list[int]:
        """Cumulative per-bucket counts (``le`` semantics, no +Inf)."""
        with self._lock:
            total, out = 0, []
            for c in self._counts:
                total += c
                out.append(total)
            return out


# ----------------------------------------------------------------------
# Metric families
# ----------------------------------------------------------------------

_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    A family with no ``labelnames`` proxies ``inc``/``set``/``observe``
    straight to its single child, so unlabelled metrics read naturally:
    ``REGISTRY.counter("x_total", "...").inc()``.
    """

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Sequence[str], lock: threading.RLock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._lock = lock
        self._children: dict[tuple, object] = {}

    def labels(self, *values, **kv):
        """The child for one label-value combination (created on first use)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(str(kv[n]) for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc}") from None
            if set(kv) - set(self.labelnames):
                raise ValueError(
                    f"{self.name}: unknown label(s) "
                    f"{sorted(set(kv) - set(self.labelnames))}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {values}")
        with self._lock:
            child = self._children.get(values)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _CHILD_TYPES[self.kind](self._lock)
                self._children[values] = child
        return child

    # Unlabelled conveniences -------------------------------------------
    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled "
                             f"{self.labelnames}; use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    # Rendering ---------------------------------------------------------
    def render_into(self, lines: list[str]) -> None:
        """Append this family's exposition block (caller holds the lock)."""
        if not self._children:
            return
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for values in sorted(self._children):
            child = self._children[values]
            if self.kind == "histogram":
                cumulative = child.cumulative()
                for bound, count in zip(child.buckets, cumulative):
                    suffix = _labels_suffix(
                        self.labelnames, values,
                        extra=[("le", _format_value(bound))])
                    lines.append(
                        f"{self.name}_bucket{suffix} {count}")
                suffix = _labels_suffix(self.labelnames, values,
                                        extra=[("le", "+Inf")])
                lines.append(f"{self.name}_bucket{suffix} {child.count}")
                suffix = _labels_suffix(self.labelnames, values)
                lines.append(
                    f"{self.name}_sum{suffix} {_format_value(child.sum)}")
                lines.append(f"{self.name}_count{suffix} {child.count}")
            else:
                suffix = _labels_suffix(self.labelnames, values)
                lines.append(
                    f"{self.name}{suffix} {_format_value(child.value)}")

    def snapshot_into(self, out: dict) -> None:
        with self._lock:
            for values, child in self._children.items():
                key_labels = dict(zip(self.labelnames, values))
                if self.kind == "histogram":
                    out.setdefault(self.name, []).append({
                        "labels": key_labels, "sum": child.sum,
                        "count": child.count,
                        "buckets": dict(zip(
                            (_format_value(b) for b in child.buckets),
                            child.cumulative())),
                    })
                else:
                    out.setdefault(self.name, []).append(
                        {"labels": key_labels, "value": child.value})


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

class MetricsRegistry:
    """Process-wide collection of metric families.

    One re-entrant lock guards registration, every child update, and
    :meth:`render`, which makes the exposition an **atomic snapshot**:
    no torn output, and each histogram's bucket counts always sum
    consistently with its ``_count`` within one scrape.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}
        self._scrape_hooks: list[Callable[[], None]] = []

    # Registration ------------------------------------------------------
    def _family(self, name: str, help_text: str, kind: str,
                labelnames: Sequence[str],
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r} on {name}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (existing.kind != kind
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name} re-registered as {kind}"
                        f"{tuple(labelnames)}; was {existing.kind}"
                        f"{existing.labelnames}")
                return existing
            family = MetricFamily(name, help_text, kind, labelnames,
                                  self._lock, buckets=buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name}: buckets must be "
                             "non-empty and ascending")
        return self._family(name, help_text, "histogram", labelnames,
                            buckets=buckets)

    def on_scrape(self, hook: Callable[[], None]) -> None:
        """Register a callback run before each render (gauge refresh)."""
        with self._lock:
            self._scrape_hooks.append(hook)

    # Output ------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition v0.0.4 for every family."""
        for hook in list(self._scrape_hooks):
            hook()  # outside the lock: hooks may query SQLite etc.
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                self._families[name].render_into(lines)
        return "\n".join(lines) + "\n" if lines else "\n"

    def snapshot(self) -> dict:
        """JSON-ready dump: {metric: [{labels, value|sum+count+buckets}]}."""
        for hook in list(self._scrape_hooks):
            hook()
        out: dict = {}
        with self._lock:
            for family in self._families.values():
                family.snapshot_into(out)
        return out

    def value(self, name: str, labels: Optional[dict] = None) -> float:
        """One child's current value (0.0 when it never existed)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            key = tuple(str((labels or {}).get(n, ""))
                        for n in family.labelnames)
            child = family._children.get(key)
            if child is None:
                return 0.0
            if family.kind == "histogram":
                return float(child.count)
            return child.value

    def reset(self) -> None:
        """Drop every family and hook (test isolation)."""
        with self._lock:
            self._families.clear()
            self._scrape_hooks.clear()


#: The process-global default registry every subsystem instruments.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# Exposition parsing and linting (pure python, used by CI and `repro top`)
# ----------------------------------------------------------------------

@dataclass
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0


_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _parse_sample_line(line: str, lineno: int) -> Sample:
    """One ``name{labels} value [timestamp]`` line.

    Labels are scanned pair-by-pair (not with one bracket-bounded
    regex) because quoted label *values* may legally contain ``}`` —
    e.g. a route template like ``route="/jobs/{id}"``.
    """
    name_match = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line)
    if not name_match:
        raise ValueError(f"line {lineno}: unparsable sample {line!r}")
    name = name_match.group(0)
    pos = name_match.end()
    labels: dict[str, str] = {}
    if pos < len(line) and line[pos] == "{":
        pos += 1
        if pos < len(line) and line[pos] == "}":
            pos += 1  # empty label set: "name{} value"
        else:
            while True:
                pair = _LABEL_PAIR_RE.match(line, pos)
                if not pair:
                    raise ValueError(
                        f"line {lineno}: bad label syntax in {line!r}")
                key = pair.group("name")
                if key in labels:
                    raise ValueError(
                        f"line {lineno}: duplicate label {key!r}")
                labels[key] = _unescape_label(pair.group("value"))
                pos = pair.end()
                if pos >= len(line):
                    raise ValueError(
                        f"line {lineno}: unterminated labels in {line!r}")
                if line[pos] == ",":
                    pos += 1
                    continue
                if line[pos] == "}":
                    pos += 1
                    break
                raise ValueError(
                    f"line {lineno}: bad label syntax in {line!r}")
    rest = line[pos:].split()
    if len(rest) not in (1, 2):
        raise ValueError(f"line {lineno}: unparsable sample {line!r}")
    if len(rest) == 2 and not re.fullmatch(r"-?\d+", rest[1]):
        raise ValueError(f"line {lineno}: bad timestamp in {line!r}")
    try:
        value = _parse_value(rest[0])
    except ValueError:
        raise ValueError(f"line {lineno}: bad value {rest[0]!r}") from None
    return Sample(name, labels, value)


def parse_exposition(text: str) -> list[Sample]:
    """Parse Prometheus text exposition v0.0.4; raises ValueError on
    malformed lines.  Comment lines (``# HELP``/``# TYPE``/other) are
    validated for shape but not returned."""
    samples: list[Sample] = []
    types: dict[str, str] = {}
    seen_sample_for: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not _NAME_RE.match(name):
                    raise ValueError(
                        f"line {lineno}: bad metric name {name!r}")
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped"):
                        raise ValueError(
                            f"line {lineno}: bad TYPE line {line!r}")
                    if name in types:
                        raise ValueError(
                            f"line {lineno}: duplicate TYPE for {name}")
                    base_seen = {s for s in seen_sample_for
                                 if s == name or s.startswith(name + "_")}
                    if base_seen:
                        raise ValueError(
                            f"line {lineno}: TYPE for {name} after its "
                            "samples")
                    types[name] = parts[3]
            continue
        sample = _parse_sample_line(line, lineno)
        samples.append(sample)
        seen_sample_for.add(sample.name)
    _check_histograms(samples, types)
    return samples


def _histogram_series_key(labels: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _check_histograms(samples: Iterable[Sample],
                      types: dict[str, str]) -> None:
    """Histogram families must be internally consistent: cumulative
    non-decreasing buckets, a +Inf bucket equal to ``_count``."""
    histograms = {name for name, kind in types.items()
                  if kind == "histogram"}
    for base in histograms:
        series: dict[tuple, dict] = {}
        for sample in samples:
            if sample.name == f"{base}_bucket":
                key = _histogram_series_key(sample.labels)
                series.setdefault(key, {"buckets": [], "count": None,
                                        "sum": None})
                series[key]["buckets"].append(
                    (_parse_value(sample.labels.get("le", "+Inf")),
                     sample.value))
            elif sample.name == f"{base}_count":
                key = _histogram_series_key(sample.labels)
                series.setdefault(key, {"buckets": [], "count": None,
                                        "sum": None})
                series[key]["count"] = sample.value
            elif sample.name == f"{base}_sum":
                key = _histogram_series_key(sample.labels)
                series.setdefault(key, {"buckets": [], "count": None,
                                        "sum": None})
                series[key]["sum"] = sample.value
        for key, data in series.items():
            buckets = sorted(data["buckets"])
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(
                    f"histogram {base}{dict(key)}: missing +Inf bucket")
            counts = [c for _, c in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ValueError(
                    f"histogram {base}{dict(key)}: bucket counts "
                    "decrease with increasing le")
            if data["count"] is None or data["sum"] is None:
                raise ValueError(
                    f"histogram {base}{dict(key)}: missing _sum/_count")
            if counts[-1] != data["count"]:
                raise ValueError(
                    f"histogram {base}{dict(key)}: +Inf bucket "
                    f"{counts[-1]} != _count {data['count']}")


def lint_exposition(text: str) -> list[str]:
    """Validate exposition text; returns problems (empty == clean)."""
    try:
        parse_exposition(text)
    except ValueError as exc:
        return [str(exc)]
    return []


def histogram_quantile(buckets: dict[str, float], count: float,
                       q: float) -> Optional[float]:
    """Linear-interpolated quantile estimate from cumulative buckets.

    ``buckets`` maps formatted upper bounds to cumulative counts (the
    shape :meth:`MetricsRegistry.snapshot` emits).  Returns None when
    the histogram is empty.  Used by ``repro top`` for p50/p95 columns.
    """
    if count <= 0:
        return None
    rank = q * count
    bounds = sorted((_parse_value(k), v) for k, v in buckets.items())
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in bounds:
        if cum >= rank:
            if bound == math.inf:
                return prev_bound
            width = bound - prev_bound
            inside = cum - prev_cum
            if inside <= 0:
                return bound
            return prev_bound + width * (rank - prev_cum) / inside
        prev_bound, prev_cum = bound, cum
    return prev_bound
