"""Offline trace analysis: from raw telemetry to partition-optimality.

The paper's central question about any finished run is *how close did
the steering policy hold each window to the optimal partition*
``f_i* = B_i / sum(B_j)`` (Eq. 3), and how much delivered bandwidth the
remaining gap cost (Eq. 2). :func:`analyze_trace` answers it from a
``*.trace.jsonl`` written by :mod:`repro.obs`:

- **per-window partition accounting** — each probe sample window gets
  measured per-source access fractions (from the per-window ``*.gbps``
  probes), the total-variation *partition gap* to
  :func:`repro.core.bandwidth_model.optimal_fractions`, and a bandwidth
  *loss* estimate ``sum(B_i) - delivered_bandwidth(B, f_measured)``;
- **technique accounting** — grant/deny rates per DAP technique
  (fwb/wb/ifrm/sfrm/wt) and credit-counter exhaustion statistics from
  the per-decision event stream;
- **channel timelines** — queue depth, row-hit rate, busy fraction and
  delivered GB/s per source, rendered as dependency-free ASCII
  sparklines by :func:`render_markdown`.

Unlike ``read_trace`` this is a *streaming* pass: decision records (the
high-volume stream) fold into O(1) counters as they are read, and the
per-window series is bounded — past ``max_windows`` windows, adjacent
windows merge pairwise (resolution halves), so arbitrarily long traces
analyze in constant memory.

Source bandwidths come from the sidecar run manifest (reconstructing
the run's actual :class:`~repro.mem.configs.DramConfig`), or can be
supplied explicitly.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.bandwidth_model import delivered_bandwidth, optimal_fractions
from repro.errors import ConfigError
from repro.mem.configs import DramConfig, edram_channels
from repro.mem.timing import DramTiming
from repro.obs.trace import iter_trace

#: Past this many windows, adjacent windows merge pairwise (constant
#: memory for arbitrarily long traces).
DEFAULT_MAX_WINDOWS = 4096

#: Per-source probe suffixes kept as report timelines.
TIMELINE_SUFFIXES = ("read_q", "write_q", "busy_frac", "row_hit_rate", "gbps")

#: Controller probes kept as report timelines.
CONTROLLER_PROBES = ("msc.outstanding_reads", "msc.read_latency_ewma")

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


# ----------------------------------------------------------------------
# Bandwidth reconstruction
# ----------------------------------------------------------------------

def _dram_from_dict(data: dict) -> DramConfig:
    """Rebuild a DramConfig from its ``dataclasses.asdict`` rendering."""
    payload = dict(data)
    payload["timing"] = DramTiming(**payload["timing"])
    return DramConfig(**payload)


def bandwidths_from_manifest(manifest: dict) -> dict[str, float]:
    """Per-source peak GB/s (the paper's ``B_i``) for a manifested run.

    Sources use the trace's probe prefixes: ``cache`` (the memory-side
    cache read path), ``mm`` (main memory) and, on eDRAM platforms,
    ``cache_wr`` (the independent write channels).
    """
    config = manifest.get("config")
    if not isinstance(config, dict):
        raise ConfigError("manifest carries no config; pass bandwidths "
                          "explicitly")
    mm = _dram_from_dict(config["mm_dram"])
    if config.get("msc_kind") == "edram":
        # The eDRAM controller ignores msc_dram and builds fixed
        # read/write channel sets (see hierarchy.system._build_msc).
        return {
            "cache": edram_channels("read").peak_gbps,
            "cache_wr": edram_channels("write").peak_gbps,
            "mm": mm.peak_gbps,
        }
    cache = _dram_from_dict(config["msc_dram"])
    return {"cache": cache.peak_gbps, "mm": mm.peak_gbps}


# ----------------------------------------------------------------------
# Per-window derived metrics
# ----------------------------------------------------------------------

@dataclass
class WindowMetrics:
    """Derived metrics for one analysis window (>= one probe sample)."""

    cycle: int                   # cycle of the window's last sample
    weight: int                  # raw probe samples merged into this row
    gbps: dict[str, float]       # mean delivered GB/s per source
    grants: dict[str, int]       # technique grants during the window
    probes: dict[str, float]     # mean timeline probe values
    fractions: Optional[dict[str, float]] = None  # measured access shares
    partition_gap: Optional[float] = None         # TV distance to optimal
    loss_gbps: Optional[float] = None             # Eq. 2 bandwidth left

    @property
    def delivered_gbps(self) -> float:
        return sum(self.gbps.values())


def _derive(window: WindowMetrics, sources: Sequence[str],
            bandwidths: Optional[dict[str, float]],
            optimal: Optional[dict[str, float]]) -> None:
    """Fill a window's fraction/gap/loss fields from its gbps means."""
    total = sum(window.gbps.values())
    if total <= 0:
        window.fractions = None
        window.partition_gap = None
        window.loss_gbps = None
        return
    window.fractions = {s: window.gbps[s] / total for s in sources}
    if not bandwidths or not optimal:
        return
    window.partition_gap = 0.5 * sum(
        abs(window.fractions[s] - optimal[s]) for s in sources)
    bw = [bandwidths[s] for s in sources]
    frac = [window.fractions[s] for s in sources]
    # Renormalize away float dust so Eq. 2's sum-to-1 check holds.
    norm = sum(frac)
    frac = [f / norm for f in frac]
    window.loss_gbps = max(0.0, sum(bw) - delivered_bandwidth(bw, frac))


def _merge_pair(a: WindowMetrics, b: WindowMetrics) -> WindowMetrics:
    """Weighted merge of two adjacent windows (downsampling step)."""
    total = a.weight + b.weight

    def mean(x: float, y: float) -> float:
        return (x * a.weight + y * b.weight) / total

    keys = set(a.gbps) | set(b.gbps)
    gbps = {k: mean(a.gbps.get(k, 0.0), b.gbps.get(k, 0.0)) for k in keys}
    grants = {k: a.grants.get(k, 0) + b.grants.get(k, 0)
              for k in set(a.grants) | set(b.grants)}
    probes = {k: mean(a.probes.get(k, 0.0), b.probes.get(k, 0.0))
              for k in set(a.probes) | set(b.probes)}
    return WindowMetrics(cycle=b.cycle, weight=total, gbps=gbps,
                         grants=grants, probes=probes)


# ----------------------------------------------------------------------
# The analysis container
# ----------------------------------------------------------------------

@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` derives from one trace."""

    path: str
    label: str = ""
    probe_interval: int = 0
    sources: tuple = ()
    bandwidths: Optional[dict[str, float]] = None
    #: Eq. 3 optimum, exactly as ``optimal_fractions`` returns it.
    optimal: Optional[dict[str, float]] = None
    windows: list[WindowMetrics] = field(default_factory=list)
    #: Per-technique decision accounting from the event stream.
    decisions: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Per-technique credit statistics at decision time.
    credits: dict[str, dict[str, float]] = field(default_factory=dict)
    manifest: Optional[dict] = None
    samples: int = 0
    decision_records: int = 0
    #: Truncated final lines dropped while streaming the trace (a
    #: crash signature; >0 means the tail of the run is missing).
    torn_lines: int = 0

    # ------------------------------------------------------------------
    def timeline(self, key: str) -> list[Optional[float]]:
        """One probe's per-window mean series (None where absent)."""
        return [w.probes.get(key) for w in self.windows]

    def fraction_timeline(self, source: str) -> list[Optional[float]]:
        return [w.fractions.get(source) if w.fractions else None
                for w in self.windows]

    def measured_fractions(self) -> Optional[dict[str, float]]:
        """Traffic-weighted overall access share per source."""
        totals = {s: 0.0 for s in self.sources}
        for window in self.windows:
            for s in self.sources:
                totals[s] += window.gbps.get(s, 0.0) * window.weight
        grand = sum(totals.values())
        if grand <= 0:
            return None
        return {s: totals[s] / grand for s in self.sources}

    def mean_partition_gap(self) -> Optional[float]:
        gaps = [(w.partition_gap, w.weight) for w in self.windows
                if w.partition_gap is not None]
        if not gaps:
            return None
        return sum(g * w for g, w in gaps) / sum(w for _, w in gaps)

    def mean_loss_gbps(self) -> Optional[float]:
        losses = [(w.loss_gbps, w.weight) for w in self.windows
                  if w.loss_gbps is not None]
        if not losses:
            return None
        return sum(l * w for l, w in losses) / sum(w for _, w in losses)

    def mean_delivered_gbps(self) -> float:
        if not self.windows:
            return 0.0
        total = sum(w.delivered_gbps * w.weight for w in self.windows)
        return total / sum(w.weight for w in self.windows)

    def grant_rates(self) -> dict[str, float]:
        """Granted / (granted + denied) per technique."""
        rates = {}
        for tech, counts in sorted(self.decisions.items()):
            seen = counts["granted"] + counts["denied"]
            rates[tech] = counts["granted"] / seen if seen else 0.0
        return rates

    def metrics(self) -> dict[str, float]:
        """The flat scalar digest the run comparator diffs."""
        out: dict[str, float] = {}
        if self.manifest:
            for key in ("cycles", "events", "events_per_sec",
                        "wall_seconds"):
                value = self.manifest.get(key)
                if isinstance(value, (int, float)):
                    out[key] = float(value)
        out["torn_lines"] = float(self.torn_lines)
        out["mean_delivered_gbps"] = self.mean_delivered_gbps()
        gap = self.mean_partition_gap()
        if gap is not None:
            out["mean_partition_gap"] = gap
        loss = self.mean_loss_gbps()
        if loss is not None:
            out["mean_loss_gbps"] = loss
        latency = [v for v in self.timeline("msc.read_latency_ewma")
                   if v is not None]
        if latency:
            out["mean_read_latency"] = sum(latency) / len(latency)
        measured = self.measured_fractions()
        if measured:
            for source, value in measured.items():
                out[f"fraction.{source}"] = value
        for tech, rate in self.grant_rates().items():
            out[f"grant_rate.{tech}"] = rate
        return out


# ----------------------------------------------------------------------
# The streaming analyzer
# ----------------------------------------------------------------------

def _manifest_beside(trace_path: Path) -> Optional[dict]:
    name = trace_path.name
    if name.endswith(".trace.jsonl"):
        sidecar = trace_path.with_name(
            name[: -len(".trace.jsonl")] + ".manifest.json")
        try:
            with open(sidecar, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
    return None


def analyze_trace(
    path: Union[str, Path],
    bandwidths: Optional[dict[str, float]] = None,
    manifest: Optional[dict] = None,
    max_windows: int = DEFAULT_MAX_WINDOWS,
) -> TraceAnalysis:
    """Stream one ``*.trace.jsonl`` into a :class:`TraceAnalysis`.

    ``bandwidths`` (peak GB/s per source prefix) overrides the manifest
    reconstruction; without either, per-window fractions are still
    measured but the optimal-partition comparison is skipped.
    """
    path = Path(path)
    if manifest is None:
        manifest = _manifest_beside(path)
    analysis = TraceAnalysis(path=str(path), manifest=manifest)

    sources: list[str] = []
    optimal: Optional[dict[str, float]] = None
    granted_keys: list[str] = []
    prev_granted: dict[str, float] = {}
    pending: Optional[WindowMetrics] = None
    stride = 1          # raw samples folded into one window
    fill = 0            # raw samples folded into `pending` so far
    credit_sum: dict[str, float] = {}
    credit_zero: dict[str, int] = {}
    credit_n: dict[str, int] = {}

    def flush_pending() -> None:
        nonlocal pending, fill
        if pending is not None:
            analysis.windows.append(pending)
        pending, fill = None, 0

    def downsample() -> None:
        nonlocal stride
        merged = []
        windows = analysis.windows
        for i in range(0, len(windows) - 1, 2):
            merged.append(_merge_pair(windows[i], windows[i + 1]))
        if len(windows) % 2:
            merged.append(windows[-1])
        analysis.windows = merged
        stride *= 2

    read_stats: dict = {}
    for record in iter_trace(path, stats=read_stats):
        kind = record.get("t")
        if kind == "meta":
            analysis.label = record.get("label", "")
            analysis.probe_interval = int(record.get("probe_interval", 0))
            probes = record.get("probes", [])
            sources = [p[: -len(".gbps")] for p in probes
                       if p.endswith(".gbps") and not p.startswith("dap.")]
            sources.sort()
            analysis.sources = tuple(sources)
            granted_keys = [p for p in probes if p.startswith("dap.granted.")]
            if bandwidths is None and manifest is not None:
                try:
                    bandwidths = bandwidths_from_manifest(manifest)
                except (ConfigError, KeyError, TypeError):
                    bandwidths = None
            if bandwidths is not None and sources:
                missing = [s for s in sources if s not in bandwidths]
                if missing:
                    raise ConfigError(
                        f"no bandwidth given for source(s) {missing}; "
                        f"have {sorted(bandwidths)}")
                analysis.bandwidths = {s: bandwidths[s] for s in sources}
                fractions = optimal_fractions(
                    [bandwidths[s] for s in sources])
                optimal = dict(zip(sources, fractions))
                analysis.optimal = optimal
        elif kind == "sample":
            analysis.samples += 1
            values = record.get("values", {})
            cycle = int(record.get("cycle", 0))
            gbps = {s: float(values.get(f"{s}.gbps", 0.0)) for s in sources}
            grants = {}
            for key in granted_keys:
                tech = key[len("dap.granted."):]
                now_count = float(values.get(key, 0.0))
                grants[tech] = int(now_count - prev_granted.get(key, 0.0))
                prev_granted[key] = now_count
            probes = {}
            for s in sources:
                for suffix in TIMELINE_SUFFIXES:
                    key = f"{s}.{suffix}"
                    if key in values:
                        probes[key] = float(values[key])
            for key in CONTROLLER_PROBES:
                if key in values:
                    probes[key] = float(values[key])
            sample = WindowMetrics(cycle=cycle, weight=1, gbps=gbps,
                                   grants=grants, probes=probes)
            pending = sample if pending is None else _merge_pair(
                pending, sample)
            fill += 1
            if fill >= stride:
                flush_pending()
                if len(analysis.windows) > max_windows:
                    downsample()
        elif kind == "decision":
            analysis.decision_records += 1
            tech = record.get("technique", "?")
            counts = analysis.decisions.setdefault(
                tech, {"granted": 0, "denied": 0})
            counts["granted" if record.get("granted") else "denied"] += 1
            for name, value in (record.get("credits") or {}).items():
                credit_sum[name] = credit_sum.get(name, 0.0) + float(value)
                credit_n[name] = credit_n.get(name, 0) + 1
                if not value:
                    credit_zero[name] = credit_zero.get(name, 0) + 1

    flush_pending()
    analysis.torn_lines = int(read_stats.get("torn_lines", 0))
    for window in analysis.windows:
        _derive(window, analysis.sources, analysis.bandwidths, optimal)
    analysis.credits = {
        name: {
            "mean": credit_sum[name] / credit_n[name],
            "exhausted_frac": credit_zero.get(name, 0) / credit_n[name],
        }
        for name in sorted(credit_n)
    }
    return analysis


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def sparkline(values: Sequence[Optional[float]], width: int = 60) -> str:
    """Dependency-free ASCII sparkline (block glyphs, mean-bucketed)."""
    if not values:
        return ""
    if len(values) > width:
        bucketed: list[Optional[float]] = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = [v for v in values[lo:hi] if v is not None]
            bucketed.append(sum(chunk) / len(chunk) if chunk else None)
        values = bucketed
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    low, high = min(present), max(present)
    span = high - low
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_BLOCKS[0])
        else:
            idx = int((v - low) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[idx])
    return "".join(chars)


def _fmt(value: Optional[float], digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def render_markdown(analysis: TraceAnalysis, width: int = 60) -> str:
    """A human-readable partition-optimality report for one run."""
    lines = [f"# Trace report: {analysis.label or analysis.path}", ""]
    manifest = analysis.manifest or {}
    if manifest:
        lines.append(
            f"- policy `{manifest.get('policy')}` | scale "
            f"`{manifest.get('scale')}` | cycles {manifest.get('cycles')} | "
            f"{manifest.get('events')} events @ "
            f"{manifest.get('events_per_sec')} events/s | git "
            f"`{(manifest.get('git_sha') or 'n/a')[:12]}`")
    lines.append(
        f"- {analysis.samples} probe samples every "
        f"{analysis.probe_interval} cycles -> {len(analysis.windows)} "
        f"analysis windows; {analysis.decision_records} decision events")
    if analysis.torn_lines:
        lines.append(
            f"- **WARNING:** {analysis.torn_lines} torn final line(s) "
            "dropped — the run was interrupted mid-write and the tail "
            "of this trace is missing")
    lines.append("")

    lines.append("## Access partitioning (Eq. 2/3)")
    lines.append("")
    measured = analysis.measured_fractions()
    header = "| source | B_i (GB/s) | f* optimal | f measured | delta |"
    lines.append(header)
    lines.append("|---|---|---|---|---|")
    for source in analysis.sources:
        b = (analysis.bandwidths or {}).get(source)
        opt = (analysis.optimal or {}).get(source)
        meas = (measured or {}).get(source)
        delta = (meas - opt) if (meas is not None and opt is not None) else None
        lines.append(
            f"| {source} | {_fmt(b, 1)} | {_fmt(opt, 4)} | "
            f"{_fmt(meas, 4)} | {_fmt(delta, 4)} |")
    lines.append("")
    gap = analysis.mean_partition_gap()
    loss = analysis.mean_loss_gbps()
    lines.append(
        f"- mean partition gap {_fmt(gap, 4)} (0 = optimal split), "
        f"mean bandwidth left on the table {_fmt(loss, 2)} GB/s, "
        f"mean delivered {analysis.mean_delivered_gbps():.2f} GB/s")
    lines.append("")

    if analysis.decisions:
        lines.append("## DAP technique accounting")
        lines.append("")
        lines.append("| technique | granted | denied | grant rate | "
                     "mean credits | exhausted |")
        lines.append("|---|---|---|---|---|---|")
        rates = analysis.grant_rates()
        for tech in sorted(analysis.decisions):
            counts = analysis.decisions[tech]
            credit = analysis.credits.get(tech, {})
            lines.append(
                f"| {tech} | {counts['granted']} | {counts['denied']} | "
                f"{rates[tech]:.3f} | {_fmt(credit.get('mean'), 1)} | "
                f"{_fmt(credit.get('exhausted_frac'), 3)} |")
        lines.append("")

    lines.append("## Timelines")
    lines.append("")
    lines.append("```")
    shown: list[tuple[str, list[Optional[float]]]] = []
    for source in analysis.sources:
        shown.append((f"frac.{source}",
                      analysis.fraction_timeline(source)))
    for source in analysis.sources:
        for suffix in ("gbps", "read_q", "row_hit_rate"):
            shown.append((f"{source}.{suffix}",
                          analysis.timeline(f"{source}.{suffix}")))
    for key in CONTROLLER_PROBES:
        shown.append((key, analysis.timeline(key)))
    label_w = max((len(k) for k, _ in shown), default=0)
    for key, series in shown:
        present = [v for v in series if v is not None]
        if not present:
            continue
        lines.append(
            f"{key.ljust(label_w)}  {sparkline(series, width)}  "
            f"min {min(present):.3g} max {max(present):.3g}")
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def render_csv(analysis: TraceAnalysis) -> str:
    """Per-window derived metrics as CSV (one row per analysis window)."""
    out = io.StringIO()
    writer = csv.writer(out)
    sources = list(analysis.sources)
    header = ["cycle", "samples"]
    header += [f"gbps.{s}" for s in sources]
    header += [f"fraction.{s}" for s in sources]
    header += [f"optimal.{s}" for s in sources]
    header += ["partition_gap", "loss_gbps", "delivered_gbps"]
    techs = sorted({t for w in analysis.windows for t in w.grants})
    header += [f"grants.{t}" for t in techs]
    writer.writerow(header)
    optimal = analysis.optimal or {}
    for window in analysis.windows:
        row: list = [window.cycle, window.weight]
        row += [f"{window.gbps.get(s, 0.0):.6g}" for s in sources]
        fractions = window.fractions or {}
        row += ["" if s not in fractions else f"{fractions[s]:.6g}"
                for s in sources]
        row += ["" if s not in optimal else f"{optimal[s]:.6g}"
                for s in sources]
        row += ["" if window.partition_gap is None
                else f"{window.partition_gap:.6g}",
                "" if window.loss_gbps is None else f"{window.loss_gbps:.6g}",
                f"{window.delivered_gbps:.6g}"]
        row += [window.grants.get(t, 0) for t in techs]
        writer.writerow(row)
    return out.getvalue()
