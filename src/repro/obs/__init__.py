"""In-run observability and offline analysis of finished runs.

The :mod:`repro.obs` package has two halves:

**In-run** (PR 2): a :class:`Telemetry` hub samples registered probes on
a simulated-cycle interval (through the event queue, so sampling is
deterministic and never perturbs component state), keeps the series in
bounded ring buffers, and optionally streams every sample — plus
per-decision DAP events — to a JSONL trace file. Every simulation run
additionally emits a :func:`run manifest <repro.obs.manifest.build_manifest>`
describing exactly what was simulated and how fast.

**Offline** (this PR): :func:`analyze_trace` streams a finished trace
into per-window measured-vs-optimal access partitioning (the paper's
Eq. 2/3), technique grant/deny accounting, and channel timelines;
:mod:`repro.obs.compare` diffs two runs with regression thresholds; and
:mod:`repro.obs.bench` tracks simulator throughput across commits
(``BENCH_*.json``). All of it is exposed by the ``repro-analyze`` CLI
(:mod:`repro.obs.cli`) and is strictly read-only: analysis never touches
simulation state or results.

Telemetry is strictly opt-in: when no :class:`TelemetryConfig` is
supplied, no probes are registered and the only per-decision cost in the
hot path is a single ``is None`` check on the policy's observer slot.
"""

from repro.obs.analysis import (
    TraceAnalysis,
    analyze_trace,
    render_csv,
    render_markdown,
    sparkline,
)
from repro.obs.bench import (
    build_bench_record,
    compare_bench,
    latest_bench,
    load_bench,
    write_bench,
)
from repro.obs.compare import (
    MetricSpec,
    compare_dirs,
    compare_runs,
    diff_manifests,
    render_comparison,
    render_dir_comparison,
)
from repro.obs.manifest import build_manifest, git_sha
from repro.obs.probes import attach_system_probes
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig
from repro.obs.trace import (
    TraceWriter,
    iter_trace,
    read_trace,
    trace_paths,
    write_manifest,
)

__all__ = [
    "MetricSpec",
    "Series",
    "Telemetry",
    "TelemetryConfig",
    "TraceAnalysis",
    "TraceWriter",
    "analyze_trace",
    "attach_system_probes",
    "build_bench_record",
    "build_manifest",
    "compare_bench",
    "compare_dirs",
    "compare_runs",
    "diff_manifests",
    "git_sha",
    "iter_trace",
    "latest_bench",
    "load_bench",
    "read_trace",
    "render_comparison",
    "render_csv",
    "render_dir_comparison",
    "render_markdown",
    "sparkline",
    "trace_paths",
    "write_bench",
    "write_manifest",
]
