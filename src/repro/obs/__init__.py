"""In-run observability: probes, traces, and run manifests.

The :mod:`repro.obs` package turns the simulator's end-of-run aggregates
into time series. A :class:`Telemetry` hub samples registered probes on
a simulated-cycle interval (through the event queue, so sampling is
deterministic and never perturbs component state), keeps the series in
bounded ring buffers, and optionally streams every sample — plus
per-decision DAP events — to a JSONL trace file. Every simulation run
additionally emits a :func:`run manifest <repro.obs.manifest.build_manifest>`
describing exactly what was simulated and how fast.

Telemetry is strictly opt-in: when no :class:`TelemetryConfig` is
supplied, no probes are registered and the only per-decision cost in the
hot path is a single ``is None`` check on the policy's observer slot.
"""

from repro.obs.manifest import build_manifest, git_sha
from repro.obs.probes import attach_system_probes
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig
from repro.obs.trace import TraceWriter, read_trace, trace_paths, write_manifest

__all__ = [
    "Series",
    "Telemetry",
    "TelemetryConfig",
    "TraceWriter",
    "attach_system_probes",
    "build_manifest",
    "git_sha",
    "read_trace",
    "trace_paths",
    "write_manifest",
]
