"""In-run observability and offline analysis of finished runs.

The :mod:`repro.obs` package has two halves:

**In-run** (PR 2): a :class:`Telemetry` hub samples registered probes on
a simulated-cycle interval (through the event queue, so sampling is
deterministic and never perturbs component state), keeps the series in
bounded ring buffers, and optionally streams every sample — plus
per-decision DAP events — to a JSONL trace file. Every simulation run
additionally emits a :func:`run manifest <repro.obs.manifest.build_manifest>`
describing exactly what was simulated and how fast.

**Offline** (this PR): :func:`analyze_trace` streams a finished trace
into per-window measured-vs-optimal access partitioning (the paper's
Eq. 2/3), technique grant/deny accounting, and channel timelines;
:mod:`repro.obs.compare` diffs two runs with regression thresholds; and
:mod:`repro.obs.bench` tracks simulator throughput across commits
(``BENCH_*.json``). All of it is exposed by the ``repro-analyze`` CLI
(:mod:`repro.obs.cli`) and is strictly read-only: analysis never touches
simulation state or results.

Telemetry is strictly opt-in: when no :class:`TelemetryConfig` is
supplied, no probes are registered and the only per-decision cost in the
hot path is a single ``is None`` check on the policy's observer slot.

**Service-level** (PR 7): :mod:`repro.obs.metrics` is a dependency-free
Prometheus-workalike registry (counters/gauges/histograms, text
exposition, a parser/linter, atomic scrapes); :mod:`repro.obs.spans`
threads W3C ``traceparent`` correlation from an HTTP submission through
the queue, worker, engine cells, and run manifests;
:mod:`repro.obs.logs` is trace-correlated structured logging; and
:mod:`repro.obs.top` is the ``repro top`` / ``repro metrics`` operator
CLI.  All of it observes the service *around* the simulator — nothing
instruments the per-event hot path, and determinism goldens are
unaffected.

**Continuous profiling** (PR 8): :mod:`repro.obs.profiler` is a
dependency-free sampling profiler (a background thread walking
``sys._current_frames()`` of tracked cell threads into the collapsed-
stack format, with per-cell attribution); :mod:`repro.obs.flame`
renders collapsed profiles to self-contained SVG/HTML flamegraphs;
:mod:`repro.obs.profdiff` ranks symbol-level self-time drift between
two captures; :mod:`repro.obs.tsdb` is the append-only JSONL
time-series store behind the dash; and :mod:`repro.obs.dash` assembles
BENCH trajectory, flamegraph, profile deltas, metric sparklines, and
validation verdicts into one offline HTML observatory (``repro dash``).
Profiling is observation-only and off by default: it never enters cell
cache keys or request fingerprints, and a profiled run's results are
bit-identical to an unprofiled one.
"""

from repro.obs.analysis import (
    TraceAnalysis,
    analyze_trace,
    render_csv,
    render_markdown,
    sparkline,
)
from repro.obs.bench import (
    build_bench_record,
    compare_bench,
    latest_bench,
    load_bench,
    write_bench,
)
from repro.obs.compare import (
    MetricSpec,
    compare_dirs,
    compare_runs,
    diff_manifests,
    render_comparison,
    render_dir_comparison,
)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import build_manifest, git_sha
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    lint_exposition,
    parse_exposition,
)
from repro.obs.flame import render_html, render_svg
from repro.obs.probes import attach_system_probes
from repro.obs.profdiff import ProfileDiff, diff_profiles, render_diff
from repro.obs.profiler import (
    DEFAULT_HZ,
    Profile,
    SamplingProfiler,
    merge_collapsed,
    top_symbols,
)
from repro.obs.spans import (
    Span,
    current_traceparent,
    emit_span,
    make_traceparent,
    parse_traceparent,
    use_span_sink,
    use_traceparent,
)
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig
from repro.obs.tsdb import TimeSeriesStore, bench_row, metrics_row, samples_row
from repro.obs.trace import (
    TraceWriter,
    iter_trace,
    read_trace,
    trace_paths,
    write_manifest,
)

__all__ = [
    "DEFAULT_HZ",
    "MetricSpec",
    "MetricsRegistry",
    "Profile",
    "ProfileDiff",
    "REGISTRY",
    "SamplingProfiler",
    "Series",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "TimeSeriesStore",
    "TraceAnalysis",
    "TraceWriter",
    "analyze_trace",
    "attach_system_probes",
    "bench_row",
    "build_bench_record",
    "build_manifest",
    "compare_bench",
    "compare_dirs",
    "compare_runs",
    "configure_logging",
    "current_traceparent",
    "diff_manifests",
    "diff_profiles",
    "emit_span",
    "get_logger",
    "git_sha",
    "iter_trace",
    "latest_bench",
    "lint_exposition",
    "load_bench",
    "make_traceparent",
    "merge_collapsed",
    "metrics_row",
    "parse_exposition",
    "parse_traceparent",
    "read_trace",
    "render_comparison",
    "render_csv",
    "render_diff",
    "render_dir_comparison",
    "render_html",
    "render_markdown",
    "render_svg",
    "samples_row",
    "sparkline",
    "top_symbols",
    "trace_paths",
    "use_span_sink",
    "use_traceparent",
    "write_bench",
    "write_manifest",
]
