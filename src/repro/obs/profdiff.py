"""Symbol-level diff of two sampling profiles.

Compares collapsed-stack profiles (:mod:`repro.obs.profiler`) by
*self-time share*: each symbol's leaf samples as a fraction of its
profile's total, so two captures of different length compare fairly.
Every symbol gets a delta in percentage points and a status —
``grew`` / ``shrank`` (moved more than a threshold), ``new`` / ``gone``
(present in only one capture), or ``~`` (steady) — ranked hottest drift
first.  With cell attribution present, the same diff is available
per cell, which pins a whole-run regression to the cells that caused it.

This is the attribution half of the CI perf gate: a >20% events/s drop
now prints the top frame deltas against the committed baseline profile
instead of a bare failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.profiler import Profile

__all__ = ["SymbolDelta", "ProfileDiff", "diff_profiles", "render_diff"]

#: A symbol's self-share must move by at least this many percentage
#: points to count as grown/shrunk (sampling noise floor).
DEFAULT_THRESHOLD_PP = 0.5


@dataclass
class SymbolDelta:
    """One symbol's drift between profile A (before) and B (after)."""

    symbol: str
    self_a: int = 0
    self_b: int = 0
    total_a: int = 0
    total_b: int = 0
    frac_a: float = 0.0       # self-share of profile A, in [0, 1]
    frac_b: float = 0.0
    delta_pp: float = 0.0     # frac_b - frac_a, percentage points
    status: str = "~"         # grew | shrank | new | gone | ~


@dataclass
class ProfileDiff:
    """A whole-run diff plus the same view split per cell."""

    samples_a: int = 0
    samples_b: int = 0
    overall: list = field(default_factory=list)
    per_cell: dict = field(default_factory=dict)

    @property
    def max_drift_pp(self) -> float:
        return max((abs(d.delta_pp) for d in self.overall), default=0.0)

    def top(self, n: int = 10) -> list:
        return self.overall[:n]


def _deltas(a: Profile, b: Profile, cell: Optional[str],
            threshold_pp: float) -> list:
    stats_a = a.by_symbol(cell=cell)
    stats_b = b.by_symbol(cell=cell)
    samples_a = sum(entry["self"] for entry in stats_a.values())
    samples_b = sum(entry["self"] for entry in stats_b.values())
    deltas = []
    for symbol in set(stats_a) | set(stats_b):
        entry_a = stats_a.get(symbol, {"self": 0, "total": 0})
        entry_b = stats_b.get(symbol, {"self": 0, "total": 0})
        frac_a = entry_a["self"] / samples_a if samples_a else 0.0
        frac_b = entry_b["self"] / samples_b if samples_b else 0.0
        delta_pp = (frac_b - frac_a) * 100.0
        if symbol not in stats_a:
            status = "new"
        elif symbol not in stats_b:
            status = "gone"
        elif delta_pp >= threshold_pp:
            status = "grew"
        elif delta_pp <= -threshold_pp:
            status = "shrank"
        else:
            status = "~"
        deltas.append(SymbolDelta(
            symbol=symbol,
            self_a=entry_a["self"], self_b=entry_b["self"],
            total_a=entry_a["total"], total_b=entry_b["total"],
            frac_a=frac_a, frac_b=frac_b,
            delta_pp=delta_pp, status=status,
        ))
    deltas.sort(key=lambda d: (-abs(d.delta_pp), d.symbol))
    return deltas


def diff_profiles(a: Profile, b: Profile,
                  threshold_pp: float = DEFAULT_THRESHOLD_PP,
                  per_cell: bool = False) -> ProfileDiff:
    """Diff profile ``a`` (before) against ``b`` (after)."""
    diff = ProfileDiff(samples_a=a.total_samples, samples_b=b.total_samples)
    diff.overall = _deltas(a, b, None, threshold_pp)
    if per_cell:
        for cell in sorted(set(a.cells()) | set(b.cells())):
            diff.per_cell[cell] = _deltas(a, b, cell, threshold_pp)
    return diff


def _render_table(deltas: list, top: int, indent: str = "") -> list:
    lines = [f"{indent}{'Δself':>8}  {'before':>7}  {'after':>7}  "
             f"{'status':<6}  symbol"]
    shown = 0
    for delta in deltas:
        if shown >= top:
            break
        if delta.status == "~" and abs(delta.delta_pp) == 0.0 and shown > 0:
            continue  # steady symbols only pad the table
        lines.append(
            f"{indent}{delta.delta_pp:>+7.2f}pp  "
            f"{delta.frac_a * 100:>6.2f}%  {delta.frac_b * 100:>6.2f}%  "
            f"{delta.status:<6}  {delta.symbol}")
        shown += 1
    return lines


def render_diff(diff: ProfileDiff, top: int = 10,
                per_cell: bool = False) -> str:
    """Human-readable ranking of frame-level drift, hottest first."""
    lines = [f"profile diff: {diff.samples_a} -> {diff.samples_b} samples, "
             f"max self-share drift {diff.max_drift_pp:.2f}pp"]
    if diff.max_drift_pp == 0.0 and not any(
            d.status in ("new", "gone") for d in diff.overall):
        lines.append("no frame-level drift between the two profiles")
        return "\n".join(lines)
    lines.extend(_render_table(diff.overall, top))
    if per_cell and diff.per_cell:
        for cell, deltas in diff.per_cell.items():
            drifted = [d for d in deltas if d.delta_pp or
                       d.status in ("new", "gone")]
            if not drifted:
                continue
            lines.append(f"cell {cell}:")
            lines.extend(_render_table(drifted, top, indent="  "))
    return "\n".join(lines)
