"""``repro profile`` — capture, inspect, diff, and render profiles.

Four subcommands over the :mod:`repro.obs.profiler` collapsed-stack
format::

    repro profile run fig06 --scale smoke --out profile.collapsed
    repro profile top profile.collapsed
    repro profile diff profiles/BENCH_4.collapsed profile.collapsed
    repro profile flame profile.collapsed --out flame.svg

``run`` executes experiments through the normal cached engine with
per-cell sampling enabled and merges the per-cell profiles into one
whole-run collapsed file (cell attribution preserved via ``cell:<label>``
root frames).  Cells served from the cache executed nothing and thus
contribute no samples — pass ``--no-cache`` or a fresh ``--cache-dir``
to profile a full run.

``top`` prints the hottest symbols of a capture by self time, per cell
or whole-run.

``diff`` ranks symbol-level self-time drift between two captures
(grew/shrank/new/gone); it always exits 0 unless the inputs are
unreadable, so CI can assert "identical inputs diff clean".

``flame`` renders a collapsed file to a self-contained SVG or HTML
flamegraph (by output extension).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obs.flame import render_html, render_svg
from repro.obs.profdiff import DEFAULT_THRESHOLD_PP, diff_profiles, render_diff
from repro.obs.profiler import DEFAULT_HZ, Profile, top_symbols

__all__ = ["profile_main"]


def _read_profile(path: str) -> Profile:
    try:
        return Profile.parse(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read profile {path}: {exc}") from None


def _write_flame(profile: Profile, out: Path, title: str) -> None:
    if out.suffix == ".html":
        text = render_html(profile, title=title)
    else:
        text = render_svg(profile, title=title)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")


def _print_top(profile: Profile, n: int = 10) -> None:
    total = profile.total_samples
    if not total:
        print("no samples captured (were all cells served from the cache?)")
        return
    print(f"{total} samples across {len(profile.cells())} cells; "
          f"hottest symbols by self time:")
    for symbol, self_count, total_count in top_symbols(profile, n):
        print(f"  {self_count / total * 100:6.2f}% self "
              f"({total_count / total * 100:6.2f}% total)  {symbol}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_run(args) -> int:
    from repro import api

    cache = None if args.no_cache else api.default_cache(args.cache_dir)
    merged = Profile()
    failures = 0
    for name in args.experiments:
        try:
            result = api.run_experiment(
                name, scale=args.scale, jobs=max(1, args.jobs),
                cache=cache, profile_hz=args.hz)
            stack_profiles = (result.stats.stack_profiles
                              if result.stats else {})
        except (api.CellExecutionError, api.CellExecutionCancelled) as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            failures += 1
            stack_profiles = exc.stats.stack_profiles if exc.stats else {}
        for text in stack_profiles.values():
            merged.merge(Profile.parse(text))
    merged.meta["hz"] = args.hz
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(merged.collapsed(), encoding="utf-8")
    print(f"wrote {out} ({merged.total_samples} samples, "
          f"{len(merged.cells())} cells)")
    _print_top(merged)
    if args.flame:
        _write_flame(merged, Path(args.flame), title=out.name)
        print(f"wrote {args.flame}")
    return 1 if failures else 0


def _cmd_top(args) -> int:
    profile = _read_profile(args.profile)
    if args.cell is not None and args.cell not in profile.cells():
        known = ", ".join(profile.cells()) or "none"
        print(f"error: no cell {args.cell!r} in profile (cells: {known})",
              file=sys.stderr)
        return 2
    if args.cell is not None:
        total = sum(count for (cell, _), count in profile.samples.items()
                    if cell == args.cell)
        print(f"cell {args.cell}: {total} samples; "
              f"hottest symbols by self time:")
        for symbol, self_count, total_count in top_symbols(
                profile, args.top, cell=args.cell):
            print(f"  {self_count / total * 100:6.2f}% self "
                  f"({total_count / total * 100:6.2f}% total)  {symbol}")
    else:
        _print_top(profile, args.top)
    return 0


def _cmd_diff(args) -> int:
    before = _read_profile(args.before)
    after = _read_profile(args.after)
    diff = diff_profiles(before, after, threshold_pp=args.threshold,
                         per_cell=args.per_cell)
    print(render_diff(diff, top=args.top, per_cell=args.per_cell))
    return 0


def _cmd_flame(args) -> int:
    profile = _read_profile(args.profile)
    out = Path(args.out)
    _write_flame(profile, out, title=args.title or Path(args.profile).name)
    print(f"wrote {out} ({profile.total_samples} samples)")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def profile_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Capture, diff, and render sampling profiles.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run experiments with per-cell stack sampling")
    run.add_argument("experiments", nargs="+", help="experiment ids")
    run.add_argument("--scale", choices=("smoke", "small", "paper"),
                     default=None)
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default: 1)")
    run.add_argument("--cache-dir", default=None, metavar="DIR")
    run.add_argument("--no-cache", action="store_true",
                     help="run uncached (profiles every cell)")
    run.add_argument("--hz", type=int, default=DEFAULT_HZ,
                     help=f"sample rate (default: {DEFAULT_HZ})")
    run.add_argument("--out", default="profile.collapsed", metavar="FILE",
                     help="merged collapsed-stack output "
                          "(default: profile.collapsed)")
    run.add_argument("--flame", default=None, metavar="FILE",
                     help="also render a flamegraph (.svg or .html)")
    run.set_defaults(func=_cmd_run)

    top = sub.add_parser(
        "top", help="hottest symbols of a capture by self time")
    top.add_argument("profile", help="collapsed-stack input file")
    top.add_argument("--top", type=int, default=10,
                     help="rows to show (default: 10)")
    top.add_argument("--cell", default=None, metavar="LABEL",
                     help="restrict to one cell (e.g. mcf/dap)")
    top.set_defaults(func=_cmd_top)

    diff = sub.add_parser(
        "diff", help="rank symbol-level drift between two profiles")
    diff.add_argument("before", help="baseline collapsed profile")
    diff.add_argument("after", help="new collapsed profile")
    diff.add_argument("--top", type=int, default=10,
                      help="rows to show (default: 10)")
    diff.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD_PP, metavar="PP",
                      help="grew/shrank threshold in percentage points "
                           f"(default: {DEFAULT_THRESHOLD_PP})")
    diff.add_argument("--per-cell", action="store_true",
                      help="also break drift down per cell")
    diff.set_defaults(func=_cmd_diff)

    flame = sub.add_parser(
        "flame", help="render a collapsed profile to a flamegraph")
    flame.add_argument("profile", help="collapsed-stack input file")
    flame.add_argument("--out", default="flame.svg", metavar="FILE",
                       help="output path; .html wraps the SVG in a page "
                            "(default: flame.svg)")
    flame.add_argument("--title", default=None)
    flame.set_defaults(func=_cmd_flame)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(profile_main())
