"""Standard probe wiring for a built :class:`~repro.hierarchy.system.System`.

:func:`attach_system_probes` registers the series the paper's dynamics
live in:

- **DAP engine** — per-technique credit counters (the Section IV
  ``B_1/f_1 = B_2/f_2`` balancing state), current-window demand fill
  (``a_ms``/``a_mm``/supplies), and cumulative grant counts;
- **DRAM devices** (main memory, cache channels, and the eDRAM write
  channels when present) — queue occupancy, busy fraction, cumulative
  row-hit rate, and delivered GB/s over the last probe window;
- **controller** — outstanding reads and a read-latency EWMA over the
  latencies completed since the previous sample.

All probes are pure reads of existing counters: attaching them cannot
change simulation results. It also installs the hub as the policy's
decision observer, enabling the per-decision event trace.
"""

from __future__ import annotations

import dataclasses

from repro.obs.telemetry import Telemetry

#: Smoothing factor of the read-latency EWMA (per probe interval).
LATENCY_EWMA_ALPHA = 0.25


def _register_engine_probes(tel: Telemetry, engine) -> None:
    if hasattr(engine, "credit_state"):
        for name in engine.credit_state():
            tel.register(f"dap.credits.{name}",
                         lambda e=engine, n=name: e.credit_state()[n])
    stats = getattr(engine, "stats", None)
    if stats is not None and dataclasses.is_dataclass(stats):
        for field in dataclasses.fields(stats):
            tel.register(f"dap.window.{field.name}",
                         lambda s=stats, n=field.name: getattr(s, n))
    decisions = getattr(engine, "decisions", None)
    if isinstance(decisions, dict):
        for name in decisions:
            tel.register(f"dap.granted.{name}",
                         lambda d=decisions, n=name: d[n])


def _window_gbps_probe(device):
    """Delivered GB/s over the cycles since the previous sample."""
    state = {"cas": 0, "cycle": 0}

    def probe() -> float:
        now = device.sim.now
        cas = device.total_cas()
        d_cas, d_cycles = cas - state["cas"], now - state["cycle"]
        state["cas"], state["cycle"] = cas, now
        if d_cycles <= 0:
            return 0.0
        seconds = d_cycles / (device.cpu_ghz * 1e9)
        return d_cas * 64 / seconds / 1e9

    return probe


def _register_device_probes(tel: Telemetry, prefix: str, device) -> None:
    tel.register(f"{prefix}.read_q", device.read_queue_len)
    tel.register(f"{prefix}.write_q", device.write_queue_len)
    tel.register(f"{prefix}.busy_frac", device.utilization)
    tel.register(f"{prefix}.row_hit_rate", device.row_hit_rate)
    tel.register(f"{prefix}.gbps", _window_gbps_probe(device))


def _latency_ewma_probe(stats):
    """EWMA of the mean read latency completed between samples."""
    state = {"done": 0, "sum": 0, "ewma": 0.0}

    def probe() -> float:
        d_done = stats.reads_done - state["done"]
        d_sum = stats.read_latency_sum - state["sum"]
        state["done"], state["sum"] = stats.reads_done, stats.read_latency_sum
        if d_done > 0:
            window_avg = d_sum / d_done
            if state["ewma"]:
                state["ewma"] += LATENCY_EWMA_ALPHA * (window_avg - state["ewma"])
            else:
                state["ewma"] = window_avg
        return state["ewma"]

    return probe


def attach_system_probes(tel: Telemetry, system) -> Telemetry:
    """Wire the standard probe set into a built system; returns ``tel``."""
    msc = system.msc

    engine = getattr(msc.policy, "engine", None)
    if engine is not None:
        _register_engine_probes(tel, engine)
    msc.policy.observer = tel

    _register_device_probes(tel, "mm", msc.mm_dev)
    _register_device_probes(tel, "cache", msc.cache_dev)
    write_dev = getattr(msc, "cache_write_dev", None)
    if write_dev is not None:
        _register_device_probes(tel, "cache_wr", write_dev)

    tel.register("msc.outstanding_reads",
                 lambda s=msc.stats: s.outstanding_reads)
    tel.register("msc.read_latency_ewma", _latency_ewma_probe(msc.stats))
    return tel
