"""End-to-end trace correlation: W3C ``traceparent`` plumbing + spans.

One submission to the service produces work in many places — an HTTP
handler, a queue row, a worker thread, engine cells, JSONL decision
traces.  This module threads a single **trace id** through all of them:

- :func:`make_traceparent` / :func:`parse_traceparent` implement the
  W3C Trace Context header shape ``00-<32 hex trace id>-<16 hex span
  id>-<2 hex flags>`` (the only version we emit is ``00``);
- a ``contextvars`` context carries the *current* traceparent down the
  call stack (:func:`use_traceparent`, :func:`current_traceparent`), so
  the run-manifest writer and the structured-log formatter can stamp it
  without any signature changes along the way;
- :func:`child_traceparent` mints a new span id under the same trace
  id, so per-cell spans stay correlated to their request;
- :func:`emit_span` publishes one finished :class:`Span` to whatever
  sinks the current context registered (:func:`use_span_sink`) — the
  service worker forwards them to the job's SSE stream.

Ids come from ``os.urandom``, **never** from the simulator's seeded
``random.Random`` streams: tracing must not perturb any deterministic
reference stream (the determinism golden enforces this).
"""

from __future__ import annotations

import contextlib
import os
import re
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "Span",
    "child_traceparent",
    "current_traceparent",
    "emit_span",
    "make_traceparent",
    "parse_traceparent",
    "span",
    "trace_id_of",
    "use_span_sink",
    "use_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$")

_current: ContextVar[Optional[str]] = ContextVar(
    "repro_traceparent", default=None)
_sinks: ContextVar[tuple] = ContextVar("repro_span_sinks", default=())


def make_traceparent() -> str:
    """A fresh sampled traceparent (new trace id, new root span id)."""
    return (f"00-{os.urandom(16).hex()}-{os.urandom(8).hex()}-01")


def parse_traceparent(value: Optional[str]) -> Optional[dict]:
    """``{"version", "trace_id", "span_id", "flags"}``, or None.

    Rejects the all-zero trace/span ids the W3C spec forbids, so a
    client sending a placeholder gets a server-generated id instead.
    """
    if not value:
        return None
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if not match:
        return None
    parts = match.groupdict()
    if parts["trace_id"] == "0" * 32 or parts["span_id"] == "0" * 16:
        return None
    if parts["version"] == "ff":
        return None
    return parts


def trace_id_of(value: Optional[str]) -> Optional[str]:
    """Just the 32-hex trace id, or None for malformed input."""
    parsed = parse_traceparent(value)
    return parsed["trace_id"] if parsed else None


def child_traceparent(parent: str) -> str:
    """A new span id under the parent's trace id (same flags)."""
    parsed = parse_traceparent(parent)
    if parsed is None:
        return make_traceparent()
    return (f"00-{parsed['trace_id']}-{os.urandom(8).hex()}"
            f"-{parsed['flags']}")


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------

def current_traceparent() -> Optional[str]:
    """The traceparent of the active request context, if any."""
    return _current.get()


def set_current_traceparent(value: Optional[str]):
    """Low-level setter; prefer :func:`use_traceparent`.  Returns the
    reset token (used to propagate into pool worker processes, where
    there is no enclosing ``with`` scope)."""
    return _current.set(value)


@contextlib.contextmanager
def use_traceparent(value: Optional[str]) -> Iterator[Optional[str]]:
    """Scope the current traceparent to a ``with`` block."""
    token = _current.set(value)
    try:
        yield value
    finally:
        _current.reset(token)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

@dataclass
class Span:
    """One timed, named unit of work inside a trace."""

    name: str
    traceparent: Optional[str] = None
    start: float = 0.0
    wall_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "traceparent": self.traceparent,
            "trace_id": trace_id_of(self.traceparent),
            "wall_seconds": round(self.wall_seconds, 6),
            **({"attrs": self.attrs} if self.attrs else {}),
        }


@contextlib.contextmanager
def use_span_sink(sink: Callable[[Span], None]) -> Iterator[None]:
    """Register a span consumer for the current context."""
    token = _sinks.set(_sinks.get() + (sink,))
    try:
        yield
    finally:
        _sinks.reset(token)


def emit_span(name: str, wall_seconds: float, **attrs) -> Optional[Span]:
    """Publish one finished span to the context's sinks.

    No-op (returns None) outside a trace context *and* with no sinks —
    which is every direct, untraced run, so the engine can call this
    unconditionally at cell granularity.
    """
    parent = _current.get()
    sinks = _sinks.get()
    if parent is None and not sinks:
        return None
    finished = Span(
        name=name,
        traceparent=child_traceparent(parent) if parent else None,
        start=time.time() - wall_seconds,
        wall_seconds=wall_seconds,
        attrs=dict(attrs),
    )
    for sink in sinks:
        try:
            sink(finished)
        except Exception:  # noqa: BLE001 — observability must not break work
            pass
    return finished


@contextlib.contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """Time a block and emit it as a span on exit."""
    start = time.perf_counter()
    live = Span(name=name, traceparent=None, start=time.time(),
                attrs=dict(attrs))
    try:
        yield live
    finally:
        live.wall_seconds = time.perf_counter() - start
        emitted = emit_span(name, live.wall_seconds, **live.attrs)
        if emitted is not None:
            live.traceparent = emitted.traceparent
