"""Run-to-run comparison: config diffs, metric deltas, regression gates.

Two finished runs (or two whole trace directories) diff in three parts:

- **manifest diff** — every configuration key that changed between the
  runs (so a metric delta is never read without knowing whether the
  platform changed under it);
- **metric deltas** — the analyzer's scalar digest
  (:meth:`~repro.obs.analysis.TraceAnalysis.metrics`) compared entry by
  entry with per-metric relative thresholds and directions
  (``events_per_sec`` regresses down, ``mean_partition_gap`` regresses
  up); tiny absolute wobbles below a per-metric floor never count;
- **verdict** — :func:`ComparisonResult.regressed` is the CI gate: the
  ``repro-analyze compare`` command exits non-zero when any thresholded
  metric regressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError
from repro.obs.analysis import TraceAnalysis, analyze_trace


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is judged: relative threshold and direction.

    ``threshold=None`` marks an informational metric — always reported,
    never a regression. ``abs_floor`` suppresses relative blow-ups on
    near-zero baselines (a gap moving 0.001 -> 0.002 is not a 2x
    regression worth failing CI over).
    """

    threshold: Optional[float] = None
    higher_is_better: bool = True
    abs_floor: float = 0.0


#: Default regression gates. Anything not listed is informational.
DEFAULT_THRESHOLDS: dict[str, MetricSpec] = {
    # Simulated outcome: any cycle-count drift is a correctness alarm.
    "cycles": MetricSpec(threshold=0.0, higher_is_better=False),
    # Simulator throughput: wall-clock noisy, so gate loosely.
    "events_per_sec": MetricSpec(threshold=0.5, higher_is_better=True,
                                 abs_floor=1000.0),
    # Partition quality (the paper's Eq. 2/3 accounting).
    "mean_delivered_gbps": MetricSpec(threshold=0.10, higher_is_better=True,
                                      abs_floor=0.5),
    "mean_partition_gap": MetricSpec(threshold=0.10, higher_is_better=False,
                                     abs_floor=0.02),
    "mean_loss_gbps": MetricSpec(threshold=0.10, higher_is_better=False,
                                 abs_floor=0.5),
    "mean_read_latency": MetricSpec(threshold=0.10, higher_is_better=False,
                                    abs_floor=2.0),
}


@dataclass
class MetricDelta:
    """One metric compared across baseline and candidate."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    spec: MetricSpec
    regressed: bool = False

    @property
    def rel_change(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        if self.baseline == 0:
            return None if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class ComparisonResult:
    """One baseline/candidate pair, fully judged."""

    label: str
    manifest_diff: dict[str, tuple] = field(default_factory=dict)
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)


# ----------------------------------------------------------------------
# Manifest diffing
# ----------------------------------------------------------------------

def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)
    else:
        out[prefix] = value


def diff_manifests(baseline: Optional[dict],
                   candidate: Optional[dict]) -> dict[str, tuple]:
    """Configuration keys that differ: ``{key: (baseline, candidate)}``.

    Only identity-bearing fields are compared (config, policy, scale,
    schema) — volatile fields like wall time, git SHA, and event counts
    belong in the metric deltas, not the config diff.
    """
    diff: dict[str, tuple] = {}
    for part in ("policy", "policy_describe", "scale", "schema", "config"):
        flat_a: dict = {}
        flat_b: dict = {}
        _flatten(part, (baseline or {}).get(part), flat_a)
        _flatten(part, (candidate or {}).get(part), flat_b)
        for key in sorted(set(flat_a) | set(flat_b)):
            a, b = flat_a.get(key), flat_b.get(key)
            if a != b:
                diff[key] = (a, b)
    return diff


# ----------------------------------------------------------------------
# Metric comparison
# ----------------------------------------------------------------------

def compare_metrics(
    baseline: dict[str, float],
    candidate: dict[str, float],
    thresholds: Optional[dict[str, MetricSpec]] = None,
) -> list[MetricDelta]:
    """Judge every metric either run reports against the thresholds."""
    table = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        table.update(thresholds)
    deltas = []
    for name in sorted(set(baseline) | set(candidate)):
        spec = table.get(name, MetricSpec())
        delta = MetricDelta(name=name, baseline=baseline.get(name),
                            candidate=candidate.get(name), spec=spec)
        if (spec.threshold is not None and delta.baseline is not None
                and delta.candidate is not None):
            change = delta.candidate - delta.baseline
            bad = -change if spec.higher_is_better else change
            rel_bad = bad / abs(delta.baseline) if delta.baseline else (
                float("inf") if bad > 0 else 0.0)
            delta.regressed = (bad > spec.abs_floor
                               and rel_bad > spec.threshold)
        deltas.append(delta)
    return deltas


def compare_runs(
    baseline: TraceAnalysis,
    candidate: TraceAnalysis,
    thresholds: Optional[dict[str, MetricSpec]] = None,
) -> ComparisonResult:
    """Diff two analyzed runs (manifest config + metric deltas)."""
    label = candidate.label or baseline.label or Path(candidate.path).name
    return ComparisonResult(
        label=label,
        manifest_diff=diff_manifests(baseline.manifest, candidate.manifest),
        deltas=compare_metrics(baseline.metrics(), candidate.metrics(),
                               thresholds),
    )


# ----------------------------------------------------------------------
# Directory comparison
# ----------------------------------------------------------------------

def _traces_by_stem(root: Path) -> dict[str, Path]:
    return {p.name[: -len(".trace.jsonl")]: p
            for p in sorted(root.rglob("*.trace.jsonl"))}


@dataclass
class DirComparison:
    """Label-matched comparison of two trace directories."""

    runs: list[ComparisonResult] = field(default_factory=list)
    only_baseline: list[str] = field(default_factory=list)
    only_candidate: list[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(run.regressed for run in self.runs)


def compare_dirs(
    baseline_dir: Union[str, Path],
    candidate_dir: Union[str, Path],
    thresholds: Optional[dict[str, MetricSpec]] = None,
) -> DirComparison:
    """Compare every trace stem present in both directories."""
    base = _traces_by_stem(Path(baseline_dir))
    cand = _traces_by_stem(Path(candidate_dir))
    if not base:
        raise ConfigError(f"no *.trace.jsonl under {baseline_dir}")
    if not cand:
        raise ConfigError(f"no *.trace.jsonl under {candidate_dir}")
    result = DirComparison(
        only_baseline=sorted(set(base) - set(cand)),
        only_candidate=sorted(set(cand) - set(base)),
    )
    for stem in sorted(set(base) & set(cand)):
        result.runs.append(compare_runs(analyze_trace(base[stem]),
                                        analyze_trace(cand[stem]),
                                        thresholds))
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_comparison(result: ComparisonResult) -> str:
    """Plain-text report for one baseline/candidate pair."""
    lines = [f"== compare: {result.label} =="]
    if result.manifest_diff:
        lines.append("config differences (baseline -> candidate):")
        for key, (a, b) in result.manifest_diff.items():
            lines.append(f"  {key}: {a!r} -> {b!r}")
    else:
        lines.append("config: identical")
    name_w = max((len(d.name) for d in result.deltas), default=6)
    lines.append(f"{'metric'.ljust(name_w)}  {'baseline':>12}  "
                 f"{'candidate':>12}  {'change':>8}  verdict")
    for delta in result.deltas:
        rel = delta.rel_change
        rel_text = "-" if rel is None else f"{rel:+.1%}"
        if delta.regressed:
            verdict = f"REGRESSED (>{delta.spec.threshold:.0%})"
        elif delta.spec.threshold is None:
            verdict = "info"
        else:
            verdict = "ok"

        def fmt(v: Optional[float]) -> str:
            return "-" if v is None else f"{v:,.4g}"

        lines.append(f"{delta.name.ljust(name_w)}  {fmt(delta.baseline):>12}  "
                     f"{fmt(delta.candidate):>12}  {rel_text:>8}  {verdict}")
    lines.append(f"verdict: {'REGRESSED' if result.regressed else 'ok'} "
                 f"({len(result.regressions)} regression(s))")
    return "\n".join(lines)


def render_dir_comparison(result: DirComparison) -> str:
    parts = [render_comparison(run) for run in result.runs]
    if result.only_baseline:
        parts.append("only in baseline: " + ", ".join(result.only_baseline))
    if result.only_candidate:
        parts.append("only in candidate: " + ", ".join(result.only_candidate))
    parts.append(f"overall: {'REGRESSED' if result.regressed else 'ok'} "
                 f"({len(result.runs)} run(s) compared)")
    return "\n\n".join(parts)
