"""Stdlib sampling profiler with per-cell attribution.

A :class:`SamplingProfiler` runs a background daemon thread that wakes
at a configurable rate, snapshots every *tracked* thread's Python stack
via :func:`sys._current_frames`, and counts the stacks in a
:class:`Profile`.  Nothing is instrumented: the profiled code runs the
exact bytecode it runs unprofiled, no trace hooks are installed, and the
profiler never touches seeded RNG state — so profiled simulations stay
bit-identical to unprofiled ones (the determinism golden enforces it).

Samples are attributed to the *cell* a thread registered with
(:meth:`SamplingProfiler.track`), matching the engine's per-cell
execution model: the engine starts one profiler around each executed
cell, so pool workers and the serial path profile identically.

The on-disk format is collapsed stacks — one ``frame;frame;... count``
line per distinct stack, root first, the standard input of every
flamegraph tool — with two repo-specific conventions:

- comment headers ``# key: value`` carry metadata (hz, duration,
  sample count) and are ignored by standard tooling;
- the root frame ``cell:<label>`` carries cell attribution, so
  per-cell breakdowns survive merging whole-run profiles.

Lines are emitted sorted, so identical sample multisets serialize to
identical bytes.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_HZ",
    "Profile",
    "SamplingProfiler",
    "merge_collapsed",
    "top_symbols",
]

#: Default sample rate. Prime, so sampling never phase-locks with
#: periodic work; ~100 Hz keeps overhead well under the 5% budget
#: (measured in PERFORMANCE.md) while resolving cells that run for
#: tens of milliseconds.
DEFAULT_HZ = 101

#: Stacks deeper than this keep their leaf-most frames under a
#: ``<truncated>`` root (recursion guard for the collapsed format).
MAX_DEPTH = 120

_CELL_PREFIX = "cell:"

# Frame separators and the count separator may not appear inside a
# symbol; translate them to harmless stand-ins once, at sample time.
_SANITIZE = str.maketrans({";": ":", " ": "_", "\t": "_", "\n": "_"})


def _symbol(code) -> str:
    """``module.qualname`` for one code object, collapsed-format safe."""
    qualname = getattr(code, "co_qualname", None) or code.co_name
    module = Path(code.co_filename).stem or "?"
    return f"{module}.{qualname}".translate(_SANITIZE)


def _stack_of(frame) -> Tuple[str, ...]:
    """Root-first symbol tuple for a live frame (leaf = last element)."""
    symbols = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH + 1:
        symbols.append(_symbol(frame.f_code))
        frame = frame.f_back
        depth += 1
    symbols.reverse()
    if len(symbols) > MAX_DEPTH:
        symbols = ["<truncated>"] + symbols[-MAX_DEPTH:]
    return tuple(symbols)


class Profile:
    """A multiset of ``(cell, stack)`` samples plus metadata."""

    def __init__(self, meta: Optional[dict] = None) -> None:
        #: ``(cell_label, root-first stack tuple) -> sample count``.
        self.samples: Counter = Counter()
        self.meta: dict = dict(meta or {})

    # -- accumulation ---------------------------------------------------

    def add(self, cell: str, stack: Tuple[str, ...], count: int = 1) -> None:
        self.samples[(cell, stack)] += count

    def merge(self, other: "Profile", cell: Optional[str] = None) -> None:
        """Fold ``other`` in, optionally re-attributing its samples."""
        for (other_cell, stack), count in other.samples.items():
            self.add(cell if cell is not None else other_cell, stack, count)
        for key in ("duration_seconds", "samples_dropped"):
            if key in other.meta:
                self.meta[key] = self.meta.get(key, 0) + other.meta[key]
        for key in ("hz", "backend"):
            # Provenance keys: adopted on first merge, degraded to
            # "mixed" when folded profiles disagree (e.g. merging a
            # python-backend cell profile into a numpy-backend one).
            if key in other.meta:
                if self.meta.get(key, other.meta[key]) != other.meta[key]:
                    self.meta[key] = "mixed"
                else:
                    self.meta[key] = other.meta[key]

    # -- views ----------------------------------------------------------

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def cells(self) -> list:
        return sorted({cell for cell, _ in self.samples})

    def per_cell(self) -> dict:
        """Split into one :class:`Profile` per cell label."""
        split: dict = {}
        for (cell, stack), count in self.samples.items():
            split.setdefault(cell, Profile()).add(cell, stack, count)
        return split

    def by_symbol(self, cell: Optional[str] = None) -> dict:
        """``symbol -> {"self": n, "total": n}`` sample counts.

        ``total`` counts samples where the symbol appears anywhere on
        the stack (once per sample, however deep the recursion);
        ``self`` counts samples where it is the leaf.  Restrict to one
        cell with ``cell=``; ``None`` aggregates the whole run.
        """
        stats: dict = {}
        for (sample_cell, stack), count in self.samples.items():
            if cell is not None and sample_cell != cell:
                continue
            if not stack:
                continue
            for symbol in set(stack):
                entry = stats.setdefault(symbol, {"self": 0, "total": 0})
                entry["total"] += count
            stats[stack[-1]]["self"] += count
        return stats

    # -- collapsed-stack serialization ----------------------------------

    def collapsed(self) -> str:
        """Deterministic collapsed-stack text (sorted lines, ``#`` meta)."""
        lines = ["# repro-profile: 1"]
        for key in sorted(self.meta):
            lines.append(f"# {key}: {self.meta[key]}")
        body = []
        for (cell, stack), count in self.samples.items():
            frames = ((_CELL_PREFIX + cell.translate(_SANITIZE),) if cell
                      else ()) + stack
            body.append(f"{';'.join(frames)} {count}")
        lines.extend(sorted(body))
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "Profile":
        """Inverse of :meth:`collapsed`; tolerant of foreign collapsed files."""
        profile = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                comment = line.lstrip("#").strip()
                key, sep, value = comment.partition(":")
                if sep and key.strip() and key.strip() != "repro-profile":
                    profile.meta[key.strip()] = _coerce(value.strip())
                continue
            stack_text, _, count_text = line.rpartition(" ")
            if not stack_text:
                continue
            try:
                count = int(count_text)
            except ValueError:
                continue
            frames = tuple(stack_text.split(";"))
            cell = ""
            if frames and frames[0].startswith(_CELL_PREFIX):
                cell = frames[0][len(_CELL_PREFIX):]
                frames = frames[1:]
            profile.add(cell, frames, count)
        return profile


def _coerce(value: str):
    for caster in (int, float):
        try:
            return caster(value)
        except ValueError:
            continue
    return value


def merge_collapsed(texts: Iterable[str]) -> str:
    """Merge collapsed profiles (e.g. per-cell sidecars) into one text."""
    merged = Profile()
    for text in texts:
        merged.merge(Profile.parse(text))
    return merged.collapsed()


def top_symbols(profile: Profile, n: int = 10,
                cell: Optional[str] = None) -> list:
    """``[(symbol, self, total), ...]`` hottest-first (by self samples)."""
    stats = profile.by_symbol(cell=cell)
    ranked = sorted(stats.items(),
                    key=lambda item: (-item[1]["self"], -item[1]["total"],
                                      item[0]))
    return [(symbol, entry["self"], entry["total"])
            for symbol, entry in ranked[:n]]


class SamplingProfiler:
    """Background-thread sampler over :func:`sys._current_frames`.

    Observation-only by construction: the sampler reads other threads'
    frames under the GIL and touches nothing else.  Only *tracked*
    threads are sampled — the engine tracks the thread running a cell,
    tagged with the cell's label — so unrelated service threads never
    pollute a profile.
    """

    def __init__(self, hz: int = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = hz
        self.profile = Profile(meta={"hz": hz})
        self._tracked: dict = {}  # thread ident -> cell label
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    # -- thread registry ------------------------------------------------

    def track(self, cell: str = "", ident: Optional[int] = None) -> None:
        """Sample thread ``ident`` (default: caller), attributed to ``cell``."""
        with self._lock:
            self._tracked[ident or threading.get_ident()] = cell

    def untrack(self, ident: Optional[int] = None) -> None:
        with self._lock:
            self._tracked.pop(ident or threading.get_ident(), None)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling and return the finished :class:`Profile`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if self._started_at is not None:
            elapsed = time.perf_counter() - self._started_at
            self.profile.meta["duration_seconds"] = round(
                self.profile.meta.get("duration_seconds", 0.0) + elapsed, 6)
            self._started_at = None
        self.profile.meta["samples"] = self.profile.total_samples
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        self.track()
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampling loop ----------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        wait = self._stop.wait
        while not wait(interval):
            frames = sys._current_frames()
            with self._lock:
                tracked = list(self._tracked.items())
            for ident, cell in tracked:
                if ident == own:
                    continue
                frame = frames.get(ident)
                if frame is not None:
                    self.profile.add(cell, _stack_of(frame))
            del frames  # drop live-frame references promptly
