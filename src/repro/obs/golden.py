"""Determinism fingerprinting for bit-identical-results guarantees.

Perf work on the simulator hot path is only safe when every run stays
**bit-identical** to pre-optimization output: same event order, same
stats, same trace bytes. This module reduces a finished run to a
JSON-stable *fingerprint* — every deterministic field of the
:class:`~repro.metrics.stats.RunResult`, the per-channel DRAM stats, the
deterministic subset of the manifest, and a SHA-256 over the JSONL trace
— so a golden file captured before an optimization can prove the
optimized code produces the very same bits.

Volatile provenance (wall seconds, events/sec, git SHA, absolute paths)
is excluded by construction; everything else, down to per-kind CAS
ordering and per-decision credit snapshots streamed into the trace, must
match exactly.

Usage::

    golden = capture_golden(["mcf"], ["baseline", "dap"], trace_dir=tmp)
    diff = diff_goldens(load_golden(path), golden)
    assert not diff

``python -m repro.obs.golden --out tests/golden/determinism_golden.json``
regenerates the committed golden (only legitimate after an intentional
model change, never for a perf-only PR).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

GOLDEN_SCHEMA = 1

#: Manifest keys that vary run-to-run (or machine-to-machine) and are
#: therefore excluded from fingerprints.  ``backend`` is provenance, not
#: simulation input: backends are bit-identical by contract, and golden
#: comparisons across backends are exactly how that contract is checked.
VOLATILE_MANIFEST_KEYS = ("wall_seconds", "events_per_sec", "git_sha",
                          "backend")

#: Fingerprint keys that depend on the *final* ``sim.now`` and on the
#: sampler's own events. The telemetry sampler legitimately keeps the
#: clock alive a little past the last simulation event, so these differ
#: between traced and untraced runs of the same cell — while remaining
#: exactly reproducible run-to-run for a fixed instrumentation setup.
OBSERVATION_SENSITIVE_KEYS = (
    "delivered_gbps",
    ("extras", "mm_gbps"),
    ("extras", "cache_gbps"),
    ("extras", "cache_write_gbps"),
    ("manifest", "events"),
    ("manifest", "telemetry"),
)


def _strip_observation_sensitive(fingerprint: dict) -> dict:
    """Drop the keys that may differ between traced and untraced runs."""
    out = {k: (dict(v) if isinstance(v, dict) else v)
           for k, v in fingerprint.items()}
    for key in OBSERVATION_SENSITIVE_KEYS:
        if isinstance(key, tuple):
            outer, inner = key
            out.get(outer, {}).pop(inner, None)
        else:
            out.pop(key, None)
    return out


def _jsonable(value):
    """Round-trip through JSON semantics (tuples->lists, enum keys->str)."""
    if isinstance(value, dict):
        return {str(getattr(k, "value", k)): _jsonable(v)
                for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        # repr() round-trips exactly in JSON; keep full precision.
        return value
    return value


def channel_fingerprint(channel) -> dict:
    """Every deterministic counter of one DRAM channel."""
    stats = channel.stats
    return _jsonable({
        "cas_by_kind": {k.value: v for k, v in stats.cas_by_kind.items()},
        "row_hits": stats.row_hits,
        "row_misses": stats.row_misses,
        "busy_cycles": stats.busy_cycles,
        "reads_done": stats.reads_done,
        "writes_done": stats.writes_done,
        "demand_read_latency_sum": stats.demand_read_latency_sum,
        "demand_reads_done": stats.demand_reads_done,
        "mode_switches": stats.mode_switches,
    })


def result_fingerprint(result) -> dict:
    """Deterministic projection of a :class:`RunResult` (+ manifest)."""
    extras = {k: _jsonable(v) for k, v in result.extras.items()
              if k != "manifest"}
    manifest = result.manifest or {}
    manifest = {k: _jsonable(v) for k, v in manifest.items()
                if k not in VOLATILE_MANIFEST_KEYS}
    return {
        "policy": result.policy,
        "cycles": result.cycles,
        "instructions": list(result.instructions),
        "ipc": list(result.ipc),
        "l3_mpki": list(result.l3_mpki),
        "avg_read_latency": result.avg_read_latency,
        "served_hit_rate": result.served_hit_rate,
        "array_hit_rate": result.array_hit_rate,
        "mm_cas": result.mm_cas,
        "cache_cas": result.cache_cas,
        "mm_cas_fraction": result.mm_cas_fraction,
        "delivered_gbps": result.delivered_gbps,
        "tag_cache_miss_rate": result.tag_cache_miss_rate,
        "dap_decisions": dict(result.dap_decisions),
        "extras": extras,
        "manifest": manifest,
    }


def sha256_file(path: Union[str, Path]) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def capture_cell(workload: str, policy: str, scale_name: str = "smoke",
                 trace_dir: Optional[Union[str, Path]] = None) -> dict:
    """Run one seeded cell untraced and (optionally) traced.

    Returns the cell's fingerprint; when ``trace_dir`` is given the cell
    is additionally run with telemetry attached, the traced result is
    asserted identical to the untraced one (telemetry must only
    observe), and the trace's SHA-256 joins the fingerprint.
    """
    from repro.experiments.common import get_scale, run_mix, scaled_config
    from repro.obs.telemetry import TelemetryConfig
    from repro.obs.trace import trace_paths
    from repro.workloads.mixes import rate_mix

    scale = get_scale(scale_name)
    mix = rate_mix(workload)
    config = scaled_config(scale, policy=policy)
    label = f"{workload}/{policy}"

    system_out: list = []
    result = run_mix(mix, config, scale, label=label, system_out=system_out)
    untraced = result_fingerprint(result)
    msc = system_out[0].msc
    channels = {}
    for dev_name in ("mm_dev", "cache_dev", "cache_write_dev"):
        device = getattr(msc, dev_name, None)
        if device is not None:
            for channel in device.channels:
                channels[channel.name] = channel_fingerprint(channel)
    entry = {"label": label, "scale": scale_name, "result": untraced,
             "channels": channels}

    if trace_dir is not None:
        telemetry = TelemetryConfig(probe_interval=5_000,
                                    trace_dir=str(trace_dir))
        traced = result_fingerprint(
            run_mix(mix, config, scale, telemetry=telemetry, label=label))
        # Telemetry must only observe: outside the sampler's own clock
        # extension, the simulated outcome is unaffected by tracing.
        if (_strip_observation_sensitive(traced)
                != _strip_observation_sensitive(untraced)):
            raise AssertionError(
                f"{label}: traced run diverged from untraced run")
        trace_path, _ = trace_paths(trace_dir, label)
        entry["trace_sha256"] = sha256_file(trace_path)
        entry["telemetry"] = traced["manifest"].get("telemetry")
    return entry


def capture_golden(workloads, policies, scale_name: str = "smoke",
                   trace_dir: Optional[Union[str, Path]] = None) -> dict:
    """Fingerprint a grid of ``workload x policy`` cells."""
    cells = {}
    for workload in workloads:
        for policy in policies:
            entry = capture_cell(workload, policy, scale_name=scale_name,
                                 trace_dir=trace_dir)
            cells[entry["label"]] = entry
    return {"schema": GOLDEN_SCHEMA, "scale": scale_name, "cells": cells}


def diff_goldens(expected: dict, actual: dict, prefix: str = "") -> list[str]:
    """Human-readable paths at which two fingerprints disagree."""
    diffs: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                diffs.append(f"{where}: unexpected key")
            elif key not in actual:
                diffs.append(f"{where}: missing key")
            else:
                diffs.extend(diff_goldens(expected[key], actual[key], where))
        return diffs
    if expected != actual:
        diffs.append(f"{prefix}: {expected!r} != {actual!r}")
    return diffs


def write_golden(path: Union[str, Path], golden: dict) -> str:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return str(path)


def load_golden(path: Union[str, Path]) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="Capture a determinism golden fingerprint")
    parser.add_argument("--out", required=True, metavar="FILE")
    parser.add_argument("--workloads", nargs="*", default=["mcf"])
    parser.add_argument("--policies", nargs="*", default=["baseline", "dap"])
    parser.add_argument("--scale", default="smoke")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        golden = capture_golden(args.workloads, args.policies,
                                scale_name=args.scale, trace_dir=tmp)
    print(f"golden written to {write_golden(args.out, golden)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
