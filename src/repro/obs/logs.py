"""Structured logging for the service: line-per-record, trace-correlated.

Every log record emitted under the ``repro`` logger hierarchy picks up
the current W3C traceparent (from :mod:`repro.obs.spans`' context), so
``grep <trace_id> service.log`` reconstructs one request's journey
through the HTTP layer, the queue, and the worker — the log half of the
end-to-end correlation story.

Two output shapes, chosen by ``repro --log-json``:

- **text** (default): ``2026-08-08T12:00:00 INFO repro.service.worker
  claimed job 3f2a [trace 4bf9…]`` — human tails;
- **json**: one JSON object per line (``ts``, ``level``, ``logger``,
  ``msg``, ``traceparent``, plus any ``extra=`` fields) — machine
  shippers.

Configuration is idempotent and opt-in: importing this module does
nothing; library code just calls :func:`get_logger` and emits, and the
records go nowhere until an entry point calls :func:`configure_logging`
(the unified CLI wires ``--log-level``/``--log-json`` to it).
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

from repro.obs.spans import current_traceparent

__all__ = ["configure_logging", "get_logger", "JsonFormatter",
           "TextFormatter"]

ROOT_LOGGER = "repro"

#: Attributes of a LogRecord that are plumbing, not user payload.
_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}


def _record_extras(record: logging.LogRecord) -> dict:
    return {k: v for k, v in record.__dict__.items()
            if k not in _RESERVED and not k.startswith("_")}


def _iso(created: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S",
                         time.localtime(created)) + f".{int(created % 1 * 1000):03d}"


class JsonFormatter(logging.Formatter):
    """One JSON object per line; unserializable extras become repr()."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": _iso(record.created),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        traceparent = getattr(record, "traceparent", None) \
            or current_traceparent()
        if traceparent:
            payload["traceparent"] = traceparent
        for key, value in _record_extras(record).items():
            if key in payload:
                continue
            try:
                json.dumps(value)
                payload[key] = value
            except (TypeError, ValueError):
                payload[key] = repr(value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


class TextFormatter(logging.Formatter):
    """Human-readable line with an abbreviated trace id when present."""

    def format(self, record: logging.LogRecord) -> str:
        base = (f"{_iso(record.created)} {record.levelname:<7} "
                f"{record.name} {record.getMessage()}")
        traceparent = getattr(record, "traceparent", None) \
            or current_traceparent()
        if traceparent:
            base += f" [trace {traceparent.split('-')[1][:12]}]"
        extras = _record_extras(record)
        extras.pop("traceparent", None)
        if extras:
            base += " " + " ".join(f"{k}={v!r}"
                                   for k, v in sorted(extras.items()))
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


def configure_logging(level: str = "info", json_mode: bool = False,
                      stream: Optional[IO] = None) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy; returns its root.

    Idempotent: replaces any handler a previous call installed instead
    of stacking duplicates, so tests and long-lived CLIs can reconfigure
    freely.  Records do not propagate to the root logger (the service's
    stderr stays clean of double emission under uvicorn).
    """
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(numeric)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` hierarchy (silent until configured)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
