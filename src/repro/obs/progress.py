"""Incremental tailing of telemetry JSONL traces for live progress.

A :class:`TraceTailer` watches a trace directory while a run is in
flight and yields each *complete* new JSONL record exactly once,
tolerating files that appear mid-run and lines that are only partially
flushed (a record is consumed only once its trailing newline exists).
The simulation service points one at a job's trace directory and
forwards a sampled stream of records to the job's SSE progress feed;
``repro-analyze`` stays the offline, post-hoc consumer of the same
files.

The tailer is read-only and stateless on disk: it keeps per-file byte
offsets in memory, so it never perturbs the run it observes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

__all__ = ["TraceTailer"]


class TraceTailer:
    """Poll a directory of ``*.trace.jsonl`` files for new records.

    Each :meth:`poll` returns the records appended (across all trace
    files, oldest file first) since the previous poll, as
    ``(trace_stem, record)`` pairs.  ``sample`` keeps every Nth
    ``sample`` record per file — SSE consumers rarely want the full
    probe cadence — while non-sample records (meta, decisions) always
    pass through.
    """

    def __init__(self, trace_dir: Union[str, Path], sample: int = 1) -> None:
        self.trace_dir = Path(trace_dir)
        self.sample = max(1, sample)
        self._offsets: dict[Path, int] = {}
        self._partial: dict[Path, str] = {}
        self._sample_seen: dict[Path, int] = {}

    def _files(self) -> list[Path]:
        if not self.trace_dir.is_dir():
            return []
        return sorted(self.trace_dir.rglob("*.trace.jsonl"))

    def poll(self) -> list[tuple[str, dict]]:
        """All complete records appended since the last poll."""
        return list(self.iter_new())

    def iter_new(self) -> Iterator[tuple[str, dict]]:
        for path in self._files():
            stem = path.name[: -len(".trace.jsonl")]
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    handle.seek(self._offsets.get(path, 0))
                    chunk = handle.read()
                    self._offsets[path] = handle.tell()
            except OSError:
                continue  # vanished or unreadable mid-poll; retry later
            if not chunk:
                continue
            text = self._partial.pop(path, "") + chunk
            lines = text.split("\n")
            # The final split element is everything after the last
            # newline: an incomplete record still being written (or ""
            # when the chunk ended exactly on a boundary). Hold it back.
            if lines[-1]:
                self._partial[path] = lines[-1]
            for line in lines[:-1]:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn mid-file line; skip, keep tailing
                if record.get("t") == "sample":
                    seen = self._sample_seen.get(path, 0)
                    self._sample_seen[path] = seen + 1
                    if seen % self.sample:
                        continue
                yield stem, record

    def drain(self) -> list[tuple[str, dict]]:
        """Final poll after the run finished (no more writers)."""
        return self.poll()
