"""Machine-readable simulator-performance trajectory (``BENCH_*.json``).

Every instrumented run already measures itself (per-cell wall time and
event counts in :class:`~repro.experiments.cellcache.ExecStats`); this
module turns that into a committed performance trajectory so a slowdown
in the simulator itself cannot ship silently:

- :func:`build_bench_record` reduces a run's per-experiment
  :class:`ExecStats` to the ``BENCH`` schema — run id, git SHA, per
  experiment events/sec and wall time, aggregate throughput;
- :func:`latest_bench` finds the most recent ``BENCH_<n>.json``
  committed at the repo root;
- :func:`compare_bench` judges a fresh record against a previous one
  (events/sec per experiment plus aggregate, relative threshold).

``repro-experiment ... --bench FILE`` and ``scripts/smoke.py --bench``
write records; ``repro-analyze bench`` validates and compares them.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Optional, Union

from repro.backends import active_backend_name, numpy_version
from repro.errors import ConfigError
from repro.experiments.cellcache import ExecStats
from repro.obs.manifest import git_sha

#: Schema 2 adds backend provenance (``backend``, ``numpy_version``) and
#: per-cell throughput (``cell_rates``); schema-1 records stay loadable
#: (they predate backends and are implicitly ``python``).
BENCH_SCHEMA = 2
_KNOWN_SCHEMAS = (1, 2)

#: Only experiments that actually simulated this many events participate
#: in throughput comparison (cache-served sweeps measure nothing).
MIN_COMPARABLE_EVENTS = 10_000

#: Default relative events/sec drop treated as a regression. Generous,
#: because wall-clock throughput is hardware- and load-dependent.
DEFAULT_BENCH_THRESHOLD = 0.5

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------

def _experiment_entry(stats: ExecStats) -> dict:
    wall = sum(p.wall for p in stats.profile)
    events = sum(p.events for p in stats.profile)
    return {
        "cells": stats.total,
        "executed": stats.executed,
        "cache_hits": stats.cache_hits,
        "wall_seconds": round(wall, 6),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "slowest_cell": (max(stats.profile, key=lambda p: p.wall).label
                         if stats.profile else None),
        "cell_rates": {p.label: round(p.events_per_sec, 1)
                       for p in sorted(stats.profile, key=lambda p: p.label)
                       if p.events},
    }


def build_bench_record(
    run_id: str,
    per_experiment: dict[str, ExecStats],
    scale: Optional[str] = None,
    created_unix: Optional[float] = None,
    backend: Optional[str] = None,
) -> dict:
    """The BENCH schema: one performance sample of the simulator.

    ``backend`` defaults to the process's active simulation backend;
    ``numpy_version`` records the installed numpy (null when absent) so
    a trajectory sample is attributable to the exact vector stack.
    """
    experiments = {name: _experiment_entry(stats)
                   for name, stats in sorted(per_experiment.items())}
    wall = sum(e["wall_seconds"] for e in experiments.values())
    events = sum(e["events"] for e in experiments.values())
    return {
        "schema": BENCH_SCHEMA,
        "run_id": run_id,
        "backend": backend if backend is not None else active_backend_name(),
        "numpy_version": numpy_version(),
        "git_sha": git_sha(),
        "created_unix": round(created_unix if created_unix is not None
                              else time.time(), 3),
        "scale": scale,
        "total_wall_seconds": round(wall, 6),
        "total_events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "experiments": experiments,
    }


def validate_bench(record: dict) -> dict:
    """Schema check; returns the record or raises ``ConfigError``."""
    if not isinstance(record, dict):
        raise ConfigError("bench record must be a JSON object")
    if record.get("schema") not in _KNOWN_SCHEMAS:
        raise ConfigError(
            f"bench schema {record.get('schema')!r} not in {_KNOWN_SCHEMAS}")
    for key in ("run_id", "total_wall_seconds", "events_per_sec",
                "experiments"):
        if key not in record:
            raise ConfigError(f"bench record missing {key!r}")
    if not isinstance(record["experiments"], dict):
        raise ConfigError("bench 'experiments' must be an object")
    for name, entry in record["experiments"].items():
        for key in ("wall_seconds", "events", "events_per_sec"):
            if key not in entry:
                raise ConfigError(f"bench experiment {name!r} missing {key!r}")
    return record


def bench_backend(record: dict) -> str:
    """The backend a record was measured under (schema-1 => python)."""
    return record.get("backend") or "python"


# ----------------------------------------------------------------------
# I/O and discovery
# ----------------------------------------------------------------------

def write_bench(path: Union[str, Path], record: dict) -> str:
    validate_bench(record)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return str(path)


def load_bench(path: Union[str, Path]) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return validate_bench(json.load(handle))
    except FileNotFoundError:
        raise ConfigError(f"no bench record at {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"unreadable bench record {path}: {exc}") from None


def latest_bench(repo_dir: Union[str, Path],
                 backend: Optional[str] = None) -> Optional[Path]:
    """The highest-numbered ``BENCH_<n>.json`` at the repo root.

    With ``backend``, the highest-numbered record *measured under that
    backend* — trajectories compare like for like, so a python sample is
    never judged against a numpy baseline (or vice versa).  Unreadable
    records are skipped rather than fatal.
    """
    numbered: list[tuple[int, Path]] = []
    for path in Path(repo_dir).glob("BENCH_*.json"):
        match = _BENCH_NAME.match(path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    for _, path in sorted(numbered, reverse=True):
        if backend is None:
            return path
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and bench_backend(record) == backend:
            return path
    return None


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

def compare_bench(
    current: dict,
    previous: dict,
    threshold: float = DEFAULT_BENCH_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """``(regressions, notes)`` for a current record vs a previous one.

    A regression is an experiment (or the aggregate) whose events/sec
    dropped by more than ``threshold`` relative to the previous record;
    entries that simulated almost nothing are skipped as incomparable.
    """
    regressions: list[str] = []
    notes: list[str] = []
    cur_backend, prev_backend = bench_backend(current), bench_backend(previous)
    if cur_backend != prev_backend:
        # Cross-backend throughput deltas are expected (that is the
        # point of a faster backend) — not a trajectory signal.
        notes.append(
            f"backend mismatch ({prev_backend} -> {cur_backend}); "
            "throughput not compared — trajectories are per backend")
        return regressions, notes
    pairs = [("aggregate", current, previous)]
    prev_experiments = previous.get("experiments", {})
    for name, entry in current.get("experiments", {}).items():
        if name in prev_experiments:
            pairs.append((name, entry, prev_experiments[name]))
        else:
            notes.append(f"{name}: no previous sample")
    for name, cur, prev in pairs:
        cur_events = cur.get("total_events", cur.get("events", 0))
        prev_events = prev.get("total_events", prev.get("events", 0))
        if (cur_events < MIN_COMPARABLE_EVENTS
                or prev_events < MIN_COMPARABLE_EVENTS):
            notes.append(f"{name}: too few simulated events to compare "
                         f"({cur_events} vs {prev_events})")
            continue
        cur_rate, prev_rate = cur["events_per_sec"], prev["events_per_sec"]
        if prev_rate <= 0:
            continue
        change = (cur_rate - prev_rate) / prev_rate
        line = (f"{name}: {prev_rate:,.0f} -> {cur_rate:,.0f} events/s "
                f"({change:+.1%})")
        if change < -threshold:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes
