"""Self-contained flamegraph rendering for collapsed-stack profiles.

Renders a :class:`~repro.obs.profiler.Profile` to a single SVG (or a
wrapping HTML page) with **zero external dependencies**: no script or
stylesheet fetches, no fonts, no d3 — the output opens offline and is
safe to commit or attach to CI artifacts.  A small embedded script adds
click-to-zoom in browsers; without script (e.g. ``<img>`` embeds) the
SVG still renders the full graph with native ``<title>`` hover tips.

Layout is the classic icicle: the synthetic ``all`` root on top, leaves
at the bottom, frame width proportional to inclusive sample count.
Cell-attributed profiles get one ``cell:<label>`` lane per cell under
the root, so a whole-run flamegraph keeps per-cell structure.  Child
frames are ordered alphabetically, making the rendering deterministic
for a given profile.
"""

from __future__ import annotations

import html
from typing import Optional

from repro.obs.profiler import Profile

__all__ = ["build_tree", "render_svg", "render_html"]

FRAME_HEIGHT = 17
MIN_FRAME_PX = 0.4        # frames narrower than this are dropped from the SVG
TEXT_MIN_PX = 40          # frames narrower than this draw no label
CHAR_PX = 6.7             # ~monospace advance at 11px; label truncation

# Frame fills: steps of the reference sequential blue ramp (see the
# data-viz palette). Hue carries no meaning here — the hash just keeps
# adjacent frames visually distinct; legibility comes from the 1px
# surface stroke. The steps stay mid-ramp so the fixed dark label ink
# reads on every frame in both color schemes.
_FILLS = ("#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7", "#3987e5")
_ROOT_FILL = "#cde2fb"
_LABEL_INK = "#0b0b0b"    # fixed: frames keep the same fill in dark mode


def _fill(name: str) -> str:
    if name == "all":
        return _ROOT_FILL
    # Stable, platform-independent string hash (hash() is seeded).
    digest = 0
    for char in name:
        digest = (digest * 31 + ord(char)) & 0xFFFFFFFF
    return _FILLS[digest % len(_FILLS)]


def build_tree(profile: Profile) -> dict:
    """Merge samples into a frame trie: ``{name, value, children}``.

    ``value`` is the inclusive sample count (samples passing through the
    frame); ``children`` maps child frame name to its node.
    """
    root = {"name": "all", "value": 0, "children": {}}
    for (cell, stack), count in profile.samples.items():
        frames = ((f"cell:{cell}",) if cell else ()) + stack
        root["value"] += count
        node = root
        for frame in frames:
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += count
            node = child
    return root


def _depth(node: dict) -> int:
    if not node["children"]:
        return 1
    return 1 + max(_depth(child) for child in node["children"].values())


def _label(name: str, width_px: float) -> str:
    chars = int(width_px / CHAR_PX)
    if chars < 3:
        return ""
    if len(name) <= chars:
        return name
    return name[: max(1, chars - 1)] + "…"


def render_svg(profile: Profile, title: str = "repro profile",
               width: int = 1200) -> str:
    """One standalone flamegraph SVG for a profile."""
    tree = build_tree(profile)
    total = max(1, tree["value"])
    depth = _depth(tree)
    header = 34
    footer = 22
    height = header + depth * FRAME_HEIGHT + footer

    frames: list[str] = []

    def emit(node: dict, x: int, level: int) -> None:
        w_px = node["value"] / total * width
        if w_px < MIN_FRAME_PX:
            return
        x_px = x / total * width
        y = header + level * FRAME_HEIGHT
        name = node["name"]
        pct = node["value"] / total * 100.0
        tip = f"{name} — {node['value']} samples ({pct:.1f}%)"
        label = _label(name, w_px) if w_px >= TEXT_MIN_PX else ""
        text = (
            f'<text x="{x_px + 3:.2f}" y="{y + 12}">{html.escape(label)}</text>'
            if label else ""
        )
        frames.append(
            f'<g class="f" data-n="{html.escape(name, quote=True)}" '
            f'data-x="{x}" data-w="{node["value"]}" data-d="{level}">'
            f'<title>{html.escape(tip)}</title>'
            f'<rect x="{x_px:.2f}" y="{y}" width="{w_px:.2f}" '
            f'height="{FRAME_HEIGHT - 1}" rx="1" fill="{_fill(name)}"/>'
            f"{text}</g>"
        )
        child_x = x
        for child_name in sorted(node["children"]):
            child = node["children"][child_name]
            emit(child, child_x, level + 1)
            child_x += child["value"]

    emit(tree, 0, 0)

    meta_bits = []
    for key in ("samples", "hz", "duration_seconds"):
        if key in profile.meta:
            meta_bits.append(f"{key.replace('_', ' ')}: {profile.meta[key]}")
    subtitle = " · ".join(meta_bits) or f"{total} samples"

    # Page chrome follows the color scheme; frame fills and their label
    # ink are fixed (mid-ramp blues read on both surfaces).
    style = f"""
  :root {{ color-scheme: light dark; }}
  svg.repro-flame {{
    --surface-1: #fcfcfb; --text-primary: #0b0b0b;
    --text-secondary: #52514e; --text-muted: #898781;
    font: 11px ui-monospace, SFMono-Regular, Menlo, monospace;
  }}
  @media (prefers-color-scheme: dark) {{
    svg.repro-flame {{
      --surface-1: #1a1a19; --text-primary: #ffffff;
      --text-secondary: #c3c2b7; --text-muted: #898781;
    }}
  }}
  svg.repro-flame .bg {{ fill: var(--surface-1); }}
  svg.repro-flame .title {{
    fill: var(--text-primary);
    font: 600 13px system-ui, -apple-system, "Segoe UI", sans-serif;
  }}
  svg.repro-flame .meta {{ fill: var(--text-secondary); font-size: 11px; }}
  svg.repro-flame .hint {{ fill: var(--text-muted); font-size: 10px; }}
  svg.repro-flame g.f rect {{ stroke: var(--surface-1); stroke-width: 1; }}
  svg.repro-flame g.f text {{ fill: {_LABEL_INK}; pointer-events: none; }}
  svg.repro-flame g.f {{ cursor: pointer; }}
  svg.repro-flame g.f:hover rect {{ stroke: {_LABEL_INK}; }}
"""

    script = f"""
  var W = {width}, CH = {CHAR_PX}, TMIN = {TEXT_MIN_PX};
  var frames = Array.prototype.slice.call(
      document.querySelectorAll('svg.repro-flame g.f'));
  function label(name, w) {{
    var chars = Math.floor(w / CH);
    if (chars < 3) return '';
    return name.length <= chars ? name
         : name.slice(0, Math.max(1, chars - 1)) + '\\u2026';
  }}
  function zoom(fx, fw, fd) {{
    frames.forEach(function (g) {{
      var x = +g.dataset.x, w = +g.dataset.w, d = +g.dataset.d;
      var nx, nw;
      if (d < fd) {{
        var ancestor = x <= fx && x + w >= fx + fw;
        if (!ancestor) {{ g.style.display = 'none'; return; }}
        nx = 0; nw = W;
      }} else {{
        if (x < fx || x + w > fx + fw) {{ g.style.display = 'none'; return; }}
        nx = (x - fx) / fw * W; nw = w / fw * W;
      }}
      g.style.display = '';
      var rect = g.querySelector('rect');
      rect.setAttribute('x', nx); rect.setAttribute('width', nw);
      var text = g.querySelector('text');
      var name = nw >= TMIN ? label(g.dataset.n, nw) : '';
      if (!text && name) {{
        text = document.createElementNS('http://www.w3.org/2000/svg', 'text');
        text.setAttribute('y', +rect.getAttribute('y') + 12);
        g.appendChild(text);
      }}
      if (text) {{
        text.textContent = name;
        text.setAttribute('x', nx + 3);
      }}
    }});
  }}
  frames.forEach(function (g) {{
    g.addEventListener('click', function () {{
      zoom(+g.dataset.x, +g.dataset.w, +g.dataset.d);
    }});
  }});
"""

    return f"""<svg xmlns="http://www.w3.org/2000/svg" class="repro-flame"
     width="{width}" height="{height}" viewBox="0 0 {width} {height}">
  <style>{style}</style>
  <rect class="bg" x="0" y="0" width="{width}" height="{height}"/>
  <text class="title" x="8" y="16">{html.escape(title)}</text>
  <text class="meta" x="8" y="29">{html.escape(subtitle)}</text>
  <text class="hint" x="{width - 8}" y="16" text-anchor="end">click a frame to zoom · click all to reset</text>
  {''.join(frames)}
  <script><![CDATA[{script}]]></script>
</svg>
"""


def render_html(profile: Profile, title: str = "repro profile",
                width: int = 1200,
                note: Optional[str] = None) -> str:
    """A minimal offline HTML page embedding the flamegraph SVG."""
    svg = render_svg(profile, title=title, width=width)
    note_html = (
        f'<p class="note">{html.escape(note)}</p>' if note else "")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>
  :root {{ color-scheme: light dark; }}
  body {{
    margin: 24px; background: #f9f9f7; color: #0b0b0b;
    font: 14px system-ui, -apple-system, "Segoe UI", sans-serif;
  }}
  .note {{ color: #52514e; max-width: 72ch; }}
  .card {{
    background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
    border-radius: 8px; padding: 12px; overflow-x: auto;
  }}
  @media (prefers-color-scheme: dark) {{
    body {{ background: #0d0d0d; color: #ffffff; }}
    .note {{ color: #c3c2b7; }}
    .card {{ background: #1a1a19; border-color: rgba(255,255,255,0.10); }}
  }}
</style>
</head>
<body>
{note_html}
<div class="card">
{svg}
</div>
</body>
</html>
"""
