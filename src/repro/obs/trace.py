"""Streaming JSONL trace sink and manifest files.

One trace file holds one run. Records are single-line JSON objects
discriminated by ``"t"``:

``{"t": "meta", ...}``
    First line: probe names, interval, and the run label.
``{"t": "sample", "cycle": C, "values": {probe: value, ...}}``
    One probe sweep, taken every ``probe_interval`` cycles.
``{"t": "decision", "cycle": C, "line": L, "technique": "fwb",
   "granted": true, "credits": {...}}``
    One steering decision (subject to the event sampling stride).

The run manifest is written next to the trace as ``<stem>.manifest.json``
(plain JSON, not JSONL, so dashboards can grab it without parsing the
trace).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs import metrics as _metrics

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Records between explicit flushes of a :class:`TraceWriter` handle, so
#: a crashing run still leaves an almost-complete, readable trace behind.
DEFAULT_FLUSH_EVERY = 256


def safe_stem(label: str) -> str:
    """A filesystem-safe stem for a cell label like ``mcf/dap``."""
    return _SAFE.sub("_", label).strip("_") or "run"


def trace_paths(trace_dir: Union[str, Path], label: str) -> tuple[Path, Path]:
    """``(trace.jsonl, manifest.json)`` paths for one labelled run."""
    stem = safe_stem(label)
    root = Path(trace_dir)
    return root / f"{stem}.trace.jsonl", root / f"{stem}.manifest.json"


class TraceWriter:
    """Append-only JSONL writer; one instance per run.

    The handle is flushed every ``flush_every`` records (and on
    :meth:`close`), so an interrupted run loses at most the last batch —
    and the final line a crash does tear is tolerated by
    :func:`iter_trace` / :func:`read_trace`.
    """

    def __init__(self, path: Union[str, Path],
                 flush_every: int = DEFAULT_FLUSH_EVERY) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._flush_every = max(1, flush_every)
        self.records_written = 0

    def write(self, record: dict) -> None:
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.records_written += 1
        if self.records_written % self._flush_every == 0:
            self._handle.flush()

    def write_meta(self, label: str, probes: list[str], interval: int) -> None:
        self.write({"t": "meta", "label": label, "probes": probes,
                    "probe_interval": interval})

    def write_sample(self, cycle: int, values: dict) -> None:
        self.write({"t": "sample", "cycle": cycle, "values": values})

    def write_decision(self, record: dict) -> None:
        self.write({"t": "decision", **record})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Dropped-final-line accounting: silent data loss made visible on
#: ``GET /metrics`` (and per-trace via ``iter_trace``'s ``stats`` dict).
TORN_LINES = _metrics.REGISTRY.counter(
    "repro_trace_torn_lines_total",
    "Torn (truncated) final trace lines dropped while reading JSONL traces")


def iter_trace(path: Union[str, Path],
               kind: Optional[str] = None,
               stats: Optional[dict] = None) -> Iterator[dict]:
    """Stream a JSONL trace one record at a time (constant memory).

    Optionally filters to one record ``kind`` (the ``"t"`` field). A
    truncated/partial *final* line — the signature of a run interrupted
    mid-write — is tolerated but **counted**: the drop increments the
    ``repro_trace_torn_lines_total`` metric and, when the caller passes
    a ``stats`` dict, its ``"torn_lines"`` entry — so the data loss is
    visible in ``repro-analyze`` reports and on ``/metrics`` instead of
    silent.  An unparsable line anywhere else means the file is corrupt
    and raises ``json.JSONDecodeError``.
    """
    if stats is not None:
        stats.setdefault("torn_lines", 0)
    with open(path, "r", encoding="utf-8") as handle:
        pending_error: Optional[json.JSONDecodeError] = None
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                # The bad line was *not* the last one: real corruption.
                raise pending_error
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                pending_error = exc
                continue
            if kind is None or record.get("t") == kind:
                yield record
        if pending_error is not None:
            TORN_LINES.inc()
            if stats is not None:
                stats["torn_lines"] += 1


def read_trace(path: Union[str, Path],
               kind: Optional[str] = None) -> list[dict]:
    """Load a JSONL trace, optionally filtered to one record kind.

    Shares :func:`iter_trace`'s tolerance of a torn final line; prefer
    the generator itself for long traces.
    """
    return list(iter_trace(path, kind))


def write_manifest(path: Union[str, Path], manifest: dict) -> str:
    """Write a run manifest as pretty JSON; returns the path written.

    Atomic: the manifest lands in a *uniquely named* temp file first and
    is installed with ``os.replace``.  A fixed temp name would let two
    workers producing the same manifest interleave writes into one temp
    file — and a worker killed mid-write would leave a half-written temp
    for the survivor to install — poisoning the shared sidecar for every
    other worker.  Unique names + replace mean readers only ever see a
    complete manifest, and a kill mid-write leaves the target untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)  # readers see old or new, never torn
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return str(path)
