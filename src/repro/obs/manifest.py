"""Run manifests: what was simulated, under what code, and how fast.

A manifest is a plain JSON-serializable dict built from a finished
:class:`~repro.hierarchy.system.System`. It travels in
``RunResult.extras["manifest"]`` (so cached cells carry their provenance)
and, when tracing, is written next to the trace as
``<stem>.manifest.json``.
"""

from __future__ import annotations

import dataclasses
import subprocess
from pathlib import Path
from typing import Optional

from repro.backends import active_backend_name
from repro.obs.spans import current_traceparent

MANIFEST_SCHEMA = 1

_GIT_SHA: Optional[str] = None
_GIT_SHA_PROBED = False


def git_sha() -> Optional[str]:
    """The repo HEAD at import-tree location, or None outside a checkout.

    Probed once per process (manifests are emitted per cell; the SHA
    cannot change mid-run).
    """
    global _GIT_SHA, _GIT_SHA_PROBED
    if _GIT_SHA_PROBED:
        return _GIT_SHA
    _GIT_SHA_PROBED = True
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5, check=False,
        )
        if out.returncode == 0:
            _GIT_SHA = out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _GIT_SHA = None
    return _GIT_SHA


def config_dict(config) -> dict:
    """A JSON-serializable rendering of a SystemConfig (nested dataclasses
    — DramConfig, DramTiming, SramLevels — flatten to plain dicts)."""
    return dataclasses.asdict(config)


def build_manifest(
    system,
    wall_seconds: float,
    label: Optional[str] = None,
    scale: Optional[str] = None,
    telemetry=None,
) -> dict:
    """Summarize one finished run.

    ``telemetry`` (a :class:`~repro.obs.telemetry.Telemetry`, when the
    run was instrumented) contributes its sampling summary.
    """
    events = system.sim.events_dispatched
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "label": label,
        "scale": scale,
        "policy": system.config.policy,
        "policy_describe": system.msc.policy.describe(),
        "config": config_dict(system.config),
        "git_sha": git_sha(),
        "cycles": system.cycles,
        "events": events,
        "wall_seconds": round(wall_seconds, 6),
        "events_per_sec": (round(events / wall_seconds, 1)
                           if wall_seconds > 0 else 0.0),
        "telemetry": telemetry.summary() if telemetry is not None else None,
    }
    traceparent = current_traceparent()
    if traceparent:
        # Only present for runs executed under a trace context (service
        # jobs): the request's W3C trace id follows the run into its
        # provenance record, closing the request -> cell -> trace loop.
        manifest["traceparent"] = traceparent
    backend = active_backend_name()
    if backend != "python":
        # Provenance only — backends are bit-identical by contract, so
        # the key appears solely when a non-default backend produced the
        # run (same conditional pattern as traceparent; golden
        # comparisons treat it as volatile).
        manifest["backend"] = backend
    return manifest
