"""The probe framework: a sampling hub with bounded in-memory series.

A :class:`Telemetry` hub owns a set of named *probes* — zero-argument
callables returning one scalar — and samples all of them every
``probe_interval`` simulated cycles by scheduling itself on the event
queue. Samples land in per-probe :class:`Series` ring buffers (bounded,
so arbitrarily long runs use constant memory) and, when a sink is
attached, stream to a JSONL trace as they are taken.

Sampling is read-only and self-terminating: the sampler only reschedules
while other events remain in the queue, so an instrumented run drains to
completion exactly like an uninstrumented one, and probe callbacks never
mutate component state — enabling telemetry cannot change ``cycles`` or
any CAS count.

The hub doubles as the *decision observer* for steering policies: each
DAP grant/deny call reports through :meth:`Telemetry.decision`, which
applies a deterministic 1-in-N sampling stride before materializing the
(comparatively expensive) credit snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.event_queue import Simulator
from repro.errors import ConfigError

Probe = Callable[[], float]

DEFAULT_PROBE_INTERVAL = 10_000
DEFAULT_BUFFER_SAMPLES = 4096
DEFAULT_EVENT_SAMPLE = 1
DEFAULT_EVENT_BUFFER = 65_536


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything a run needs to know to instrument itself.

    Picklable (so cells can carry it across process-pool workers) and
    deliberately *not* part of any cell cache key: telemetry never
    changes simulation results, only observes them.
    """

    probe_interval: int = DEFAULT_PROBE_INTERVAL  # cycles between samples
    trace_dir: Optional[str] = None   # stream JSONL here (None = memory only)
    events: bool = True               # record per-decision DAP events
    event_sample: int = DEFAULT_EVENT_SAMPLE  # keep every Nth decision
    buffer_samples: int = DEFAULT_BUFFER_SAMPLES  # ring bound per series

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ConfigError(
                f"probe_interval must be positive, got {self.probe_interval}")
        if self.event_sample <= 0:
            raise ConfigError(
                f"event_sample must be positive, got {self.event_sample}")
        if self.buffer_samples <= 0:
            raise ConfigError(
                f"buffer_samples must be positive, got {self.buffer_samples}")


class Series:
    """One probe's bounded time series of ``(cycle, value)`` samples."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, maxlen: int = DEFAULT_BUFFER_SAMPLES) -> None:
        self.name = name
        self._samples: deque[tuple[int, float]] = deque(maxlen=maxlen)

    def append(self, cycle: int, value: float) -> None:
        self._samples.append((cycle, value))

    def cycles(self) -> list[int]:
        return [cycle for cycle, _ in self._samples]

    def values(self) -> list[float]:
        return [value for _, value in self._samples]

    def samples(self) -> list[tuple[int, float]]:
        return list(self._samples)

    def last(self) -> Optional[tuple[int, float]]:
        return self._samples[-1] if self._samples else None

    @property
    def maxlen(self) -> int:
        return self._samples.maxlen or 0

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, n={len(self)})"


class Telemetry:
    """Samples registered probes on a simulated-cycle cadence.

    Parameters
    ----------
    sim:
        The simulator whose event queue drives sampling.
    interval:
        Cycles between samples (the ``--probe-interval`` knob).
    buffer_samples:
        Ring-buffer bound of every series.
    sink:
        Optional :class:`~repro.obs.trace.TraceWriter`; samples and
        decision events stream to it as they occur.
    events / event_sample:
        Whether to record per-decision events, and the 1-in-N stride.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: int = DEFAULT_PROBE_INTERVAL,
        buffer_samples: int = DEFAULT_BUFFER_SAMPLES,
        sink=None,
        events: bool = True,
        event_sample: int = DEFAULT_EVENT_SAMPLE,
        event_buffer: int = DEFAULT_EVENT_BUFFER,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.buffer_samples = buffer_samples
        self.sink = sink
        self.events_enabled = events
        self.event_sample = max(1, event_sample)
        self._probes: dict[str, Probe] = {}
        self._series: dict[str, Series] = {}
        # (name, probe, series.append) triples, rebuilt on registration:
        # the sampler walks this flat plan instead of re-resolving the
        # probe and series dicts every interval.
        self._plan: Optional[list[tuple[str, Probe, Callable]]] = None
        self.decisions: deque[dict] = deque(maxlen=event_buffer)
        self.samples_taken = 0
        self.decisions_seen = 0
        self.decisions_recorded = 0
        self._started = False

    @classmethod
    def from_config(cls, sim: Simulator, config: TelemetryConfig,
                    sink=None) -> "Telemetry":
        return cls(
            sim, interval=config.probe_interval,
            buffer_samples=config.buffer_samples, sink=sink,
            events=config.events, event_sample=config.event_sample,
        )

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def register(self, name: str, probe: Probe) -> None:
        """Register a named probe; duplicate names are rejected."""
        if name in self._probes:
            raise ConfigError(f"probe {name!r} already registered")
        self._probes[name] = probe
        self._series[name] = Series(name, maxlen=self.buffer_samples)
        self._plan = None

    def probe_names(self) -> list[str]:
        return list(self._probes)

    def series(self, name: str) -> Series:
        return self._series[name]

    def all_series(self) -> dict[str, Series]:
        return dict(self._series)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first sample one interval from now."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.interval, self._sample)

    def _sample(self) -> None:
        plan = self._plan
        if plan is None:
            plan = self._plan = [
                (name, probe, self._series[name].append)
                for name, probe in self._probes.items()
            ]
        sim = self.sim
        now = sim.now
        if self.sink is not None:
            values: dict[str, float] = {}
            for name, probe, append in plan:
                value = float(probe())
                values[name] = value
                append(now, value)
            self.sink.write_sample(now, values)
        else:
            for _name, probe, append in plan:
                append(now, float(probe()))
        self.samples_taken += 1
        # Self-terminating: only keep sampling while the simulation still
        # has work queued; an idle queue means the run is over.
        if sim.pending:
            sim.schedule(self.interval, self._sample)

    # ------------------------------------------------------------------
    # Decision observer (called by steering-policy adapters)
    # ------------------------------------------------------------------
    def decision(self, now: int, line: int, technique: str, granted: bool,
                 engine=None) -> None:
        """Record one steering decision, subject to the sampling stride.

        ``engine`` (when given) supplies ``credit_state()`` — snapshotted
        only for the decisions that survive the stride, so full-rate runs
        stay cheap even at ``event_sample=100``.
        """
        if not self.events_enabled:
            return
        self.decisions_seen += 1
        if (self.decisions_seen - 1) % self.event_sample:
            return
        credits = (engine.credit_state()
                   if engine is not None and hasattr(engine, "credit_state")
                   else {})
        record = {
            "cycle": now,
            "line": line,
            "technique": technique,
            "granted": granted,
            "credits": credits,
        }
        self.decisions.append(record)
        self.decisions_recorded += 1
        if self.sink is not None:
            self.sink.write_decision(record)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Manifest-ready accounting of what was observed."""
        return {
            "probe_interval": self.interval,
            "probes": len(self._probes),
            "samples": self.samples_taken,
            "decisions_seen": self.decisions_seen,
            "decisions_recorded": self.decisions_recorded,
            "event_sample": self.event_sample,
        }

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
