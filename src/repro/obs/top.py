"""``repro top`` / ``repro metrics`` — terminal views over a live service.

``repro top`` is a small, dependency-free ANSI dashboard: it polls a
running service's ``GET /metrics`` (parsed with this package's own
exposition parser — the same one CI lints with) and ``GET /stats``,
and redraws queue depth, worker liveness, cache-hit ratio, latency
quantiles, and per-route HTTP traffic every ``--interval`` seconds.

``repro metrics`` is the scriptable sibling: dump the raw exposition
text, a JSON ``--snapshot`` of it, or ``--lint`` it (non-zero exit on
any format violation) — which is exactly what the CI service job runs
against the live server.

Both talk plain HTTP via ``urllib``; neither imports anything outside
the stdlib and :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.obs.metrics import (
    Sample,
    histogram_quantile,
    lint_exposition,
    parse_exposition,
)

DEFAULT_URL = "http://127.0.0.1:8321"
DEFAULT_INTERVAL = 2.0

_BOLD, _DIM, _RESET = "\x1b[1m", "\x1b[2m", "\x1b[0m"
_CLEAR = "\x1b[2J\x1b[H"


def _fetch(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def scrape(base_url: str) -> tuple[list[Sample], dict]:
    """One poll: parsed ``/metrics`` samples + the ``/stats`` JSON."""
    samples = parse_exposition(_fetch(base_url.rstrip("/") + "/metrics"))
    stats = json.loads(_fetch(base_url.rstrip("/") + "/stats"))
    return samples, stats


# ----------------------------------------------------------------------
# Sample querying (operates on parsed exposition, not the local registry,
# so `repro top` observes any service process, not just its own)
# ----------------------------------------------------------------------

def sample_value(samples: Sequence[Sample], name: str,
                 **labels) -> float:
    """Sum of all samples matching ``name`` and the given label subset."""
    total = 0.0
    for s in samples:
        if s.name != name:
            continue
        if all(s.labels.get(k) == v for k, v in labels.items()):
            total += s.value
    return total


def quantile(samples: Sequence[Sample], base: str, q: float,
             **labels) -> Optional[float]:
    """A quantile estimate for one histogram family (labels summed)."""
    buckets: dict[str, float] = {}
    for s in samples:
        if s.name != f"{base}_bucket":
            continue
        if not all(s.labels.get(k) == v for k, v in labels.items()):
            continue
        le = s.labels.get("le", "+Inf")
        buckets[le] = buckets.get(le, 0.0) + s.value
    count = sample_value(samples, f"{base}_count", **labels)
    if not buckets or count <= 0:
        return None
    return histogram_quantile(buckets, count, q)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"


def _route_rows(samples: Sequence[Sample], limit: int = 8) -> list[tuple]:
    by_route: dict[tuple[str, str], float] = {}
    for s in samples:
        if s.name == "repro_http_requests_total":
            key = (s.labels.get("method", "?"), s.labels.get("route", "?"))
            by_route[key] = by_route.get(key, 0.0) + s.value
    rows = []
    for (method, route), count in sorted(
            by_route.items(), key=lambda kv: -kv[1])[:limit]:
        p95 = quantile(samples, "repro_http_request_seconds", 0.95,
                       method=method, route=route)
        rows.append((method, route, count, p95))
    return rows


def render(base_url: str, samples: Sequence[Sample], stats: dict,
           color: bool = True) -> str:
    """One full dashboard frame (no cursor control; caller clears)."""
    bold = _BOLD if color else ""
    dim = _DIM if color else ""
    reset = _RESET if color else ""
    jobs = stats.get("jobs", {})
    counters = stats.get("counters", {})
    orphans = (counters.get("orphans_requeued", 0)
               + counters.get("orphans_failed", 0))
    now = time.strftime("%Y-%m-%d %H:%M:%S")
    lines = [
        f"{bold}repro top{reset} {dim}{base_url}   {now}{reset}",
        "",
        (f"{bold}jobs{reset}     "
         + "   ".join(f"{state} {_fmt_count(jobs.get(state, 0))}"
                      for state in ("queued", "running", "succeeded",
                                    "failed", "cancelled"))),
        (f"{bold}workers{reset}  alive "
         f"{_fmt_count(sample_value(samples, 'repro_workers_alive'))}"
         f"   http in-flight "
         f"{_fmt_count(sample_value(samples, 'repro_http_requests_in_flight'))}"
         f"   sse streams "
         f"{_fmt_count(sample_value(samples, 'repro_sse_streams_active'))}"
         f"   stalest beat "
         f"{_fmt_seconds(stats.get('stalest_heartbeat_seconds'))}"),
        (f"{bold}cells{reset}    executed "
         f"{_fmt_count(stats.get('cells_executed', 0))}"
         f"   cached {_fmt_count(stats.get('cells_cached', 0))}"
         f"   hit-ratio {stats.get('cache_hit_ratio', 0.0):.1%}"
         f"   events/sec {_fmt_count(stats.get('events_per_sec', 0.0))}"),
        (f"{bold}latency{reset}  claim p50 "
         f"{_fmt_seconds(quantile(samples, 'repro_claim_latency_seconds', 0.5))}"
         f" p95 "
         f"{_fmt_seconds(quantile(samples, 'repro_claim_latency_seconds', 0.95))}"
         f"   cell p50 "
         f"{_fmt_seconds(quantile(samples, 'repro_cell_wall_seconds', 0.5))}"
         f" p95 "
         f"{_fmt_seconds(quantile(samples, 'repro_cell_wall_seconds', 0.95))}"),
        (f"{bold}counters{reset} submitted "
         f"{_fmt_count(counters.get('jobs_submitted', 0))}"
         f"   deduped {_fmt_count(counters.get('jobs_deduped', 0))}"
         f"   retries {_fmt_count(counters.get('job_retries', 0))}"
         f"   orphans {_fmt_count(orphans)}"
         f"   torn lines {_fmt_count(counters.get('torn_trace_lines', 0))}"),
        "",
        f"{bold}{'METHOD':<7} {'ROUTE':<22} {'COUNT':>8} {'P95':>9}{reset}",
    ]
    for method, route, count, p95 in _route_rows(samples):
        lines.append(f"{method:<7} {route:<22} {_fmt_count(count):>8}"
                     f" {_fmt_seconds(p95):>9}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def top_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live terminal dashboard over a running repro service.")
    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default: {DEFAULT_URL})")
    parser.add_argument("--interval", type=float, default=DEFAULT_INTERVAL,
                        metavar="SECONDS",
                        help=f"refresh cadence (default: {DEFAULT_INTERVAL})")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit")
    parser.add_argument("--no-color", action="store_true",
                        help="plain output (no ANSI escapes)")
    args = parser.parse_args(argv)
    color = not args.no_color and sys.stdout.isatty()
    while True:
        try:
            samples, stats = scrape(args.url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro top: cannot scrape {args.url}: {exc}",
                  file=sys.stderr)
            if args.once:
                return 1
            time.sleep(max(0.1, args.interval))
            continue
        frame = render(args.url, samples, stats, color=color)
        if args.once:
            print(frame)
            return 0
        sys.stdout.write((_CLEAR if color else "\n") + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


def metrics_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Fetch, snapshot, or lint a service's /metrics "
                    "exposition.")
    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default: {DEFAULT_URL})")
    parser.add_argument("--snapshot", action="store_true",
                        help="emit the scrape as JSON samples instead of "
                             "raw exposition text")
    parser.add_argument("--lint", action="store_true",
                        help="validate the exposition format; non-zero "
                             "exit on problems")
    parser.add_argument("--record", default=None, metavar="FILE",
                        help="append the scrape to a JSONL time-series "
                             "store (feeds 'repro dash' sparklines)")
    args = parser.parse_args(argv)
    try:
        text = _fetch(args.url.rstrip("/") + "/metrics")
    except (urllib.error.URLError, OSError) as exc:
        print(f"repro metrics: cannot scrape {args.url}: {exc}",
              file=sys.stderr)
        return 1
    if args.record:
        from repro.obs.tsdb import TimeSeriesStore, samples_row

        store = TimeSeriesStore(args.record)
        store.append("metrics", samples_row(parse_exposition(text)))
        print(f"repro metrics: scrape appended to {args.record} "
              f"({len(store)} rows)", file=sys.stderr)
    if args.lint:
        problems = lint_exposition(text)
        for problem in problems:
            print(f"repro metrics: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"ok: {len(parse_exposition(text))} samples, "
              "exposition format valid")
        return 0
    if args.snapshot:
        samples = parse_exposition(text)
        grouped: dict[str, list] = {}
        for s in samples:
            grouped.setdefault(s.name, []).append(
                {"labels": s.labels, "value": s.value})
        print(json.dumps(grouped, indent=2, sort_keys=True))
        return 0
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(top_main())
