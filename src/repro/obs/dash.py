"""``repro dash`` — one offline HTML performance observatory.

Collects everything the repo already records about its own performance —
the committed ``BENCH_<n>.json`` trajectory, the latest collapsed-stack
profile (rendered as a flamegraph), frame-level deltas vs the previous
profile, metrics history from the :mod:`repro.obs.tsdb` store, and the
validation verdict summary — and renders a single self-contained HTML
file: no scripts fetched, no fonts, no network at all.  The page is
safe to open from a CI artifact or commit to a branch.

Chart styling follows the repo's data-viz conventions: one y-axis per
chart, a single categorical hue for the single series, ink-token text,
hairline grid, and light/dark via CSS custom properties keyed off
``prefers-color-scheme``.
"""

from __future__ import annotations

import argparse
import html
import json
import re
import sys
from pathlib import Path
from typing import Optional

from repro.obs.bench import load_bench
from repro.obs.flame import render_svg
from repro.obs.profdiff import diff_profiles
from repro.obs.profiler import Profile
from repro.obs.tsdb import TimeSeriesStore

__all__ = ["gather_dash_data", "render_dash", "dash_main"]

_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json$")
_PROFILE_NAME = re.compile(r"BENCH_(\d+)\.collapsed$")
MAX_SPARKLINES = 12


# ----------------------------------------------------------------------
# Data gathering
# ----------------------------------------------------------------------

def _bench_trajectory(repo: Path) -> list:
    """``[(n, record), ...]`` for every committed BENCH record, by n."""
    records = []
    for path in repo.glob("BENCH_*.json"):
        match = _BENCH_NAME.match(path.name)
        if not match:
            continue
        try:
            records.append((int(match.group(1)), load_bench(path)))
        except Exception:
            continue  # an unreadable record should not kill the dash
    return sorted(records)


def _committed_profiles(repo: Path) -> list:
    """``[(n, path), ...]`` committed baseline profiles, by milestone."""
    found = []
    for path in (repo / "profiles").glob("BENCH_*.collapsed"):
        match = _PROFILE_NAME.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def _read_profile(path: Optional[Path]) -> Optional[Profile]:
    if path is None:
        return None
    try:
        return Profile.parse(path.read_text(encoding="utf-8"))
    except OSError:
        return None


def gather_dash_data(repo: Path,
                     profile_path: Optional[Path] = None,
                     baseline_path: Optional[Path] = None,
                     tsdb_path: Optional[Path] = None,
                     verdicts_path: Optional[Path] = None) -> dict:
    """Everything :func:`render_dash` needs, resolved from the repo.

    Defaults: the profile is the highest-numbered committed
    ``profiles/BENCH_<n>.collapsed``, the baseline the one before it,
    verdicts come from ``VERDICTS.json``, and the tsdb (optional) from
    ``--tsdb``.
    """
    committed = _committed_profiles(repo)
    if profile_path is None and committed:
        profile_path = committed[-1][1]
    if baseline_path is None and len(committed) > 1:
        baseline_path = committed[-2][1]
    if verdicts_path is None:
        candidate = repo / "VERDICTS.json"
        verdicts_path = candidate if candidate.is_file() else None
    verdicts = None
    if verdicts_path is not None:
        try:
            verdicts = json.loads(verdicts_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            verdicts = None
    return {
        "repo": repo,
        "bench": _bench_trajectory(repo),
        "profile_path": profile_path,
        "profile": _read_profile(profile_path),
        "baseline_path": baseline_path,
        "baseline": _read_profile(baseline_path),
        "tsdb": TimeSeriesStore(tsdb_path) if tsdb_path else None,
        "verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# SVG chart helpers (inline, dependency-free)
# ----------------------------------------------------------------------

def _line_chart(points: list, width: int = 560, height: int = 220) -> str:
    """Single-series line chart: ``points = [(label, value), ...]``."""
    if not points:
        return '<p class="empty">no BENCH records found</p>'
    pad_l, pad_r, pad_t, pad_b = 64, 16, 12, 28
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    top = max(value for _, value in points) * 1.1 or 1.0

    def x_of(i: int) -> float:
        if len(points) == 1:
            return pad_l + plot_w / 2
        return pad_l + i * plot_w / (len(points) - 1)

    def y_of(value: float) -> float:
        return pad_t + plot_h * (1 - value / top)

    grid, ticks = [], []
    for step in range(5):
        value = top * step / 4
        y = y_of(value)
        grid.append(f'<line class="grid" x1="{pad_l}" y1="{y:.1f}" '
                    f'x2="{width - pad_r}" y2="{y:.1f}"/>')
        ticks.append(f'<text class="tick" x="{pad_l - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{value:,.0f}</text>')

    coords = [(x_of(i), y_of(value)) for i, (_, value) in enumerate(points)]
    path = " ".join(f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                    for i, (x, y) in enumerate(coords))
    marks, labels = [], []
    for (x, y), (label, value) in zip(coords, points):
        marks.append(f'<circle class="dot" cx="{x:.1f}" cy="{y:.1f}" r="4">'
                     f'<title>{html.escape(label)}: {value:,.0f} events/s'
                     f'</title></circle>')
        labels.append(f'<text class="tick" x="{x:.1f}" '
                      f'y="{height - 8}" text-anchor="middle">'
                      f'{html.escape(label)}</text>')
        labels.append(f'<text class="value" x="{x:.1f}" y="{y - 9:.1f}" '
                      f'text-anchor="middle">{value:,.0f}</text>')
    return (f'<svg class="chart" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="events per second by BENCH milestone">'
            f'{"".join(grid)}{"".join(ticks)}'
            f'<path class="line" d="{path}"/>'
            f'{"".join(marks)}{"".join(labels)}</svg>')


def _sparkline(values: list, width: int = 140, height: int = 34) -> str:
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    pad = 3
    coords = []
    for i, value in enumerate(values):
        x = pad + i * (width - 2 * pad) / (len(values) - 1)
        y = pad + (height - 2 * pad) * (1 - (value - low) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline class="line" points="{" ".join(coords)}"/></svg>')


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.2f}"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------

def _tiles(data: dict) -> str:
    bench = data["bench"]
    tiles = []
    if bench:
        n, latest = bench[-1]
        tiles.append(("events / second", f"{latest['events_per_sec']:,.0f}",
                      f"BENCH_{n} · scale {latest.get('scale', '?')}", ""))
        if len(bench) > 1:
            prev_n, prev = bench[-2]
            ratio = latest["events_per_sec"] / prev["events_per_sec"] - 1
            klass = "delta-good" if ratio >= 0 else "delta-bad"
            arrow = "▲" if ratio >= 0 else "▼"
            tiles.append((f"vs BENCH_{prev_n}",
                          f"{arrow} {abs(ratio) * 100:.1f}%",
                          f"{prev['events_per_sec']:,.0f} → "
                          f"{latest['events_per_sec']:,.0f}", klass))
        tiles.append(("events simulated", f"{latest['total_events']:,}",
                      f"{latest['total_wall_seconds']:.1f}s of simulation", ""))
    verdicts = data["verdicts"]
    if verdicts:
        summary = verdicts.get("summary", {})
        passed = summary.get("passed", 0)
        claims = summary.get("claims", 0)
        klass = "delta-good" if passed == claims and claims else "delta-bad"
        tiles.append(("paper claims validated", f"{passed}/{claims}",
                      f"{summary.get('experiments', 0)} experiments · "
                      f"scale {verdicts.get('scale', '?')}", klass))
    cells = []
    for label, value, sub, klass in tiles:
        cells.append(
            f'<div class="tile"><div class="tile-label">{html.escape(label)}'
            f'</div><div class="tile-value {klass}">{html.escape(value)}'
            f'</div><div class="tile-sub">{html.escape(sub)}</div></div>')
    return '<div class="tiles">' + "".join(cells) + "</div>"


def _bench_section(data: dict) -> str:
    points = [(f"BENCH_{n}", record["events_per_sec"])
              for n, record in data["bench"]]
    return (f'<section><h2>Throughput trajectory</h2>'
            f'<p class="note">events/second per committed BENCH milestone '
            f'(simulation wall time, parallelism cannot inflate it)</p>'
            f'{_line_chart(points)}</section>')


def _flame_section(data: dict) -> str:
    profile = data["profile"]
    if profile is None:
        return ('<section><h2>Flamegraph</h2><p class="empty">no profile '
                'found — run <code>repro profile run</code> or pass '
                '<code>--profile</code></p></section>')
    name = data["profile_path"].name if data["profile_path"] else "profile"
    svg = render_svg(profile, title=name, width=1104)
    return (f'<section><h2>Flamegraph</h2>'
            f'<p class="note">latest capture: <code>{html.escape(name)}'
            f'</code> · click a frame to zoom</p>'
            f'<div class="flame">{svg}</div></section>')


def _diff_section(data: dict, top: int = 10) -> str:
    profile, baseline = data["profile"], data["baseline"]
    if profile is None or baseline is None:
        return ""
    diff = diff_profiles(baseline, profile)
    base_name = data["baseline_path"].name if data["baseline_path"] else "?"
    rows = []
    for delta in diff.top(top):
        if delta.status == "~" and delta.delta_pp == 0.0:
            continue
        icon = {"grew": "▲", "new": "▲", "shrank": "▼", "gone": "▼"}.get(
            delta.status, "·")
        klass = {"grew": "delta-bad", "new": "delta-bad",
                 "shrank": "delta-good", "gone": "delta-good"}.get(
            delta.status, "")
        rows.append(
            f'<tr><td class="num {klass}">{icon} {delta.delta_pp:+.2f}pp</td>'
            f'<td class="num">{delta.frac_a * 100:.2f}%</td>'
            f'<td class="num">{delta.frac_b * 100:.2f}%</td>'
            f'<td>{html.escape(delta.status)}</td>'
            f'<td class="sym">{html.escape(delta.symbol)}</td></tr>')
    if not rows:
        body = '<p class="empty">no frame-level drift vs the baseline</p>'
    else:
        body = ('<table><thead><tr><th>Δ self</th><th>before</th>'
                '<th>after</th><th>status</th><th>symbol</th></tr></thead>'
                f'<tbody>{"".join(rows)}</tbody></table>')
    return (f'<section><h2>Top profile deltas</h2>'
            f'<p class="note">self-time share vs '
            f'<code>{html.escape(base_name)}</code> — where a regression '
            f'(▲, more share) or a win (▼) actually lives</p>'
            f'{body}</section>')


def _spark_section(data: dict) -> str:
    store = data["tsdb"]
    if store is None:
        return ""
    by_key: dict = {}
    for row in store.rows():
        for key, value in row.get("data", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                by_key.setdefault(key, []).append(value)
    keys = sorted(key for key, values in by_key.items() if len(values) >= 2)
    if not keys:
        return ('<section><h2>Metrics history</h2><p class="empty">tsdb has '
                'fewer than two samples per series</p></section>')
    cards = []
    for key in keys[:MAX_SPARKLINES]:
        values = by_key[key]
        cards.append(
            f'<div class="spark-card"><div class="spark-name">'
            f'{html.escape(key)}</div>{_sparkline(values)}'
            f'<div class="spark-last">{_fmt(values[-1])}</div></div>')
    more = ("" if len(keys) <= MAX_SPARKLINES else
            f'<p class="note">{len(keys) - MAX_SPARKLINES} more series in '
            f'the store</p>')
    return (f'<section><h2>Metrics history</h2>'
            f'<p class="note">{len(store)} rows in '
            f'<code>{html.escape(str(store.path))}</code></p>'
            f'<div class="sparks">{"".join(cards)}</div>{more}</section>')


def _verdict_section(data: dict) -> str:
    verdicts = data["verdicts"]
    if not verdicts:
        return ""
    rows = []
    for name, entry in sorted(verdicts.get("experiments", {}).items()):
        claims = entry.get("claims", [])
        passed = sum(1 for claim in claims if claim.get("status") == "pass")
        ok = passed == len(claims)
        mark = "✓" if ok else "✗"
        klass = "delta-good" if ok else "delta-bad"
        rows.append(f'<tr><td>{html.escape(name)}</td>'
                    f'<td>{html.escape(entry.get("title", ""))}</td>'
                    f'<td class="num {klass}">{mark} {passed}/{len(claims)}'
                    f'</td></tr>')
    return ('<section><h2>Validation verdicts</h2>'
            '<p class="note">paper-shape claims per experiment '
            '(<code>repro validate</code>)</p>'
            '<table><thead><tr><th>experiment</th><th>title</th>'
            '<th>claims</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table></section>')


# ----------------------------------------------------------------------
# Page
# ----------------------------------------------------------------------

_CSS = """
  :root { color-scheme: light dark; }
  .dash {
    --page: #f9f9f7; --surface-1: #fcfcfb;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --text-muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
    --series-1: #2a78d6; --good: #006300; --bad: #d03b3b;
    --border: rgba(11,11,11,0.10);
  }
  @media (prefers-color-scheme: dark) {
    .dash {
      --page: #0d0d0d; --surface-1: #1a1a19;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --text-muted: #898781; --grid: #2c2c2a; --axis: #383835;
      --series-1: #3987e5; --good: #0ca30c; --bad: #e66767;
      --border: rgba(255,255,255,0.10);
    }
  }
  body.dash {
    margin: 0; padding: 28px; background: var(--page);
    color: var(--text-primary);
    font: 14px system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  .dash h1 { font-size: 20px; margin: 0 0 2px; }
  .dash h2 { font-size: 15px; margin: 0 0 4px; }
  .dash .sub, .dash .note { color: var(--text-secondary); margin: 0 0 10px; }
  .dash .empty { color: var(--text-muted); }
  .dash section {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 16px; margin: 16px 0; overflow-x: auto;
  }
  .dash .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 16px; }
  .dash .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 160px;
  }
  .dash .tile-label { color: var(--text-secondary); font-size: 12px; }
  .dash .tile-value { font-size: 26px; margin: 2px 0; }
  .dash .tile-sub { color: var(--text-muted); font-size: 12px; }
  .dash .delta-good { color: var(--good); }
  .dash .delta-bad { color: var(--bad); }
  .dash svg.chart .grid { stroke: var(--grid); stroke-width: 1; }
  .dash svg.chart .tick { fill: var(--text-muted); font-size: 11px;
                          font-variant-numeric: tabular-nums; }
  .dash svg.chart .value { fill: var(--text-secondary); font-size: 11px;
                           font-variant-numeric: tabular-nums; }
  .dash svg.chart .line { stroke: var(--series-1); stroke-width: 2;
                          fill: none; }
  .dash svg.chart .dot { fill: var(--series-1); stroke: var(--surface-1);
                         stroke-width: 2; }
  .dash .flame { overflow-x: auto; }
  .dash table { border-collapse: collapse; width: 100%; font-size: 13px; }
  .dash th { text-align: left; color: var(--text-secondary);
             font-weight: 600; border-bottom: 1px solid var(--axis); }
  .dash th, .dash td { padding: 4px 10px 4px 0; }
  .dash td { border-bottom: 1px solid var(--grid); }
  .dash td.num { font-variant-numeric: tabular-nums; white-space: nowrap; }
  .dash td.sym, .dash code {
    font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
    font-size: 12px;
  }
  .dash .sparks { display: flex; flex-wrap: wrap; gap: 12px; }
  .dash .spark-card {
    border: 1px solid var(--border); border-radius: 6px; padding: 8px 10px;
  }
  .dash .spark-name { color: var(--text-secondary); font-size: 11px;
    font-family: ui-monospace, SFMono-Regular, Menlo, monospace; }
  .dash svg.spark .line { stroke: var(--series-1); stroke-width: 1.5;
                          fill: none; }
  .dash .spark-last { font-size: 13px;
                      font-variant-numeric: tabular-nums; }
"""


def render_dash(data: dict, title: str = "repro performance observatory",
                ) -> str:
    """The full self-contained dash page."""
    bench = data["bench"]
    sub_bits = []
    if bench:
        sub_bits.append(f"{len(bench)} BENCH milestones")
        sha = bench[-1][1].get("git_sha", "")
        if sha:
            sub_bits.append(f"latest at {sha[:12]}")
    sub = " · ".join(sub_bits) or "no committed BENCH records"
    sections = [
        _tiles(data),
        _bench_section(data),
        _flame_section(data),
        _diff_section(data),
        _spark_section(data),
        _verdict_section(data),
    ]
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="dash">
<h1>{html.escape(title)}</h1>
<p class="sub">{html.escape(sub)}</p>
{"".join(section for section in sections if section)}
</body>
</html>
"""


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def dash_main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dash",
        description="Render the offline HTML performance observatory.")
    parser.add_argument("--repo", default=".",
                        help="repo root holding BENCH_*.json (default: .)")
    parser.add_argument("--out", default="dash.html",
                        help="output HTML path (default: dash.html)")
    parser.add_argument("--profile", default=None,
                        help="collapsed profile to render (default: highest "
                             "committed profiles/BENCH_<n>.collapsed)")
    parser.add_argument("--profile-baseline", default=None,
                        help="baseline profile for the delta table "
                             "(default: previous committed profile)")
    parser.add_argument("--tsdb", default=None,
                        help="JSONL tsdb file for metrics sparklines")
    parser.add_argument("--verdicts", default=None,
                        help="validation verdicts JSON "
                             "(default: <repo>/VERDICTS.json)")
    parser.add_argument("--title", default="repro performance observatory")
    args = parser.parse_args(argv)

    data = gather_dash_data(
        Path(args.repo),
        profile_path=Path(args.profile) if args.profile else None,
        baseline_path=(Path(args.profile_baseline)
                       if args.profile_baseline else None),
        tsdb_path=Path(args.tsdb) if args.tsdb else None,
        verdicts_path=Path(args.verdicts) if args.verdicts else None,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dash(data, title=args.title), encoding="utf-8")
    parts = [f"{len(data['bench'])} BENCH records"]
    if data["profile"] is not None:
        parts.append(f"flamegraph from {data['profile_path'].name}")
    if data["baseline"] is not None:
        parts.append(f"deltas vs {data['baseline_path'].name}")
    if data["tsdb"] is not None:
        parts.append(f"{len(data['tsdb'])} tsdb rows")
    print(f"wrote {out} ({', '.join(parts)})")
    return 0


if __name__ == "__main__":
    sys.exit(dash_main())
