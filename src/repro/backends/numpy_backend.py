"""Vectorized trace materialization and batched warmup (numpy).

Entropy stays in CPython: the RNG draw sequence is produced by
:func:`~repro.workloads.synthetic.trace_columns` /
:func:`~repro.workloads.synthetic.warm_columns` on the exact
``random.Random`` state the generators use, so the random stream — and
therefore the trace SHA-256 and every simulated result — is
byte-identical to the python backend.  numpy only does the entropy-free
tail:

- traces: ``line = base + rel`` offsetting and the ``draw < wf`` write
  classification in one vector op each, then one ``zip`` into the tuple
  list the cores consume (``int64.tolist()`` round-trips to exact
  Python ints);
- warmup: the warm set's contiguous ranges become ``arange`` columns,
  grouped into per-sector ``(first line, valid mask, dirty mask)``
  triples with ``reduceat`` and fed to the controller's batched
  ``warm_sectors`` — per-line Python work collapses to per-4KB-sector
  work.  Controllers without ``warm_sectors`` (Alloy, eDRAM) fall back
  to the streaming ``warm_many`` path.

numpy itself is imported lazily at construction, so this module is
importable (e.g. by the slots lint) without the ``[fast]`` extra.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import SimBackend, TraceStore
from repro.errors import ConfigError
from repro.workloads.mixes import Mix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import (
    SECTOR_LINES,
    WorkloadProfile,
    core_base_line,
    trace_columns,
    warm_columns,
)


class NumpyBackend(SimBackend):
    """Vectorized materialization; bit-identical to :class:`PythonBackend`."""

    __slots__ = ("np",)

    name = "numpy"

    def __init__(self, store: Optional[TraceStore] = None) -> None:
        try:
            import numpy
        except ImportError as exc:
            raise ConfigError(
                "the numpy backend needs numpy (install the [fast] extra); "
                "use --backend auto to fall back to the python backend"
            ) from exc
        super().__init__(store)
        self.np = numpy

    # -- traces --------------------------------------------------------
    def _build_trace(self, profile: WorkloadProfile, num_refs: int,
                     base_line: int, scale: float, seed: int) -> list:
        np = self.np
        gaps, draws, rels = trace_columns(profile, num_refs, scale=scale,
                                          seed=seed)
        lines = np.asarray(rels, dtype=np.int64)
        if base_line:
            lines += base_line
        writes = np.asarray(draws) < profile.write_fraction
        return list(zip(gaps, writes.tolist(), lines.tolist()))

    # -- warmup --------------------------------------------------------
    def _warm_arrays(self, profile: WorkloadProfile, scale: float,
                     seed: int):
        """Memoized base-0 warm columns: ``(lines int64, dirty bool)``."""
        np = self.np

        def build():
            spans, (sparse_base, sparse_regions), draws = warm_columns(
                profile, scale=scale, seed=seed)
            parts = [np.arange(start, stop, dtype=np.int64)
                     for start, stop in spans]
            if sparse_regions:
                parts.append(sparse_base + SECTOR_LINES *
                             np.arange(sparse_regions, dtype=np.int64))
            lines = (np.concatenate(parts) if parts
                     else np.zeros(0, dtype=np.int64))
            dirty = np.asarray(draws) < profile.write_fraction
            return lines, dirty

        return self.store.table(("warm", profile.name, scale, seed), build,
                                cost=lambda entry: int(entry[0].size))

    def _warm_apply(self, msc, lines, dirty) -> int:
        """Install ``(lines, dirty)`` columns; batched when the
        controller groups blocks into <=64-line sectors."""
        np = self.np
        if lines.size == 0:
            return 0
        warm_sectors = getattr(msc, "warm_sectors", None)
        bps = getattr(getattr(msc, "array", None), "blocks_per_sector", 0)
        if warm_sectors is None or not 0 < bps <= 64:
            return msc.warm_many(zip(lines.tolist(), dirty.tolist()))
        sids = lines // bps
        starts = np.flatnonzero(
            np.concatenate((np.ones(1, dtype=bool), sids[1:] != sids[:-1])))
        bits = np.left_shift(np.uint64(1), (lines % bps).astype(np.uint64))
        valid = np.bitwise_or.reduceat(bits, starts)
        dirty_masks = np.bitwise_or.reduceat(
            np.where(dirty, bits, np.uint64(0)), starts)
        return warm_sectors(zip(lines[starts].tolist(), valid.tolist(),
                                dirty_masks.tolist()))

    def _warm_core(self, msc, profile: WorkloadProfile, scale: float,
                   seed: int, base_line: int) -> int:
        lines, dirty = self._warm_arrays(profile, scale, seed)
        if base_line and lines.size:
            lines = lines + base_line  # copy: the memoized columns stay base-0
        return self._warm_apply(msc, lines, dirty)

    def warm_mix(self, msc, mix: Mix, scale: float) -> int:
        total = 0
        for core_id, member in enumerate(mix.members):
            total += self._warm_core(msc, get_profile(member), scale,
                                     core_id, core_base_line(core_id))
        return total

    def warm_solo(self, msc, profile: WorkloadProfile, scale: float,
                  seed: int = 0) -> int:
        return self._warm_core(msc, profile, scale, seed, 0)
