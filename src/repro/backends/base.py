"""Backend base class and the intra-run materialized-trace store.

A *backend* owns the two synthesis-heavy, order-unobservable stages of a
simulation cell — trace materialization and warmup installation — behind
a contract of **bit-identical results**: every backend must produce the
exact tuple stream :func:`repro.workloads.synthetic.generate_trace`
yields and leave the memory-side cache in the exact state
:func:`~repro.workloads.synthetic.warm_lines` would, entry for entry.
The event loop itself is backend-independent (event ordering is
observable; it cannot be batched without changing results).

Backends share a :class:`TraceStore`: a content-addressed in-process
memo of materialized traces, so the many cells that replay the same
(workload, seed) pair within one invocation — the baseline/dap cell
pairs of a sweep, alone-IPC references that share core 0's trace —
generate each trace once and share the list by reference.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.workloads.mixes import Mix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import WorkloadProfile, core_base_line


class TraceStore:
    """In-process content-addressed store of materialized traces.

    Keys carry everything that determines the generated stream —
    ``(profile name, num_refs, footprint scale, seed, base line)`` — so
    a hit is exact by construction.  Entries are immutable tuple lists
    shared by reference; consumers wrap them in ``iter()`` and never
    mutate.  ``generated`` / ``reused`` feed the engine's per-run
    :class:`~repro.experiments.cellcache.ExecStats` counters.

    The store is bounded (``max_refs`` total stored references, FIFO
    eviction) so a long-lived process — a service worker, a pytest
    session — cannot grow it without limit; paper-scale traces stream
    and never enter the store at all.
    """

    __slots__ = ("generated", "reused", "max_refs", "_traces", "_trace_refs",
                 "_tables", "_table_refs")

    DEFAULT_MAX_REFS = 4_000_000

    def __init__(self, max_refs: int = DEFAULT_MAX_REFS) -> None:
        self.generated = 0
        self.reused = 0
        self.max_refs = max_refs
        self._traces: dict[tuple, tuple[list, int]] = {}
        self._trace_refs = 0
        self._tables: dict[tuple, tuple[Any, int]] = {}
        self._table_refs = 0

    def trace(self, key: tuple, build: Callable[[], list]) -> list:
        """The materialized trace for ``key``, building it on first use."""
        hit = self._traces.get(key)
        if hit is not None:
            self.reused += 1
            return hit[0]
        entry = build()
        self.generated += 1
        cost = len(entry)
        if cost <= self.max_refs:
            while self._trace_refs + cost > self.max_refs and self._traces:
                _, (_, old_cost) = self._traces.popitem()
                self._trace_refs -= old_cost
            self._traces[key] = (entry, cost)
            self._trace_refs += cost
        return entry

    def table(self, key: tuple, build: Callable[[], Any],
              cost: Callable[[Any], int] = len) -> Any:
        """Memoize an auxiliary table (warm-set columns), same bound."""
        hit = self._tables.get(key)
        if hit is not None:
            return hit[0]
        entry = build()
        weight = cost(entry)
        if weight <= self.max_refs:
            while self._table_refs + weight > self.max_refs and self._tables:
                _, (_, old_cost) = self._tables.popitem()
                self._table_refs -= old_cost
            self._tables[key] = (entry, weight)
            self._table_refs += weight
        return entry


class SimBackend:
    """One trace-synthesis / warmup strategy (bit-identical by contract).

    Subclasses implement ``_build_trace`` (materialize one core's trace
    as a list of ``(gap, is_write, line)`` tuples) and the warm-set
    installers; the shared :class:`TraceStore` front caches the traces.
    """

    __slots__ = ("store",)

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, store: Optional[TraceStore] = None) -> None:
        self.store = store if store is not None else TraceStore()

    # -- trace materialization -----------------------------------------
    def trace(self, profile: WorkloadProfile, num_refs: int,
              base_line: int = 0, scale: float = 1.0,
              seed: int = 0) -> list:
        """One materialized trace, served from the store when possible."""
        key = (profile.name, num_refs, scale, seed, base_line)
        return self.store.trace(
            key,
            lambda: self._build_trace(profile, num_refs, base_line, scale,
                                      seed))

    def mix_traces(self, mix: Mix, refs_per_core: int,
                   scale: float) -> list[list]:
        """One materialized trace per core, disjoint address spaces."""
        return [
            self.trace(get_profile(member), refs_per_core,
                       base_line=core_base_line(core_id), scale=scale,
                       seed=core_id)
            for core_id, member in enumerate(mix.members)
        ]

    def _build_trace(self, profile: WorkloadProfile, num_refs: int,
                     base_line: int, scale: float, seed: int) -> list:
        raise NotImplementedError

    # -- warmup --------------------------------------------------------
    def warm_mix(self, msc, mix: Mix, scale: float) -> int:
        """Install the mix's warm set; returns the lines installed."""
        raise NotImplementedError

    def warm_solo(self, msc, profile: WorkloadProfile, scale: float,
                  seed: int = 0) -> int:
        """Install one workload copy's warm set at base line 0."""
        raise NotImplementedError
