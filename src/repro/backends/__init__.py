"""Pluggable simulation backends behind a bit-identical contract.

The registry resolves a backend *name* — ``python`` (zero-dependency
default), ``numpy`` (vectorized materialization, the ``[fast]`` extra),
or ``auto`` (numpy when importable, silently python otherwise) — and
installs one process-global :class:`~repro.backends.base.SimBackend`
the engine, :func:`repro.experiments.common.run_mix`, and warmup all
read.  Results are bit-identical across backends by contract (enforced
by the determinism goldens per backend), which is why the backend never
enters cell-cache keys or request fingerprints.

A compiled backend (mypyc/Cython) slots in here later: implement
``SimBackend``, register its name, and every CLI/service surface picks
it up.

Selection order: explicit name -> ``$REPRO_BACKEND`` -> ``python``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.backends.base import SimBackend, TraceStore
from repro.backends.python_backend import PythonBackend
from repro.errors import ConfigError

__all__ = [
    "BACKEND_NAMES",
    "SimBackend",
    "TraceStore",
    "PythonBackend",
    "active_backend",
    "active_backend_name",
    "configure_backend",
    "numpy_version",
    "resolve_backend_name",
]

#: Names accepted by --backend / ExperimentRequest.backend / $REPRO_BACKEND.
BACKEND_NAMES = ("python", "numpy", "auto")

_ACTIVE: SimBackend = PythonBackend()


def numpy_version() -> Optional[str]:
    """The installed numpy's version, or None when unavailable."""
    try:
        import numpy
    except ImportError:
        return None
    return getattr(numpy, "__version__", None) or "unknown"


def resolve_backend_name(name: Optional[str] = None) -> str:
    """A concrete backend name for ``name`` (or env default).

    ``auto`` degrades to ``python`` silently when numpy is missing; an
    explicit ``numpy`` raises at construction time instead, so a user
    who asked for speed finds out they did not get it.
    """
    chosen = name or os.environ.get("REPRO_BACKEND") or "python"
    if chosen not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {chosen!r}; expected one of {list(BACKEND_NAMES)}")
    if chosen == "auto":
        return "numpy" if numpy_version() is not None else "python"
    return chosen


def _make(name: str) -> SimBackend:
    if name == "numpy":
        from repro.backends.numpy_backend import NumpyBackend

        return NumpyBackend()
    return PythonBackend()


def configure_backend(name: Optional[str] = None) -> SimBackend:
    """Resolve ``name`` and install it as this process's backend.

    Each call installs a *fresh* backend (fresh trace store), so one
    engine invocation's memoized traces never outlive it — that is the
    "once per invocation" scoping of the trace store.
    """
    global _ACTIVE
    _ACTIVE = _make(resolve_backend_name(name))
    return _ACTIVE


def active_backend() -> SimBackend:
    """The process-global backend (python unless configured otherwise)."""
    return _ACTIVE


def active_backend_name() -> str:
    return _ACTIVE.name
