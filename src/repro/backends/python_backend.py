"""The always-available pure-stdlib reference backend.

This *is* the semantics: every other backend must match its output bit
for bit.  Traces come straight from
:func:`~repro.workloads.synthetic.generate_trace`; warmup streams
:func:`~repro.workloads.synthetic.warm_lines` through the controller's
``warm_many`` / ``warm_line`` exactly as the engine always has.
"""

from __future__ import annotations

from repro.backends.base import SimBackend
from repro.workloads.mixes import Mix
from repro.workloads.synthetic import (
    WorkloadProfile,
    generate_trace,
    warm_lines,
)


class PythonBackend(SimBackend):
    """Zero-dependency default; the bit-identity reference."""

    __slots__ = ()

    name = "python"

    def _build_trace(self, profile: WorkloadProfile, num_refs: int,
                     base_line: int, scale: float, seed: int) -> list:
        return list(generate_trace(profile, num_refs, base_line=base_line,
                                   scale=scale, seed=seed))

    def warm_mix(self, msc, mix: Mix, scale: float) -> int:
        return msc.warm_many(mix.warm_sets(scale))

    def warm_solo(self, msc, profile: WorkloadProfile, scale: float,
                  seed: int = 0) -> int:
        count = 0
        for line, dirty in warm_lines(profile, scale=scale, seed=seed):
            msc.warm_line(line, dirty)
            count += 1
        return count
