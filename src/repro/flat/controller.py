"""OS-visible flat-memory controller.

Routes each L3 miss / writeback to the tier its page lives in — no
tags, no fills, no metadata. Migrations requested by the placement
policy cost real traffic: every valid line of a migrating page is read
from the source tier and written to the destination tier.

Implements the same interface as the cache-mode controllers
(:class:`~repro.hierarchy.msc_base.MscController`), so the whole CPU /
SRAM hierarchy stack and the metrics layer work unchanged on top.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.event_queue import Simulator
from repro.flat.placement import PAGE_LINES, PagePlacement, Tier
from repro.hierarchy.msc_base import MscController, ReadCallback
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.policies.base import SteeringPolicy


class FlatMemoryController(MscController):
    """Two OS-visible tiers behind a page-placement policy."""

    def __init__(
        self,
        sim: Simulator,
        fast_dev: MemoryDevice,
        slow_dev: MemoryDevice,
        placement: PagePlacement,
        policy: Optional[SteeringPolicy] = None,
    ) -> None:
        # fast_dev plays the cache_dev role for base-class services.
        super().__init__(sim, fast_dev, slow_dev, policy)
        self.fast_dev = fast_dev
        self.slow_dev = slow_dev
        self.placement = placement
        self.served_hits = 0    # fast-tier accesses, for metric parity
        self.served_misses = 0
        self.migrated_pages = 0

    # ------------------------------------------------------------------
    def _device_for(self, line: int) -> MemoryDevice:
        tier = self.placement.tier_of(line)
        self.placement.observe(line, tier)
        if tier is Tier.FAST:
            self.served_hits += 1
            return self.fast_dev
        self.served_misses += 1
        return self.slow_dev

    def _run_epoch(self) -> None:
        for page, to_tier in self.placement.epoch(self.sim.now):
            self._migrate(page, to_tier)

    def _migrate(self, page: int, to_tier: Tier) -> None:
        """Copy a page between tiers: 64 reads + 64 writes of traffic."""
        self.migrated_pages += 1
        src = self.slow_dev if to_tier is Tier.FAST else self.fast_dev
        dst = self.fast_dev if to_tier is Tier.FAST else self.slow_dev
        base = page * PAGE_LINES
        for offset in range(PAGE_LINES):
            line = base + offset
            src.enqueue(
                Request(
                    line=line,
                    kind=AccessKind.EVICT_READ,
                    on_complete=lambda r, t, d=dst: d.enqueue(
                        Request(line=r.line, kind=AccessKind.WRITEBACK)
                    ),
                )
            )

    # ------------------------------------------------------------------
    # MscController interface
    # ------------------------------------------------------------------
    def warm_line(self, line: int, dirty: bool = False) -> None:
        """Touch the page so first-touch policies allocate it."""
        self.placement.tier_of(line)

    def read(self, line: int, core_id: int, callback: ReadCallback,
             kind: AccessKind = AccessKind.DEMAND_READ) -> None:
        now = self.sim.now
        self.policy.tick(now)
        self._run_epoch()
        self.stats.reads += 1
        issue = now
        self._device_for(line).enqueue(
            Request(line=line, kind=kind, core_id=core_id,
                    on_complete=lambda r, t: self._finish_read(issue, t, callback))
        )

    def write(self, line: int, core_id: int) -> None:
        self.policy.tick(self.sim.now)
        self._run_epoch()
        self.stats.writes += 1
        self._device_for(line).enqueue(
            Request(line=line, kind=AccessKind.WRITEBACK, core_id=core_id)
        )

    # ------------------------------------------------------------------
    def served_hit_rate(self) -> float:
        """Fraction of demand served by the fast tier."""
        total = self.served_hits + self.served_misses
        return self.served_hits / total if total else 0.0

    def fast_traffic_fraction(self) -> float:
        fast = self.fast_dev.total_cas()
        total = fast + self.slow_dev.total_cas()
        return fast / total if total else 0.0
