"""Page-placement policies for OS-visible heterogeneous memory.

A policy answers one question — which tier does this 4 KB page live
in? — and may request migrations. Three policies bracket the design
space the paper's bandwidth equation predicts:

- **first-touch**: every new page goes to the fast tier until it fills
  (maximizes the fast tier's "hit rate" — the flat-mode analogue of the
  traditional wisdom the paper challenges);
- **bandwidth interleave**: pages are statically split in proportion to
  the tier bandwidths, Equation 3's optimum (``f_fast = B_f/(B_f+B_s)``),
  regardless of capacity headroom;
- **adaptive migration**: starts first-touch, observes per-tier traffic
  per epoch, and migrates pages toward the bandwidth-optimal traffic
  split — DAP's window learning, applied at page granularity.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError

PAGE_LINES = 64  # 4 KB pages


class Tier(enum.Enum):
    FAST = "fast"
    SLOW = "slow"


class PagePlacement:
    """Base: tracks page residency; subclasses pick tiers."""

    def __init__(self, fast_capacity_pages: int) -> None:
        if fast_capacity_pages <= 0:
            raise ConfigError("fast tier must hold at least one page")
        self.fast_capacity_pages = fast_capacity_pages
        self._fast_pages: set[int] = set()
        self.migrations = 0

    @staticmethod
    def page_of(line: int) -> int:
        return line // PAGE_LINES

    def tier_of(self, line: int) -> Tier:
        """Resolve (allocating on first touch) the tier of a line."""
        page = self.page_of(line)
        if page in self._fast_pages:
            return Tier.FAST
        if self._admit_new_page(page):
            self._fast_pages.add(page)
            return Tier.FAST
        return Tier.SLOW

    def _admit_new_page(self, page: int) -> bool:
        raise NotImplementedError

    def observe(self, line: int, tier: Tier) -> None:
        """Called on every routed access (adaptive policies train here)."""

    def epoch(self, now: int) -> list[tuple[int, Tier]]:
        """Periodic hook; returns pages to migrate as (page, to_tier)."""
        return []

    @property
    def fast_pages(self) -> int:
        return len(self._fast_pages)

    def _move(self, page: int, to_tier: Tier) -> None:
        if to_tier is Tier.FAST:
            self._fast_pages.add(page)
        else:
            self._fast_pages.discard(page)
        self.migrations += 1


class FirstTouchPlacement(PagePlacement):
    """Fill the fast tier first-come-first-served (the OS default)."""

    name = "first-touch"

    def _admit_new_page(self, page: int) -> bool:
        return len(self._fast_pages) < self.fast_capacity_pages


class BandwidthInterleavePlacement(PagePlacement):
    """Equation 3 applied to pages: admit a page to the fast tier with a
    deterministic hash so that ``f_fast = B_fast / (B_fast + B_slow)`` of
    pages (and, for uniform traffic, of accesses) land there."""

    name = "bandwidth-interleave"

    def __init__(self, fast_capacity_pages: int, b_fast: float,
                 b_slow: float) -> None:
        super().__init__(fast_capacity_pages)
        if b_fast <= 0 or b_slow <= 0:
            raise ConfigError("tier bandwidths must be positive")
        self.fast_fraction = b_fast / (b_fast + b_slow)

    def _admit_new_page(self, page: int) -> bool:
        if len(self._fast_pages) >= self.fast_capacity_pages:
            return False
        # Deterministic per-page hash in [0, 1).
        digest = (page * 2654435761) % (1 << 32) / (1 << 32)
        return digest < self.fast_fraction


class AdaptiveMigrationPlacement(PagePlacement):
    """Window-learned placement: migrate pages until the measured
    access split matches the bandwidth ratio (the flat-mode DAP)."""

    name = "adaptive"

    def __init__(self, fast_capacity_pages: int, b_fast: float, b_slow: float,
                 epoch_cycles: int = 100_000, migrate_batch: int = 32) -> None:
        super().__init__(fast_capacity_pages)
        if b_fast <= 0 or b_slow <= 0:
            raise ConfigError("tier bandwidths must be positive")
        self.target_fast_fraction = b_fast / (b_fast + b_slow)
        self.epoch_cycles = epoch_cycles
        self.migrate_batch = migrate_batch
        self._last_epoch = 0
        self._access_counts: dict[int, int] = {}
        self._fast_accesses = 0
        self._slow_accesses = 0
        self._settle = 0
        # Pages the controller demoted stay out until promoted back,
        # otherwise first-touch re-admission undoes every demotion.
        self._demoted: set[int] = set()

    def _admit_new_page(self, page: int) -> bool:
        if page in self._demoted:
            return False
        return len(self._fast_pages) < self.fast_capacity_pages

    def observe(self, line: int, tier: Tier) -> None:
        page = self.page_of(line)
        self._access_counts[page] = self._access_counts.get(page, 0) + 1
        if tier is Tier.FAST:
            self._fast_accesses += 1
        else:
            self._slow_accesses += 1

    def epoch(self, now: int) -> list[tuple[int, Tier]]:
        if now - self._last_epoch < self.epoch_cycles:
            return []
        self._last_epoch = now
        total = self._fast_accesses + self._slow_accesses
        if total < 100:
            return []
        fast_fraction = self._fast_accesses / total
        moves: list[tuple[int, Tier]] = []
        by_heat = sorted(self._access_counts, key=self._access_counts.get)
        error = fast_fraction - self.target_fast_fraction
        # Move pages whose combined heat covers the traffic excess (a
        # hysteresis band keeps the controller quiet near the target).
        # Half-gain correction plus a settle epoch after each batch
        # keeps the loop stable on noisy per-epoch estimates.
        if self._settle > 0:
            self._settle -= 1
            self._access_counts.clear()
            self._fast_accesses = self._slow_accesses = 0
            return []
        needed = 0.5 * abs(error) * total
        if error > 0.05:
            # Fast tier too hot: demote pages until the excess is covered.
            moved_heat = 0.0
            for page in by_heat:
                if page not in self._fast_pages:
                    continue
                if moved_heat >= needed or len(moves) >= self.migrate_batch:
                    break
                self._move(page, Tier.SLOW)
                self._demoted.add(page)
                moves.append((page, Tier.SLOW))
                moved_heat += self._access_counts[page]
        elif error < -0.05:
            # Fast tier underused: promote hot slow pages.
            moved_heat = 0.0
            room = self.fast_capacity_pages - len(self._fast_pages)
            for page in reversed(by_heat):
                if page in self._fast_pages:
                    continue
                if moved_heat >= needed or len(moves) >= min(
                        self.migrate_batch, max(room, 0)):
                    break
                self._move(page, Tier.FAST)
                self._demoted.discard(page)
                moves.append((page, Tier.FAST))
                moved_heat += self._access_counts[page]
        self._access_counts.clear()
        self._fast_accesses = self._slow_accesses = 0
        if moves:
            self._settle = 2
        return moves


def make_placement(name: str, fast_capacity_pages: int, b_fast: float,
                   b_slow: float,
                   epoch_cycles: int = 100_000) -> PagePlacement:
    """Placement factory by policy name."""
    if name == "first-touch":
        return FirstTouchPlacement(fast_capacity_pages)
    if name == "bandwidth-interleave":
        return BandwidthInterleavePlacement(fast_capacity_pages, b_fast, b_slow)
    if name == "adaptive":
        return AdaptiveMigrationPlacement(fast_capacity_pages, b_fast, b_slow,
                                          epoch_cycles=epoch_cycles)
    raise ConfigError(f"unknown placement policy {name!r}")
