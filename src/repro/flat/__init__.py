"""OS-visible (flat) heterogeneous memory — the paper's Section II aside.

The paper evaluates the in-package memory as a *cache*, noting that "the
algorithms described can easily be extended to OS-visible
implementations". This subpackage provides that extension: the fast
memory becomes part of the physical address space and a page-placement
policy decides which pages live in it.

- :mod:`repro.flat.placement` — placement policies: first-touch
  (hit-rate-maximizing "traditional wisdom"), bandwidth-ratio
  interleaving (Equation 3's optimum applied to pages), and an adaptive
  migrating policy (the flat-mode analogue of DAP's window learning);
- :mod:`repro.flat.controller` — the flat-memory controller that routes
  requests by placement and charges migration traffic.
"""

from repro.flat.placement import (
    PagePlacement,
    FirstTouchPlacement,
    BandwidthInterleavePlacement,
    AdaptiveMigrationPlacement,
)
from repro.flat.controller import FlatMemoryController

__all__ = [
    "PagePlacement",
    "FirstTouchPlacement",
    "BandwidthInterleavePlacement",
    "AdaptiveMigrationPlacement",
    "FlatMemoryController",
]
