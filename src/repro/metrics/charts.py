"""Terminal bar charts for experiment results.

The paper's artifacts are bar charts; this module renders an
:class:`~repro.experiments.common.ExperimentResult` column as horizontal
ASCII bars so `repro-experiment --chart` output reads like the figure it
reproduces.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigError

BAR_CHARS = "▏▎▍▌▋▊▉█"
DEFAULT_WIDTH = 40


def _bar(value: float, scale_max: float, width: int) -> str:
    if scale_max <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / scale_max))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    if remainder > 1e-9 and full < width:
        bar += BAR_CHARS[min(len(BAR_CHARS) - 1, int(remainder * len(BAR_CHARS)))]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = DEFAULT_WIDTH,
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Render labelled horizontal bars.

    ``baseline`` draws a reference mark (e.g. 1.0 for normalized
    speedups) as a ``|`` in the bar area.
    """
    if len(labels) != len(values):
        raise ConfigError("labels and values must have equal length")
    if not labels:
        raise ConfigError("nothing to chart")
    if width <= 0:
        raise ConfigError("width must be positive")
    scale_max = max(list(values) + ([baseline] if baseline else [])) * 1.05
    label_w = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _bar(value, scale_max, width)
        if baseline is not None and scale_max > 0:
            mark = int(min(1.0, baseline / scale_max) * width)
            padded = list(bar.ljust(width))
            if 0 <= mark < width and padded[mark] == " ":
                padded[mark] = "|"
            bar = "".join(padded).rstrip()
        lines.append(f"{str(label):>{label_w}s} {fmt.format(value):>8s} {bar}")
    return "\n".join(lines)


def chart_result(result, column: int = 1, width: int = DEFAULT_WIDTH,
                 baseline: Optional[float] = None) -> str:
    """Chart one numeric column of an ExperimentResult."""
    labels, values = [], []
    for row in result.rows:
        if column < len(row) and isinstance(row[column], (int, float)):
            labels.append(str(row[0]))
            values.append(float(row[column]))
    if not labels:
        raise ConfigError(f"column {column} has no numeric data")
    title = f"{result.experiment} — {result.headers[column]}"
    return bar_chart(labels, values, title=title, width=width,
                     baseline=baseline)
