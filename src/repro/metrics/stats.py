"""Run-level metric collection.

:func:`collect_result` reduces a finished :class:`~repro.hierarchy.system.System`
to the numbers the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hierarchy.system import System
from repro.mem.request import AccessKind


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    policy: str
    cycles: int
    instructions: list[int]
    ipc: list[float]
    l3_mpki: list[float]
    avg_read_latency: float
    served_hit_rate: float
    array_hit_rate: float
    mm_cas: int
    cache_cas: int
    mm_cas_fraction: float
    delivered_gbps: float
    tag_cache_miss_rate: Optional[float] = None
    dap_decisions: dict[str, int] = field(default_factory=dict)
    #: Scalar side metrics plus, under the ``"manifest"`` key, the run's
    #: provenance manifest (config, policy, git SHA, wall time, events).
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def manifest(self) -> Optional[dict]:
        """The run manifest, when one was attached."""
        value = self.extras.get("manifest")
        return value if isinstance(value, dict) else None

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipc) / len(self.ipc) if self.ipc else 0.0

    @property
    def mean_mpki(self) -> float:
        return sum(self.l3_mpki) / len(self.l3_mpki) if self.l3_mpki else 0.0


def _cache_cas_total(system: System) -> int:
    msc = system.msc
    total = msc.cache_dev.total_cas()
    write_dev = getattr(msc, "cache_write_dev", None)
    if write_dev is not None:
        total += write_dev.total_cas()
    return total


def _delivered_gbps(system: System) -> float:
    msc = system.msc
    total = msc.mm_dev.delivered_gbps() + msc.cache_dev.delivered_gbps()
    write_dev = getattr(msc, "cache_write_dev", None)
    if write_dev is not None:
        total += write_dev.delivered_gbps()
    return total


def collect_result(system: System) -> RunResult:
    """Summarize a completed run."""
    msc = system.msc
    hierarchy = system.hierarchy
    cores = system.cores

    instructions = [core.instr_count for core in cores]
    ipcs = [core.ipc for core in cores]
    mpki = [
        hierarchy.l3_mpki(core.core_id, core.instr_count) for core in cores
    ]

    served_hit_rate = (
        msc.served_hit_rate() if hasattr(msc, "served_hit_rate") else 0.0
    )
    array = getattr(msc, "array", None)
    array_hit_rate = array.hit_rate() if array is not None else 0.0

    tag_cache = getattr(msc, "tag_cache", None)
    tag_miss_rate = tag_cache.miss_rate() if tag_cache is not None else None

    decisions: dict[str, int] = {}
    engine = getattr(msc.policy, "engine", None)
    if engine is not None and hasattr(engine, "decisions"):
        decisions = dict(engine.decisions)

    mm_cas = msc.mm_dev.total_cas()
    cache_cas = _cache_cas_total(system)
    total_cas = mm_cas + cache_cas

    # Per-source delivered bandwidth and measured access fractions, so
    # offline reports can compare the run's partition against the
    # bandwidth model's optimum without re-deriving from CAS counts.
    write_dev = getattr(msc, "cache_write_dev", None)
    mm_dev_cas = mm_cas
    cache_dev_cas = msc.cache_dev.total_cas()
    write_dev_cas = write_dev.total_cas() if write_dev is not None else 0
    dev_total = mm_dev_cas + cache_dev_cas + write_dev_cas

    extras = {
        "mm_gbps": msc.mm_dev.delivered_gbps(),
        "cache_gbps": msc.cache_dev.delivered_gbps(),
        "cache_write_gbps": (write_dev.delivered_gbps()
                             if write_dev is not None else 0.0),
        "mm_access_fraction": mm_dev_cas / dev_total if dev_total else 0.0,
        "cache_access_fraction": (cache_dev_cas / dev_total
                                  if dev_total else 0.0),
        "cache_write_access_fraction": (write_dev_cas / dev_total
                                        if dev_total else 0.0),
        "mm_row_hit_rate": msc.mm_dev.row_hit_rate(),
        "cache_row_hit_rate": msc.cache_dev.row_hit_rate(),
        "sfrm_issued": float(msc.stats.sfrm_issued),
        "sfrm_wasted": float(msc.stats.sfrm_wasted),
        "fwb_applied": float(msc.stats.fwb_applied),
        "wb_applied": float(msc.stats.wb_applied),
        "ifrm_applied": float(msc.stats.ifrm_applied),
        "victim_dirty_lines": float(msc.stats.victim_dirty_lines),
        "meta_reads": float(msc.stats.meta_reads),
        "meta_writes": float(msc.stats.meta_writes),
        "demand_mm_cas": float(
            msc.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ, 0)
        ),
    }
    # Policy-specific counters (Banshee fill admission, TUNTU update
    # skips, CBP prefetch credits). The base policy returns {} so runs
    # covered by the determinism golden gain no extras keys.
    extras.update(msc.policy.result_extras())

    return RunResult(
        policy=system.config.policy,
        cycles=system.cycles,
        instructions=instructions,
        ipc=ipcs,
        l3_mpki=mpki,
        avg_read_latency=msc.stats.avg_read_latency(),
        served_hit_rate=served_hit_rate,
        array_hit_rate=array_hit_rate,
        mm_cas=mm_cas,
        cache_cas=cache_cas,
        mm_cas_fraction=mm_cas / total_cas if total_cas else 0.0,
        delivered_gbps=_delivered_gbps(system),
        tag_cache_miss_rate=tag_miss_rate,
        dap_decisions=decisions,
        extras=extras,
    )
