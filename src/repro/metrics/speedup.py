"""Weighted speedup (the paper's performance metric).

``WS = sum_i IPC_shared,i / IPC_alone,i``; figures report WS of a
configuration normalized to WS of a baseline configuration with the same
alone-run reference, so any consistent alone-IPC reference yields the
same normalized number. Experiments memoize alone IPCs per
(workload, platform) in :data:`ALONE_IPC_CACHE`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ConfigError


class AloneIpcStore:
    """Two-layer alone-IPC memo: process dict over the shared cell cache.

    The first layer is a plain in-process dict keyed by
    ``(workload name, SystemConfig.key()/scale)``.  The second layer is
    the process-wide default :class:`~repro.experiments.cellcache.CellCache`
    (when one is configured — the execution engine configures it in
    every worker), keyed by the content-addressed cell key, so alone-run
    references computed by one worker are visible to all others and to
    later invocations instead of being recomputed per process.
    """

    def __init__(self) -> None:
        self._memo: dict[tuple[str, str], float] = {}

    @staticmethod
    def _disk():
        # Lazy import: metrics must not pull the experiments package in
        # at import time.
        from repro.experiments.cellcache import get_default_cache
        return get_default_cache()

    def lookup(self, memo_key: tuple[str, str],
               disk_key: Optional[str] = None) -> Optional[float]:
        ipc = self._memo.get(memo_key)
        if ipc is not None:
            return ipc
        if disk_key is not None:
            cache = self._disk()
            if cache is not None:
                ipc = cache.get_result(disk_key)
                if ipc is not None:
                    self._memo[memo_key] = float(ipc)
                    return float(ipc)
        return None

    def store(self, memo_key: tuple[str, str], ipc: float,
              disk_key: Optional[str] = None) -> None:
        self._memo[memo_key] = ipc
        if disk_key is not None:
            cache = self._disk()
            if cache is not None:
                cache.put_result(disk_key, ipc, label=f"alone/{memo_key[0]}")

    # Dict-style access to the in-process layer (kept for callers that
    # used the old module-global dict).
    def get(self, memo_key, default=None):
        return self._memo.get(memo_key, default)

    def __setitem__(self, memo_key, ipc) -> None:
        self._memo[memo_key] = ipc

    def __contains__(self, memo_key) -> bool:
        return memo_key in self._memo

    def __len__(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        self._memo.clear()


ALONE_IPC_CACHE = AloneIpcStore()


def weighted_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """``sum(IPC_i / IPC_alone_i)`` over the mix."""
    if len(ipcs) != len(alone_ipcs):
        raise ConfigError("ipc and alone-ipc lists must have equal length")
    if any(a <= 0 for a in alone_ipcs):
        raise ConfigError("alone IPCs must be positive")
    return sum(ipc / alone for ipc, alone in zip(ipcs, alone_ipcs))


def normalized_weighted_speedup(
    ipcs: Sequence[float],
    baseline_ipcs: Sequence[float],
    alone_ipcs: Optional[Sequence[float]] = None,
) -> float:
    """WS(config) / WS(baseline).

    Without alone-run references (homogeneous rate mixes), every thread
    shares the same reference, which cancels — so unit references are
    used.
    """
    if alone_ipcs is None:
        alone_ipcs = [1.0] * len(ipcs)
    ws = weighted_speedup(ipcs, alone_ipcs)
    ws_base = weighted_speedup(baseline_ipcs, alone_ipcs)
    if ws_base <= 0:
        raise ConfigError("baseline weighted speedup must be positive")
    return ws / ws_base


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's GMEAN bars)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
