"""Weighted speedup (the paper's performance metric).

``WS = sum_i IPC_shared,i / IPC_alone,i``; figures report WS of a
configuration normalized to WS of a baseline configuration with the same
alone-run reference, so any consistent alone-IPC reference yields the
same normalized number. Experiments memoize alone IPCs per
(workload, platform) in :data:`ALONE_IPC_CACHE`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ConfigError

# (workload name, SystemConfig.key()) -> alone IPC
ALONE_IPC_CACHE: dict[tuple[str, str], float] = {}


def weighted_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """``sum(IPC_i / IPC_alone_i)`` over the mix."""
    if len(ipcs) != len(alone_ipcs):
        raise ConfigError("ipc and alone-ipc lists must have equal length")
    if any(a <= 0 for a in alone_ipcs):
        raise ConfigError("alone IPCs must be positive")
    return sum(ipc / alone for ipc, alone in zip(ipcs, alone_ipcs))


def normalized_weighted_speedup(
    ipcs: Sequence[float],
    baseline_ipcs: Sequence[float],
    alone_ipcs: Optional[Sequence[float]] = None,
) -> float:
    """WS(config) / WS(baseline).

    Without alone-run references (homogeneous rate mixes), every thread
    shares the same reference, which cancels — so unit references are
    used.
    """
    if alone_ipcs is None:
        alone_ipcs = [1.0] * len(ipcs)
    ws = weighted_speedup(ipcs, alone_ipcs)
    ws_base = weighted_speedup(baseline_ipcs, alone_ipcs)
    if ws_base <= 0:
        raise ConfigError("baseline weighted speedup must be positive")
    return ws / ws_base


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's GMEAN bars)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
