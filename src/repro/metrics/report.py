"""Human-readable run reports.

Turns a finished :class:`~repro.hierarchy.system.System` into the
diagnostic a performance engineer wants after a run: per-core IPC/MPKI,
CAS breakdown by traffic kind on every device, device utilizations, and
the policy's decision summary.
"""

from __future__ import annotations

from repro.hierarchy.system import System
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind
from repro.metrics.stats import collect_result


def _device_section(name: str, device: MemoryDevice) -> list[str]:
    lines = [f"  {name}: peak {device.peak_gbps:.1f} GB/s, "
             f"delivered {device.delivered_gbps():.1f} GB/s, "
             f"bus util {device.utilization():.1%}, "
             f"row hits {device.row_hit_rate():.1%}"]
    by_kind = device.cas_by_kind()
    total = sum(by_kind.values()) or 1
    for kind in AccessKind:
        count = by_kind.get(kind, 0)
        if count:
            lines.append(f"    {kind.value:16s} {count:10d}  ({count / total:.1%})")
    return lines


def run_report(system: System) -> str:
    """Render a multi-section report for a completed run."""
    result = collect_result(system)
    msc = system.msc
    lines: list[str] = []
    lines.append(f"=== run report: policy={result.policy}, "
                 f"{system.config.num_cores} cores, {result.cycles} cycles ===")

    lines.append("")
    lines.append("cores:")
    lines.append(f"  {'core':>4s} {'instr':>10s} {'ipc':>7s} {'l3_mpki':>8s}")
    for core in system.cores:
        mpki = system.hierarchy.l3_mpki(core.core_id, core.instr_count)
        lines.append(f"  {core.core_id:4d} {core.instr_count:10d} "
                     f"{core.ipc:7.3f} {mpki:8.1f}")
    lines.append(f"  mean IPC {result.mean_ipc:.3f}, mean MPKI "
                 f"{result.mean_mpki:.1f}")

    lines.append("")
    lines.append("memory-side cache:")
    lines.append(f"  served hit rate {result.served_hit_rate:.1%} "
                 f"(array {result.array_hit_rate:.1%})")
    if result.tag_cache_miss_rate is not None:
        lines.append(f"  tag-cache miss rate {result.tag_cache_miss_rate:.1%}")
    lines.append(f"  avg L3 read-miss latency {result.avg_read_latency:.0f} cycles")
    lines.append(f"  MM CAS fraction {result.mm_cas_fraction:.3f} "
                 "(optimum 0.273 on the default platform)")

    lines.append("")
    lines.append("devices:")
    lines.extend(_device_section("cache", msc.cache_dev))
    write_dev = getattr(msc, "cache_write_dev", None)
    if write_dev is not None:
        lines.extend(_device_section("cache-write", write_dev))
    lines.extend(_device_section("main-memory", msc.mm_dev))

    if result.dap_decisions:
        lines.append("")
        total = sum(result.dap_decisions.values()) or 1
        decisions = ", ".join(
            f"{k}={v} ({v / total:.0%})" for k, v in result.dap_decisions.items()
        )
        lines.append(f"dap decisions: {decisions}")

    return "\n".join(lines)
