"""Metrics: run results, weighted speedup, CAS fractions."""

from repro.metrics.stats import RunResult, collect_result
from repro.metrics.speedup import (
    weighted_speedup,
    normalized_weighted_speedup,
    geomean,
)

__all__ = [
    "RunResult",
    "collect_result",
    "weighted_speedup",
    "normalized_weighted_speedup",
    "geomean",
]
