"""The public programmatic API: one typed facade over the repro package.

Everything outside the package — the unified ``repro`` CLI, the
simulation service, scripts, notebooks — drives experiments through
these three calls instead of importing runner/engine internals:

- :func:`run_experiment` executes one registered experiment and returns
  its rendered :class:`~repro.experiments.common.ExperimentResult`;
- :func:`run_cells` executes a hand-built cell list through the same
  cached, parallel engine;
- :func:`submit` enqueues an :class:`ExperimentRequest` on a persistent
  job store for a service worker to execute asynchronously.

Requests and statuses are frozen dataclasses with dict/JSON round-trips
(:meth:`ExperimentRequest.to_dict` / :meth:`ExperimentRequest.from_dict`)
so the same schema travels over HTTP, through SQLite, and in tests.

Example::

    from repro.api import ExperimentRequest, run_experiment

    result = run_experiment(
        ExperimentRequest(experiment="fig06", scale="smoke",
                          workloads=("mcf",)))
    result.print()
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence, Union

from repro.backends import BACKEND_NAMES
from repro.errors import ConfigError
from repro.experiments.cellcache import CellCache, ExecStats, default_cache_dir
from repro.experiments.common import ExperimentResult
from repro.experiments.exec import (
    AloneIpcCell,
    Cell,
    CellExecutionCancelled,
    CellExecutionError,
    MixCell,
    TaskCell,
    execute_cells,
    run_spec,
)
from repro.experiments.registry import EXPERIMENTS, get_spec
from repro.metrics.stats import RunResult
from repro.obs.profiler import DEFAULT_HZ
from repro.obs.telemetry import DEFAULT_PROBE_INTERVAL, TelemetryConfig

__all__ = [
    "ExperimentRequest",
    "JobStatus",
    "JOB_STATES",
    "TERMINAL_STATES",
    "RunResult",
    "ExperimentResult",
    "ExecStats",
    "CellExecutionError",
    "CellExecutionCancelled",
    "Cell",
    "MixCell",
    "AloneIpcCell",
    "TaskCell",
    "CellCache",
    "TelemetryConfig",
    "run_experiment",
    "run_cells",
    "submit",
    "default_cache",
    "result_to_dict",
    "stats_to_dict",
]

#: Lifecycle of a service job. ``queued`` jobs wait for a worker (or a
#: retry backoff); ``running`` jobs are claimed by exactly one worker.
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")
TERMINAL_STATES = ("succeeded", "failed", "cancelled")


@dataclass(frozen=True)
class ExperimentRequest:
    """One experiment invocation, as data.

    The same object parameterizes a direct :func:`run_experiment` call,
    a :func:`submit` to the job queue, and a ``POST /jobs`` body.
    ``experiment``/``scale``/``workloads`` determine the simulated
    result (and hence the request :meth:`fingerprint`); the remaining
    fields only shape *how* it executes (parallelism, tracing,
    service-side timeout/retry policy).
    """

    experiment: str
    scale: Optional[str] = None
    workloads: Optional[tuple] = None
    jobs: int = 1
    resume: bool = False
    trace: bool = False
    probe_interval: int = DEFAULT_PROBE_INTERVAL
    #: Sample executed cells' Python stacks (repro.obs.profiler) at the
    #: default rate. Observation-only: excluded from the fingerprint and
    #: the cell cache key, so profiled and unprofiled runs share cells
    #: and produce bit-identical results.
    profile: bool = False
    #: Service-side knobs; ignored by direct execution.
    timeout_seconds: Optional[float] = None
    max_attempts: int = 2
    #: Simulation backend (repro.backends): ``python``, ``numpy``,
    #: ``auto``, or None for the process default. Backends are
    #: bit-identical by contract, so — like ``profile`` — the choice is
    #: excluded from the fingerprint and the cell cache key: cells
    #: computed under one backend are served under any other.
    backend: Optional[str] = None

    def __post_init__(self):
        if self.workloads is not None and not isinstance(
                self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))

    def validate(self) -> None:
        """Reject malformed requests before they reach a queue."""
        if self.experiment not in EXPERIMENTS:
            raise ConfigError(
                f"unknown experiment {self.experiment!r}; "
                f"available: {sorted(EXPERIMENTS)}")
        if self.scale is not None and self.scale not in (
                "smoke", "small", "paper"):
            raise ConfigError(f"unknown scale {self.scale!r}")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}")
        if self.probe_interval <= 0:
            raise ConfigError(
                f"probe_interval must be positive, got {self.probe_interval}")
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {list(BACKEND_NAMES)}")

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["workloads"] is not None:
            data["workloads"] = list(data["workloads"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRequest":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ConfigError(
                f"unknown request field(s): {sorted(unknown)}")
        if "experiment" not in known:
            raise ConfigError("request needs an 'experiment' field")
        if known.get("workloads") is not None:
            known["workloads"] = tuple(known["workloads"])
        return cls(**known)

    def fingerprint(self) -> str:
        """Content address of *what* is simulated (not how).

        Two requests with the same fingerprint produce identical
        results, so the service can report dedupe statistics per
        fingerprint; the actual dedupe tier is the content-addressed
        cell cache, which is shared at cell granularity.
        """
        payload = {
            "experiment": self.experiment,
            "scale": self.scale or os.environ.get("REPRO_SCALE", "smoke"),
            "workloads": sorted(self.workloads) if self.workloads else None,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobStatus:
    """A snapshot of one service job, as returned by every endpoint."""

    id: str
    state: str
    request: ExperimentRequest
    fingerprint: str = ""
    attempts: int = 0
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker: Optional[str] = None
    done_cells: int = 0
    total_cells: int = 0
    #: Filled on success: executed/cached cell counts (the dedupe
    #: signal — a fully cache-served re-submission has executed == 0).
    executed_cells: int = 0
    cached_cells: int = 0
    #: W3C trace context the job was submitted under (``POST /jobs``
    #: accepts or mints one); follows the job into worker logs, cell
    #: spans, run manifests, and SSE frames.
    traceparent: Optional[str] = None
    #: Unix time of the owning worker's last sign of life (set on claim,
    #: refreshed on every per-cell progress update).  Lets the janitor
    #: recover jobs whose worker died *while the service is live*, and
    #: lets /healthz/ready and `repro top` surface execution stalls.
    heartbeat: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        data = asdict(self)
        data["request"] = self.request.to_dict()
        data["terminal"] = self.terminal
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobStatus":
        data = dict(data)
        data.pop("terminal", None)
        data["request"] = ExperimentRequest.from_dict(data["request"])
        return cls(**data)


# ----------------------------------------------------------------------
# Result serialization (job results must survive SQLite + HTTP)
# ----------------------------------------------------------------------

def stats_to_dict(stats: Optional[ExecStats]) -> Optional[dict]:
    """JSON-ready digest of a sweep's :class:`ExecStats`."""
    if stats is None:
        return None
    events = sum(p.events for p in stats.profile)
    sim_wall = sum(p.wall for p in stats.profile)
    return {
        "total": stats.total,
        "executed": stats.executed,
        "cache_hits": stats.cache_hits,
        "replayed_failures": stats.replayed_failures,
        "failed": stats.failed,
        "elapsed": round(stats.elapsed, 6),
        "events": events,
        "events_per_sec": round(events / sim_wall, 1) if sim_wall > 0 else 0.0,
        "traces_generated": stats.traces_generated,
        "traces_reused": stats.traces_reused,
    }


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-ready rendering of an :class:`ExperimentResult` table.

    Rows keep their raw (unformatted) values, so equality between a
    service-executed job and a direct run is a bit-identical check,
    not a pretty-printing one.
    """
    return {
        "experiment": result.experiment,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
        "stats": stats_to_dict(result.stats),
    }


# ----------------------------------------------------------------------
# Execution facade
# ----------------------------------------------------------------------

def _telemetry_of(request: ExperimentRequest,
                  trace_dir: Optional[str]) -> Optional[TelemetryConfig]:
    if not request.trace:
        return None
    return TelemetryConfig(probe_interval=request.probe_interval,
                           trace_dir=trace_dir)


def run_experiment(
    request: Union[ExperimentRequest, str],
    *,
    cache: Union[CellCache, str, None] = None,
    trace_dir: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_cell: Optional[Callable[[str, str, int, int], None]] = None,
    spec=None,
    profile_hz: Optional[int] = None,
    **overrides,
) -> ExperimentResult:
    """Execute one registered experiment; the canonical entry point.

    ``request`` is an :class:`ExperimentRequest` or a bare experiment
    id (``"fig06"``); keyword ``overrides`` patch request fields, e.g.
    ``run_experiment("fig06", scale="smoke", workloads=("mcf",))``.

    ``cache`` is a :class:`CellCache` or a directory path (``None``
    runs uncached; use :func:`default_cache` for the shared store).
    ``telemetry`` wins over the request's ``trace`` flag;
    ``should_stop`` / ``on_cell`` are forwarded to the engine.
    ``profile_hz`` overrides the request's ``profile`` flag (0 disables,
    ``None`` derives the rate from the flag); profiles land in
    ``result.stats.stack_profiles``.
    ``spec`` lets a caller that already resolved the
    :class:`ExperimentSpec` (the runner CLI, tests with synthetic
    specs) skip the registry lookup.
    """
    if isinstance(request, str):
        request = ExperimentRequest(experiment=request)
    if overrides:
        data = request.to_dict()
        data.update(overrides)
        request = ExperimentRequest.from_dict(data)
    request.validate()
    if telemetry is None:
        telemetry = _telemetry_of(request, trace_dir)
    if profile_hz is None:
        profile_hz = DEFAULT_HZ if request.profile else 0
    if spec is None:
        spec = get_spec(request.experiment)
    return run_spec(
        spec,
        scale=request.scale,
        workloads=list(request.workloads) if request.workloads else None,
        jobs=max(1, request.jobs),
        cache=cache,
        resume=request.resume,
        telemetry=telemetry,
        should_stop=should_stop,
        on_cell=on_cell,
        profile_hz=profile_hz,
        backend=request.backend,
    )


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    cache: Union[CellCache, str, None] = None,
    resume: bool = False,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_cell: Optional[Callable[[str, str, int, int], None]] = None,
    profile_hz: int = 0,
    backend: Optional[str] = None,
) -> tuple[dict, ExecStats]:
    """Execute a hand-built cell list through the cached engine.

    A thin, stable alias for the engine's ``execute_cells``: scripts
    that sweep custom (mix, config) grids use this instead of importing
    :mod:`repro.experiments.exec` directly.
    """
    return execute_cells(cells, jobs=jobs, cache=cache, resume=resume,
                         should_stop=should_stop, on_cell=on_cell,
                         profile_hz=profile_hz, backend=backend)


def submit(request: ExperimentRequest, store,
           traceparent: Optional[str] = None) -> JobStatus:
    """Enqueue a request on a job store; a service worker executes it.

    ``store`` is a :class:`repro.service.jobstore.JobStore` or a path
    to its SQLite database.  ``traceparent`` (a W3C trace context
    header value) tags the job for end-to-end correlation.  Returns
    the queued :class:`JobStatus` immediately; poll
    ``store.get(status.id)`` (or the service's ``GET /jobs/<id>``)
    for completion.
    """
    from repro.service.jobstore import JobStore

    if not isinstance(store, JobStore):
        store = JobStore(store)
    request.validate()
    return store.submit(request, traceparent=traceparent)


def default_cache(cache_dir: Optional[str] = None) -> CellCache:
    """The shared on-disk cell cache (``$REPRO_CACHE_DIR`` wins)."""
    return CellCache(cache_dir or default_cache_dir())
