"""Verdict diffing: the regression gate over validation documents.

A *flip* is a claim or experiment whose verdict moved into a failing
state (``pass``/``pass-deviation`` → ``fail``/``error``) between a
baseline document (normally the committed ``VERDICTS.json``) and a
candidate. Flips regress; improvements, newly added claims, and
claims only present in the baseline are reported but do not gate —
except through :attr:`VerdictDiff.missing_experiments`: an experiment
that *vanished* from the candidate is treated as a regression, so a
gate can't be dodged by unregistering the experiment that fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.validate.evaluate import FAILING_VERDICTS


def _claim_statuses(doc: dict) -> dict[str, str]:
    return {claim["id"]: claim["status"]
            for entry in doc.get("experiments", {}).values()
            for claim in entry.get("claims", ())}


def _experiment_verdicts(doc: dict) -> dict[str, str]:
    return {name: entry.get("verdict", "error")
            for name, entry in doc.get("experiments", {}).items()}


@dataclass
class VerdictDiff:
    """Every verdict movement between two validation documents."""

    flips: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    softened: list[str] = field(default_factory=list)  # ✔ -> ≈
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    missing_experiments: list[str] = field(default_factory=list)
    still_failing: list[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return bool(self.flips or self.missing_experiments)

    def render(self) -> str:
        lines = []
        for title, items in (
            ("verdict flips (regressions)", self.flips),
            ("experiments missing from candidate", self.missing_experiments),
            ("still failing in both", self.still_failing),
            ("softened ✔ -> ≈", self.softened),
            ("improvements", self.improvements),
            ("new claims", self.added),
            ("claims only in baseline", self.removed),
        ):
            if items:
                lines.append(f"{title}:")
                lines.extend(f"  {item}" for item in items)
        lines.append("verdict diff: "
                     + ("REGRESSED" if self.regressed else "ok")
                     + f" ({len(self.flips)} flip(s), "
                       f"{len(self.missing_experiments)} missing)")
        return "\n".join(lines)


def diff_validations(baseline: dict, candidate: dict) -> VerdictDiff:
    """Compare two validation documents, claim by claim."""
    diff = VerdictDiff()

    base_exp = _experiment_verdicts(baseline)
    cand_exp = _experiment_verdicts(candidate)
    for name in sorted(base_exp):
        if name not in cand_exp:
            diff.missing_experiments.append(name)
            continue
        was, now = base_exp[name], cand_exp[name]
        if was == now:
            if now in FAILING_VERDICTS:
                diff.still_failing.append(f"{name}: {now}")
            continue
        label = f"{name}: {was} -> {now}"
        if now in FAILING_VERDICTS and was not in FAILING_VERDICTS:
            diff.flips.append(label)
        elif was in FAILING_VERDICTS and now not in FAILING_VERDICTS:
            diff.improvements.append(label)
        elif was == "pass" and now == "pass-deviation":
            diff.softened.append(label)
        else:
            diff.improvements.append(label)

    base_claims = _claim_statuses(baseline)
    cand_claims = _claim_statuses(candidate)
    for claim_id in sorted(base_claims):
        if claim_id not in cand_claims:
            diff.removed.append(claim_id)
            continue
        was, now = base_claims[claim_id], cand_claims[claim_id]
        if was == now:
            continue
        label = f"{claim_id}: {was} -> {now}"
        if now in ("fail", "error") and was == "pass":
            diff.flips.append(label)
        else:
            diff.improvements.append(label)
    diff.added.extend(sorted(set(cand_claims) - set(base_claims)))
    return diff
