"""Validation document I/O and markdown verdict tables.

Rendering is a pure function of the document — byte-identical output
for identical input — so the round trip
``results → validation.json → markdown`` can be regression-tested and
the nightly job-summary table never wobbles without a verdict change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ConfigError
from repro.validate.evaluate import (
    FAILING_VERDICTS,
    VERDICT_SYMBOLS,
    is_validation_doc,
)


def write_validation(path: Union[str, Path], doc: dict) -> Path:
    """Write the document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                               ensure_ascii=False) + "\n",
                    encoding="utf-8")
    return path


def load_validation(path: Union[str, Path]) -> dict:
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"no validation document at {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path} is not valid JSON: {exc}") from None
    if not is_validation_doc(doc):
        raise ConfigError(
            f"{path} is not a repro.validation document "
            f"(schema: {doc.get('schema') if isinstance(doc, dict) else None!r})")
    return doc


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------

def _md_escape(text: str) -> str:
    return str(text).replace("|", "\\|").replace("\n", " ")


def render_verdict_table(doc: dict) -> str:
    """The one-line-per-experiment verdict table (the EXPERIMENTS.md
    verdict column, regenerated)."""
    lines = [
        "| experiment | verdict | claims | checked |",
        "|---|---|---|---|",
    ]
    for name, entry in doc["experiments"].items():
        symbol = VERDICT_SYMBOLS.get(entry["verdict"], "?")
        claims = entry["claims"]
        passed = sum(1 for c in claims if c["status"] == "pass")
        ids = ", ".join(c["id"] for c in claims) or "—"
        if entry.get("error"):
            ids = f"run failed: {_md_escape(entry['error'])}"
        lines.append(
            f"| {_md_escape(entry['title'])} | {symbol} {entry['verdict']} "
            f"| {passed}/{len(claims)} | {_md_escape(ids)} |")
    summary = doc.get("summary", {})
    lines.append("")
    lines.append(
        f"{summary.get('claims', 0)} claims over "
        f"{summary.get('experiments', 0)} experiments at scale "
        f"`{doc.get('scale', '?')}`: "
        f"{summary.get('passed', 0)} passed, "
        f"{summary.get('failed', 0)} failed, "
        f"{summary.get('errors', 0)} errors.")
    return "\n".join(lines)


def render_markdown(doc: dict) -> str:
    """Full report: verdict table plus a per-claim detail table."""
    lines = ["# Paper-shape validation", ""]
    lines.append(render_verdict_table(doc))
    lines.append("")
    lines.append("## Claims")
    lines.append("")
    lines.append("| claim | paper | predicate | status | observed |")
    lines.append("|---|---|---|---|---|")
    for entry in doc["experiments"].values():
        for claim in entry["claims"]:
            status = claim["status"]
            mark = {"pass": "✔", "fail": "✗", "error": "!"}.get(status, "?")
            note = claim.get("deviation")
            status_text = f"{mark} {status}" + (" (≈)" if note else "")
            lines.append(
                f"| `{claim['id']}` | {_md_escape(claim.get('paper', ''))} "
                f"| {claim['predicate']} | {status_text} "
                f"| {_md_escape(claim['observed'])} |")
    failing = [
        f"`{claim['id']}`: {claim['claim']} — {claim['observed']}"
        for entry in doc["experiments"].values()
        for claim in entry["claims"]
        if claim["status"] != "pass"
    ]
    if failing:
        lines.append("")
        lines.append("## Failing claims")
        lines.append("")
        for item in failing:
            lines.append(f"- {item}")
    deviations = [
        f"`{claim['id']}`: {claim['deviation']}"
        for entry in doc["experiments"].values()
        for claim in entry["claims"]
        if claim.get("deviation")
    ]
    if deviations:
        lines.append("")
        lines.append("## Known deviations (≈)")
        lines.append("")
        for item in deviations:
            lines.append(f"- {item}")
    return "\n".join(lines) + "\n"


def render_summary_line(doc: dict) -> str:
    """One terminal line: the runner prints this after --validate."""
    summary = doc.get("summary", {})
    failing = [name for name, entry in doc["experiments"].items()
               if entry["verdict"] in FAILING_VERDICTS]
    text = (f"[validation: {summary.get('passed', 0)}/"
            f"{summary.get('claims', 0)} claims passed over "
            f"{summary.get('experiments', 0)} experiments]")
    if failing:
        text += f" FAILING: {', '.join(failing)}"
    return text
