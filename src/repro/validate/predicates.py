"""Shape predicates: typed, declarative assertions over result tables.

A *claim* binds one sentence of the paper ("eDRAM bandwidth peaks
mid-range and falls past ~50% hit rate") to a predicate evaluated
against the experiment's rendered :class:`ExperimentResult` —
``ordering``, ``monotone_rising`` / ``monotone_falling``,
``peak_then_fall``, ``crossover``, ``within_rel``, ``sign``.

Predicates never look at raw simulator state; they read the same table
the runner prints, through two selectors:

- :class:`Col` — one column by header name, ordered as rendered, with
  aggregate rows (``GMEAN*`` / ``MEAN*``) excluded unless named;
- :class:`Cells` — an explicit ordered list of ``(row_label, header)``
  scalars, for claims that compare specific cells (``GMEAN`` of one
  policy against another, a single workload's bar).

Evaluation outcomes are three-valued: a predicate *passes* or *fails*
on data it understands, and raises :class:`ClaimDataError` on data it
cannot judge (missing rows, too-short series) — the evaluator records
the latter as ``error``, which gates CI exactly like a failure.
Non-finite values (NaN/inf) fail rather than error: a NaN in a result
table means the shape did not reproduce, not that the claim is
malformed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import ReproError

#: Row labels with these prefixes are aggregates, excluded from
#: whole-column selections unless explicitly requested.
AGGREGATE_PREFIXES = ("GMEAN", "MEAN")


class ClaimDataError(ReproError):
    """The table cannot answer the claim (missing row/column, too few
    points) — recorded as an ``error`` verdict, not a failure."""


# ----------------------------------------------------------------------
# Table adapter
# ----------------------------------------------------------------------

class ResultTable:
    """Read-only view of an ExperimentResult for predicate evaluation."""

    def __init__(self, headers: Sequence[str], rows: Sequence[Sequence]):
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self._col_index = {h: i for i, h in enumerate(self.headers)}

    @classmethod
    def of(cls, result) -> "ResultTable":
        return cls(result.headers, result.rows)

    def col_index(self, header: str) -> int:
        try:
            return self._col_index[header]
        except KeyError:
            raise ClaimDataError(
                f"no column {header!r}; have {self.headers}") from None

    def row(self, label: str) -> list:
        for row in self.rows:
            if row and str(row[0]) == label:
                return row
        raise ClaimDataError(
            f"no row labelled {label!r}; have "
            f"{[str(r[0]) for r in self.rows if r]}")

    def value(self, label: str, header: str) -> float:
        raw = self.row(label)[self.col_index(header)]
        return _as_float(raw, f"{label}/{header}")

    @staticmethod
    def is_aggregate(label: str) -> bool:
        return str(label).startswith(AGGREGATE_PREFIXES)


def _as_float(raw, where: str) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise ClaimDataError(
                f"non-numeric value {raw!r} at {where}") from None
    return float(raw)


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Col:
    """One column, as an ordered ``(row_label, value)`` series.

    ``rows`` restricts (and re-orders) the series to those labels;
    empty means every non-aggregate row in table order.
    """

    header: str
    rows: tuple = ()

    def resolve(self, table: ResultTable) -> list:
        if self.rows:
            return [(label, table.value(label, self.header))
                    for label in self.rows]
        index = table.col_index(self.header)
        series = [(str(row[0]), _as_float(row[index],
                                          f"{row[0]}/{self.header}"))
                  for row in table.rows
                  if row and not table.is_aggregate(row[0])]
        if not series:
            raise ClaimDataError(
                f"column {self.header!r} has no non-aggregate rows")
        return series


@dataclass(frozen=True)
class Cells:
    """Explicit ordered scalars: ``((row_label, header), ...)``."""

    points: tuple

    def resolve(self, table: ResultTable) -> list:
        if not self.points:
            raise ClaimDataError("empty cell selection")
        return [(f"{label}/{header}", table.value(label, header))
                for label, header in self.points]


Selector = Union[Col, Cells]


def _finite(series: Sequence) -> Optional[str]:
    """Label of the first non-finite point, if any."""
    for label, value in series:
        if not math.isfinite(value):
            return f"{label}={value}"
    return None


def _fmt(series: Sequence) -> str:
    return " ".join(f"{label}={value:.4g}" for label, value in series)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Predicate:
    """Base: subclasses implement ``check`` over resolved series."""

    def evaluate(self, table: ResultTable):
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.lstrip("_")


@dataclass(frozen=True)
class _Ordering(Predicate):
    """Values, in the order listed, strictly decrease (``margin`` > 0
    demands a minimum gap; ties fail)."""

    cells: Cells
    margin: float = 0.0

    name = "ordering"

    def evaluate(self, table: ResultTable):
        series = self.cells.resolve(table)
        if len(series) < 2:
            raise ClaimDataError("ordering needs at least two values")
        bad = _finite(series)
        if bad:
            return False, f"non-finite value {bad}"
        ok = all(a[1] > b[1] + self.margin
                 for a, b in zip(series, series[1:]))
        return ok, " > ".join(f"{label}={value:.4g}"
                              for label, value in series)


def ordering(*points, margin: float = 0.0) -> _Ordering:
    """``ordering((rowA, col), (rowB, col), ...)`` — listed first must
    be strictly greater than the next, all the way down."""
    return _Ordering(Cells(tuple(points)), margin=margin)


@dataclass(frozen=True)
class _Monotone(Predicate):
    """Series rises (or falls) along its rendered order.

    ``tol`` forgives counter-direction wobbles up to that relative
    size; ``strict`` additionally rejects ties.
    """

    series: Selector
    rising: bool = True
    tol: float = 0.0
    strict: bool = False

    @property
    def name(self) -> str:
        return "monotone_rising" if self.rising else "monotone_falling"

    def evaluate(self, table: ResultTable):
        series = self.series.resolve(table)
        if len(series) < 2:
            raise ClaimDataError(
                f"{self.name} needs at least two points, got {len(series)}")
        bad = _finite(series)
        if bad:
            return False, f"non-finite value {bad}"
        direction = 1.0 if self.rising else -1.0
        ok = True
        for (_, prev), (_, curr) in zip(series, series[1:]):
            step = direction * (curr - prev)
            slack = self.tol * max(abs(prev), abs(curr))
            if step < -slack or (self.strict and step <= 0):
                ok = False
                break
        arrow = " -> ".join(f"{value:.4g}" for _, value in series)
        return ok, arrow


def monotone_rising(series: Selector, tol: float = 0.0,
                    strict: bool = False) -> _Monotone:
    return _Monotone(series, rising=True, tol=tol, strict=strict)


def monotone_falling(series: Selector, tol: float = 0.0,
                     strict: bool = False) -> _Monotone:
    return _Monotone(series, rising=False, tol=tol, strict=strict)


@dataclass(frozen=True)
class _PeakThenFall(Predicate):
    """The series peaks at an interior point and ends below the peak.

    ``peak_within`` (row labels) restricts where the maximum may sit;
    ``min_drop`` is the relative fall required from peak to final value
    (0.05 = the last point sits at least 5% below the peak).
    """

    series: Selector
    peak_within: tuple = ()
    min_drop: float = 0.0

    name = "peak_then_fall"

    def evaluate(self, table: ResultTable):
        series = self.series.resolve(table)
        if len(series) < 3:
            raise ClaimDataError(
                f"peak_then_fall needs at least three points, "
                f"got {len(series)}")
        bad = _finite(series)
        if bad:
            return False, f"non-finite value {bad}"
        peak_label, peak = max(series, key=lambda point: point[1])
        peak_index = next(i for i, p in enumerate(series) if p[1] == peak)
        last_label, last = series[-1]
        interior = 0 < peak_index < len(series) - 1
        in_window = (not self.peak_within
                     or series[peak_index][0] in self.peak_within)
        fell = last < peak - self.min_drop * abs(peak)
        observed = (f"peak {peak:.4g} at {peak_label}, "
                    f"ends {last:.4g} at {last_label}")
        if not in_window:
            observed += f" (peak outside {list(self.peak_within)})"
        return interior and in_window and fell, observed


def peak_then_fall(series: Selector, peak_within: Sequence[str] = (),
                   min_drop: float = 0.0) -> _PeakThenFall:
    return _PeakThenFall(series, peak_within=tuple(peak_within),
                         min_drop=min_drop)


@dataclass(frozen=True)
class _Crossover(Predicate):
    """Two series swap order somewhere inside a label window.

    ``a`` must be strictly above ``b`` at ``x_range[0]`` and strictly
    below at ``x_range[1]`` (or vice versa): the sign of ``a - b``
    flips across the window.
    """

    a: Col
    b: Col
    x_range: tuple

    name = "crossover"

    def evaluate(self, table: ResultTable):
        if len(self.x_range) != 2:
            raise ClaimDataError("crossover needs a (start, end) label pair")
        start, end = self.x_range
        diffs = []
        for label in (start, end):
            av = table.value(label, self.a.header)
            bv = table.value(label, self.b.header)
            if not (math.isfinite(av) and math.isfinite(bv)):
                return False, f"non-finite value at {label}"
            diffs.append(av - bv)
        observed = (f"{self.a.header}-{self.b.header}: "
                    f"{diffs[0]:+.4g} at {start}, {diffs[1]:+.4g} at {end}")
        flipped = (diffs[0] > 0 > diffs[1]) or (diffs[0] < 0 < diffs[1])
        return flipped, observed


def crossover(a: Union[str, Col], b: Union[str, Col],
              x_range: Sequence[str]) -> _Crossover:
    a = Col(a) if isinstance(a, str) else a
    b = Col(b) if isinstance(b, str) else b
    return _Crossover(a, b, tuple(x_range))


@dataclass(frozen=True)
class _WithinRel(Predicate):
    """Every point of ``series`` sits within ``tol`` (relative) of its
    reference — a paired column, or one analytic constant.

    ``floor`` guards the relative test against near-zero references.
    """

    series: Selector
    tol: float
    reference: Optional[Selector] = None
    target: Optional[float] = None
    floor: float = 1e-9

    name = "within_rel"

    def evaluate(self, table: ResultTable):
        series = self.series.resolve(table)
        if self.reference is not None:
            refs = self.reference.resolve(table)
            if len(refs) != len(series):
                raise ClaimDataError(
                    f"within_rel: series has {len(series)} points but "
                    f"reference has {len(refs)}")
        elif self.target is not None:
            refs = [(label, self.target) for label, _ in series]
        else:
            raise ClaimDataError("within_rel needs a reference or target")
        worst = 0.0
        worst_label = series[0][0]
        for (label, value), (_, ref) in zip(series, refs):
            if not (math.isfinite(value) and math.isfinite(ref)):
                return False, f"non-finite value at {label}"
            rel = abs(value - ref) / max(abs(ref), self.floor)
            if rel > worst:
                worst, worst_label = rel, label
        ok = worst <= self.tol
        return ok, (f"max deviation {worst:.1%} at {worst_label} "
                    f"(tol {self.tol:.0%})")


def within_rel(series: Selector, tol: float, *,
               reference: Optional[Selector] = None,
               target: Optional[float] = None) -> _WithinRel:
    return _WithinRel(series, tol, reference=reference, target=target)


@dataclass(frozen=True)
class _Sign(Predicate):
    """One scalar (or every point of a series) clears a bound:
    strictly above ``above`` and/or strictly below ``below``."""

    series: Selector
    above: Optional[float] = None
    below: Optional[float] = None

    name = "sign"

    def evaluate(self, table: ResultTable):
        if self.above is None and self.below is None:
            raise ClaimDataError("sign needs an 'above' or 'below' bound")
        series = self.series.resolve(table)
        bad = _finite(series)
        if bad:
            return False, f"non-finite value {bad}"
        ok = all((self.above is None or value > self.above)
                 and (self.below is None or value < self.below)
                 for _, value in series)
        bounds = []
        if self.above is not None:
            bounds.append(f"> {self.above:g}")
        if self.below is not None:
            bounds.append(f"< {self.below:g}")
        return ok, f"{_fmt(series)} (want {' and '.join(bounds)})"


def sign(point: Union[Selector, tuple], *, above: Optional[float] = None,
         below: Optional[float] = None) -> _Sign:
    """``sign((row, col), above=1.0)`` — e.g. a speedup strictly
    beating its baseline. Accepts a full selector for whole-series
    bounds ("no workload loses")."""
    if isinstance(point, tuple) and not isinstance(point, (Col, Cells)):
        point = Cells((point,))
    return _Sign(point, above=above, below=below)


# ----------------------------------------------------------------------
# Claims
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Claim:
    """One machine-checkable paper claim.

    ``deviation`` is non-empty when the claim encodes a reproduced
    shape that knowingly deviates from the paper's exact statement
    (EXPERIMENTS.md's ≈ verdicts) — the note says how.
    """

    id: str
    claim: str
    predicate: Predicate
    paper: str = ""
    deviation: str = ""

    def evaluate(self, result) -> dict:
        """Judge this claim against a rendered result table."""
        table = ResultTable.of(result)
        entry = {
            "id": self.id,
            "claim": self.claim,
            "paper": self.paper,
            "predicate": self.predicate.name,
            "deviation": self.deviation,
        }
        try:
            passed, observed = self.predicate.evaluate(table)
        except ClaimDataError as exc:
            entry["status"] = "error"
            entry["observed"] = str(exc)
        else:
            entry["status"] = "pass" if passed else "fail"
            entry["observed"] = observed
        return entry
