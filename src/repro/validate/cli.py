"""``repro-validate`` — run, report, and diff paper-shape verdicts.

Usage::

    repro-validate run all --scale smoke --jobs 8    # run + judge claims
    repro-validate run fig06 fig11 --out v.json --md verdicts.md
    repro-validate report validation.json            # re-render a document
    repro-validate diff validation.json              # vs committed VERDICTS.json
    repro-validate diff baseline.json candidate.json # explicit pair
    repro-validate diff v.json --only baselines prefetch  # scoped gate

``run`` executes the named experiments through the same cell engine as
``repro-experiment`` (shared cache and all), judges every registered
claim, writes ``validation.json`` plus an optional markdown verdict
table, and exits non-zero when any claim fails. ``diff`` exits
non-zero when a verdict flipped into a failing state relative to the
baseline — the CI regression gate for the paper's shapes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.backends import BACKEND_NAMES
from repro.errors import ReproError
from repro.validate.diff import diff_validations
from repro.validate.evaluate import (
    build_validation,
    doc_failed,
    evaluate_result,
    failed_entry,
)
from repro.validate.report import (
    load_validation,
    render_markdown,
    render_summary_line,
    write_validation,
)

#: The committed baseline ``repro-validate diff`` compares against by
#: default (regenerate with ``repro-validate run all --out VERDICTS.json``).
DEFAULT_BASELINE = "VERDICTS.json"


def validate_experiments(
    names: Sequence[str],
    scale: Optional[str] = None,
    *,
    jobs: int = 1,
    cache=None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> dict:
    """Run experiments and judge their claims; returns the document.

    Experiments without a registered claims block are recorded with an
    empty claim list (verdict ``pass``) so the document always covers
    the requested set. Experiments that fail to run are recorded as
    ``error`` — the document never silently shrinks. Per-experiment
    cell-engine stats (executed vs cache-hit counts) are printed as
    each experiment completes so CI logs show how warm the cache was;
    they are deliberately kept out of the document, which must stay
    byte-stable across warm and cold regenerations.
    """
    from repro.experiments.exec import run_spec
    from repro.experiments.registry import get_spec

    entries: dict[str, dict] = {}
    executed = cache_hits = 0
    for name in names:
        spec = get_spec(name)
        try:
            result = run_spec(spec, scale=scale, jobs=jobs, cache=cache,
                              resume=resume, backend=backend)
        except ReproError as exc:
            entries[name] = failed_entry(spec.title, str(exc))
            continue
        stats = getattr(result, "stats", None)
        if stats is not None:
            executed += stats.executed
            cache_hits += stats.cache_hits
            print(f"[{name}: {stats.summary()}]")
        entry = evaluate_result(spec, result)
        if entry is None:
            entry = {"title": spec.title, "verdict": "pass", "claims": []}
        entries[name] = entry
    print(f"[cells across {len(names)} experiment(s): "
          f"{executed} executed, {cache_hits} cache hits]")
    scale_name = scale or os.environ.get("REPRO_SCALE", "smoke")
    return build_validation(entries, scale=scale_name)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.cellcache import CellCache, default_cache_dir
    from repro.experiments.registry import EXPERIMENTS

    names = (list(EXPERIMENTS) if "all" in args.experiments
             else args.experiments)
    cache = None if args.no_cache else CellCache(
        args.cache_dir or default_cache_dir())
    doc = validate_experiments(names, args.scale, jobs=max(1, args.jobs),
                               cache=cache, resume=args.resume,
                               backend=args.backend)
    path = write_validation(args.out, doc)
    print(f"[validation document written to {path}]")
    if args.md:
        md = Path(args.md)
        md.parent.mkdir(parents=True, exist_ok=True)
        md.write_text(render_markdown(doc), encoding="utf-8")
        print(f"[markdown verdict table written to {md}]")
    print(render_summary_line(doc))
    if doc_failed(doc) and not args.no_fail:
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    doc = load_validation(args.document)
    text = render_markdown(doc)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"[report written to {out}]")
    else:
        print(text, end="")
    return 0


def _restrict(doc: dict, names: Sequence[str], path: str,
              strict: bool = False) -> dict:
    """Narrow a document to the named experiments (for ``diff --only``).

    ``strict`` errors on names the document lacks — applied to the
    candidate (a gate must not silently skip a vanished experiment) but
    not the baseline, so new experiments still diff cleanly against a
    baseline that predates them.
    """
    experiments = doc.get("experiments", {})
    unknown = sorted(set(names) - set(experiments))
    if unknown and strict:
        raise ReproError(
            f"--only names not in {path}: {', '.join(unknown)} "
            f"(has: {', '.join(sorted(experiments))})")
    return {**doc,
            "experiments": {n: experiments[n] for n in names
                            if n in experiments}}


def cmd_diff(args: argparse.Namespace) -> int:
    if args.candidate is None:
        baseline_path, candidate_path = DEFAULT_BASELINE, args.baseline
    else:
        baseline_path, candidate_path = args.baseline, args.candidate
    baseline = load_validation(baseline_path)
    candidate = load_validation(candidate_path)
    scope = ""
    if args.only:
        baseline = _restrict(baseline, args.only, baseline_path)
        candidate = _restrict(candidate, args.only, candidate_path,
                              strict=True)
        scope = f" (only: {', '.join(args.only)})"
    print(f"[diffing {candidate_path} against {baseline_path}{scope}]")
    diff = diff_validations(baseline, candidate)
    print(diff.render())
    if diff.regressed and not args.no_fail:
        return 1
    return 0


# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Machine-check the paper's shape claims.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run experiments and judge their registered claims")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids or 'all'")
    run.add_argument("--scale", choices=("smoke", "small", "paper"),
                     default=None,
                     help="run scale (default: $REPRO_SCALE or smoke)")
    run.add_argument("--jobs", type=int, metavar="N",
                     default=os.cpu_count() or 1,
                     help="worker processes (default: all cores)")
    run.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="cell cache location (shared with "
                          "repro-experiment)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk cell cache")
    run.add_argument("--resume", action="store_true",
                     help="retry cells whose previous attempt failed")
    run.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                     help="simulation backend (python, numpy, auto); "
                          "results are bit-identical across backends")
    run.add_argument("--out", metavar="FILE", default="validation.json",
                     help="validation document path (default: "
                          "validation.json)")
    run.add_argument("--md", metavar="FILE", default=None,
                     help="also write a markdown verdict table")
    run.add_argument("--no-fail", action="store_true",
                     help="exit 0 even when claims fail")
    run.set_defaults(fn=cmd_run)

    report = sub.add_parser(
        "report", help="render a validation document as markdown")
    report.add_argument("document", help="validation.json path")
    report.add_argument("--out", metavar="FILE", default=None,
                        help="write here instead of stdout")
    report.set_defaults(fn=cmd_report)

    diff = sub.add_parser(
        "diff", help="compare verdicts; exit 1 when one flips to failing")
    diff.add_argument("baseline",
                      help=f"baseline document (or the candidate, with the "
                           f"baseline defaulting to {DEFAULT_BASELINE})")
    diff.add_argument("candidate", nargs="?", default=None,
                      help="candidate document")
    diff.add_argument("--only", nargs="+", metavar="EXPERIMENT",
                      default=None,
                      help="restrict the diff to these experiments "
                           "(the candidate must contain them all)")
    diff.add_argument("--no-fail", action="store_true",
                      help="report but always exit 0")
    diff.set_defaults(fn=cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
