"""Executable paper-shape validation.

EXPERIMENTS.md records, for every figure and table, whether the
*shape* of the paper's claim (an ordering, a direction, a crossover)
survives the reproduction. This package turns those prose verdicts
into machine-checkable assertions: each experiment registers its paper
claims as typed predicates over its rendered result table, the
evaluator produces a ``validation.json`` document plus a markdown
verdict table, and the differ turns a verdict flip (✔ → ✗) into a
non-zero exit for CI.

- :mod:`repro.validate.predicates` — the shape-predicate library
  (``ordering``, ``monotone_rising``, ``peak_then_fall``,
  ``crossover``, ``within_rel``, ``sign``) and the claim container;
- :mod:`repro.validate.evaluate` — claims × results → validation doc;
- :mod:`repro.validate.report` — JSON round-trip and markdown tables;
- :mod:`repro.validate.diff` — baseline/candidate verdict comparison;
- :mod:`repro.validate.cli` — the ``repro-validate`` command.
"""

from repro.validate.predicates import (
    Claim,
    ClaimDataError,
    Col,
    Cells,
    crossover,
    monotone_falling,
    monotone_rising,
    ordering,
    peak_then_fall,
    sign,
    within_rel,
)
from repro.validate.evaluate import (
    build_validation,
    evaluate_claims,
    evaluate_result,
)
from repro.validate.report import (
    load_validation,
    render_markdown,
    render_verdict_table,
    write_validation,
)
from repro.validate.diff import VerdictDiff, diff_validations

__all__ = [
    "Claim",
    "ClaimDataError",
    "Col",
    "Cells",
    "VerdictDiff",
    "build_validation",
    "crossover",
    "diff_validations",
    "evaluate_claims",
    "evaluate_result",
    "load_validation",
    "monotone_falling",
    "monotone_rising",
    "ordering",
    "peak_then_fall",
    "render_markdown",
    "render_verdict_table",
    "sign",
    "within_rel",
    "write_validation",
]
