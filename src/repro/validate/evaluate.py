"""Claims × results → the validation document.

The document is deliberately deterministic: no timestamps, no git SHA,
no wall-clock — two runs over identical results produce byte-identical
JSON, so ``repro-validate diff`` and the committed ``VERDICTS.json``
baseline see only genuine verdict changes.

Experiment verdicts fold the claim statuses:

- ``pass`` (✔)  — every claim passed, none carries a deviation note;
- ``pass-deviation`` (≈) — every claim passed, at least one encodes a
  shape that knowingly deviates from the paper's exact statement;
- ``fail`` (✗)  — at least one claim failed;
- ``error`` (!) — a claim could not be judged (missing data), or the
  experiment itself failed to run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

SCHEMA = "repro.validation/1"

#: Verdict → the symbol EXPERIMENTS.md uses in its headings.
VERDICT_SYMBOLS = {
    "pass": "✔",            # ✔
    "pass-deviation": "≈",  # ≈
    "fail": "✗",            # ✗
    "error": "!",
}

#: Verdicts that gate CI (repro-validate run/diff exit non-zero).
FAILING_VERDICTS = ("fail", "error")


def evaluate_claims(claims: Sequence, result) -> list[dict]:
    """Judge each claim against one rendered ExperimentResult."""
    return [claim.evaluate(result) for claim in claims]


def _fold_verdict(claim_entries: Sequence[dict]) -> str:
    statuses = {entry["status"] for entry in claim_entries}
    if "error" in statuses:
        return "error"
    if "fail" in statuses:
        return "fail"
    if any(entry.get("deviation") for entry in claim_entries):
        return "pass-deviation"
    return "pass"


def evaluate_result(spec, result) -> Optional[dict]:
    """One experiment's validation entry, or None if it has no claims."""
    if spec.claims is None:
        return None
    claim_entries = evaluate_claims(tuple(spec.claims()), result)
    return {
        "title": spec.title,
        "verdict": _fold_verdict(claim_entries),
        "claims": claim_entries,
    }


def failed_entry(spec_title: str, error: str) -> dict:
    """The entry recorded when the experiment itself failed to run."""
    return {"title": spec_title, "verdict": "error", "claims": [],
            "error": error}


def build_validation(entries: Dict[str, dict], scale: str) -> dict:
    """Assemble per-experiment entries into the validation document."""
    experiments = {name: entries[name] for name in sorted(entries)}
    claims = [claim for entry in experiments.values()
              for claim in entry["claims"]]
    summary = {
        "experiments": len(experiments),
        "claims": len(claims),
        "passed": sum(1 for c in claims if c["status"] == "pass"),
        "failed": sum(1 for c in claims if c["status"] == "fail"),
        "errors": (sum(1 for c in claims if c["status"] == "error")
                   + sum(1 for e in experiments.values() if e.get("error"))),
    }
    return {
        "schema": SCHEMA,
        "scale": scale,
        "experiments": experiments,
        "summary": summary,
    }


def is_validation_doc(doc) -> bool:
    """Does this parsed JSON look like one of our validation documents?"""
    return (isinstance(doc, dict)
            and str(doc.get("schema", "")).startswith("repro.validation/"))


def doc_failed(doc: dict) -> bool:
    """CI gate: any experiment verdict in a failing state."""
    return any(entry.get("verdict") in FAILING_VERDICTS
               for entry in doc.get("experiments", {}).values())
