"""Alloy cache array: direct-mapped, tag-and-data (TAD) fused in DRAM.

Each set holds exactly one 64-byte block whose tag travels with the data
as a 72-byte TAD unit (three HBM channel cycles instead of two). This
module models the functional array; TAD bandwidth accounting and the
hit/miss predictor live in :mod:`repro.hierarchy.msc_alloy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

# 72-byte TAD occupies 3 HBM channel cycles (burst 2 covers 64 bytes).
TAD_BURST_DEVICE_CYCLES = 3


@dataclass(frozen=True)
class AlloyEviction:
    line: int
    dirty: bool


class AlloyCacheArray:
    """Direct-mapped cache keyed by 64-byte line address."""

    def __init__(self, name: str, capacity_bytes: int, line_bytes: int = 64) -> None:
        if capacity_bytes % line_bytes != 0:
            raise ConfigError(f"{name}: capacity not a multiple of the line size")
        self.name = name
        self.num_sets = capacity_bytes // line_bytes
        # set index -> (resident line, dirty)
        self._sets: dict[int, tuple[int, bool]] = {}

        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    # ------------------------------------------------------------------
    def probe(self, line: int) -> bool:
        entry = self._sets.get(self.set_index(line))
        return entry is not None and entry[0] == line

    def is_dirty(self, line: int) -> bool:
        entry = self._sets.get(self.set_index(line))
        return entry is not None and entry[0] == line and entry[1]

    def set_is_dirty(self, set_index: int) -> bool:
        """Dirty bit of whatever block occupies a set (DBC's source)."""
        entry = self._sets.get(set_index)
        return entry is not None and entry[1]

    def read(self, line: int) -> bool:
        hit = self.probe(line)
        if hit:
            self.read_hits += 1
        else:
            self.read_misses += 1
        return hit

    def write(self, line: int) -> bool:
        """Demand write; the block becomes resident and dirty on hit.

        Returns True on hit. On miss the caller decides whether to
        allocate (Alloy installs the write with a TAD write).
        """
        idx = self.set_index(line)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == line:
            self._sets[idx] = (line, True)
            self.write_hits += 1
            return True
        self.write_misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[AlloyEviction]:
        """Install a block, returning the displaced victim (if any)."""
        idx = self.set_index(line)
        old = self._sets.get(idx)
        self._sets[idx] = (line, dirty)
        if old is not None and old[0] != line:
            self.evictions += 1
            return AlloyEviction(line=old[0], dirty=old[1])
        if old is not None and old[0] == line:
            # Refill of the resident block merges dirtiness.
            self._sets[idx] = (line, dirty or old[1])
        return None

    def invalidate(self, line: int) -> bool:
        idx = self.set_index(line)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == line:
            del self._sets[idx]
            return entry[1]
        return False

    def clean(self, line: int) -> None:
        idx = self.set_index(line)
        entry = self._sets.get(idx)
        if entry is not None and entry[0] == line:
            self._sets[idx] = (line, False)

    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    def hit_rate(self) -> float:
        total = self.reads + self.writes
        return (self.read_hits + self.write_hits) / total if total else 0.0
