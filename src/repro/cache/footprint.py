"""Footprint prefetcher history (Jevdjic et al., used by the paper's
sectored DRAM cache baseline).

When a sector is evicted, the bitmask of blocks that were demand-touched
during its residency is recorded. When the same sector is re-allocated,
those blocks are prefetched from main memory into the new sector, raising
the hit rate at the cost of extra main-memory reads and fill writes.

The table is bounded: a simple FIFO of the most recent ``capacity``
sector footprints (dict insertion order gives us FIFO for free).
"""

from __future__ import annotations


class FootprintPredictor:
    """Sector-id keyed footprint history with FIFO replacement."""

    def __init__(self, capacity: int = 64 * 1024) -> None:
        self.capacity = capacity
        self._table: dict[int, int] = {}
        self.predictions = 0
        self.records = 0

    def record(self, sector_id: int, touched_mask: int) -> None:
        """Store the touched-block mask of an evicted sector."""
        if touched_mask == 0:
            return
        if sector_id in self._table:
            del self._table[sector_id]  # refresh insertion order
        elif len(self._table) >= self.capacity:
            oldest = next(iter(self._table))
            del self._table[oldest]
        self._table[sector_id] = touched_mask
        self.records += 1

    def predict(self, sector_id: int, demand_block: int) -> int:
        """Blocks to prefetch on allocation (mask minus the demand block).

        Returns 0 for never-seen sectors (no prefetch).
        """
        mask = self._table.get(sector_id, 0)
        if mask:
            self.predictions += 1
        return mask & ~(1 << demand_block)

    def __len__(self) -> int:
        return len(self._table)
