"""Cache substrates.

Functional (state-only) models of every cache structure the paper uses:

- :mod:`repro.cache.sram_cache` — generic set-associative SRAM cache
  (L1/L2/L3 and the building block for SRAM metadata structures);
- :mod:`repro.cache.sectored` — sectored (sub-blocked) cache array used by
  both the die-stacked DRAM cache (4 KB sectors) and the eDRAM cache
  (1 KB sectors);
- :mod:`repro.cache.tag_cache` — the 32K-entry SRAM tag cache of the
  optimized baseline;
- :mod:`repro.cache.alloy` — direct-mapped TAD array of the Alloy cache;
- :mod:`repro.cache.dbc` — the dirty-bit cache that enables IFRM on Alloy;
- :mod:`repro.cache.footprint` — footprint prefetcher history table;
- :mod:`repro.cache.replacement` — NRU/LRU policies.

Timing (who pays which DRAM access for what) lives in the controllers
under :mod:`repro.hierarchy`.
"""

from repro.cache.replacement import LRUPolicy, NRUPolicy, make_policy
from repro.cache.sram_cache import SRAMCache
from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.cache.tag_cache import TagCache
from repro.cache.alloy import AlloyCacheArray
from repro.cache.dbc import DirtyBitCache
from repro.cache.footprint import FootprintPredictor

__all__ = [
    "LRUPolicy",
    "NRUPolicy",
    "make_policy",
    "SRAMCache",
    "SectoredCacheArray",
    "SectorProbe",
    "TagCache",
    "AlloyCacheArray",
    "DirtyBitCache",
    "FootprintPredictor",
]
