"""Dirty-bit cache (DBC) for the Alloy cache.

SRAM structure borrowed from one L3 way: 32K entries, 4-way, each entry
holding the dirty bits of a *group* of 64 consecutive Alloy cache sets.
A DBC hit on a read tells the controller whether the accessed set is
dirty; a clean set is eligible for IFRM without fetching the TAD.

The authoritative dirty bits live in the Alloy array; the DBC caches
them. On a DBC miss during a read the controller may install the entry
from array state (a modeling simplification of the hardware's gradual
population via write traffic).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.sram_cache import SRAMCache

DBC_ENTRIES = 32 * 1024
DBC_ASSOC = 4
DBC_GROUP_SETS = 64
DBC_LOOKUP_CYCLES = 5


class DirtyBitCache:
    """Caches per-set dirty bits for groups of 64 Alloy sets."""

    def __init__(
        self,
        entries: int = DBC_ENTRIES,
        assoc: int = DBC_ASSOC,
        group_sets: int = DBC_GROUP_SETS,
        lookup_cycles: int = DBC_LOOKUP_CYCLES,
    ) -> None:
        self._cache = SRAMCache(
            "dbc", size_bytes=entries, assoc=assoc, line_bytes=1, policy="lru"
        )
        self._bits: dict[int, int] = {}  # group id -> dirty bitmask
        self.group_sets = group_sets
        self.lookup_cycles = lookup_cycles

    def group_of(self, set_index: int) -> int:
        return set_index // self.group_sets

    def _bit(self, set_index: int) -> int:
        return 1 << (set_index % self.group_sets)

    # ------------------------------------------------------------------
    def lookup(self, set_index: int) -> Optional[bool]:
        """Dirty bit of a set on DBC hit, or None on DBC miss."""
        group = self.group_of(set_index)
        if not self._cache.lookup(group):
            return None
        return bool(self._bits.get(group, 0) & self._bit(set_index))

    def fill_group(self, set_index: int, dirty_mask: int) -> None:
        """Install a group's bits (after reconstructing from the array)."""
        group = self.group_of(set_index)
        eviction = self._cache.fill_pair(group)
        if eviction is not None:
            self._bits.pop(eviction[0], None)
        self._bits[group] = dirty_mask

    def set_dirty(self, set_index: int, dirty: bool) -> None:
        """Update a set's bit if its group is cached (no allocation)."""
        group = self.group_of(set_index)
        if not self._cache.probe(group):
            return
        mask = self._bits.get(group, 0)
        if dirty:
            mask |= self._bit(set_index)
        else:
            mask &= ~self._bit(set_index)
        self._bits[group] = mask

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def hit_rate(self) -> float:
        return self._cache.hit_rate()
