"""Replacement policies for set-associative structures.

Policies operate on per-way metadata kept by the caller: each way exposes
an integer ``stamp`` slot the policy is free to interpret (LRU recency
counter, NRU bit). This keeps cache arrays policy-agnostic.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.errors import ConfigError


class Way(Protocol):
    """Minimal interface a cache way offers to a replacement policy."""

    stamp: int


class LRUPolicy:
    """True LRU using a monotonically increasing access counter."""

    name = "lru"

    __slots__ = ("_clock",)

    def __init__(self) -> None:
        self._clock = 0

    def on_access(self, way: Way) -> None:
        self._clock += 1
        way.stamp = self._clock

    def on_fill(self, way: Way) -> None:
        self.on_access(way)

    def select_victim(self, ways: Sequence[Way]) -> int:
        victim, best = 0, None
        for idx, way in enumerate(ways):
            if best is None or way.stamp < best:
                victim, best = idx, way.stamp
        return victim

    def select_victim_key(self, ways):
        """Victim key for a mapping of key -> way (same tie-breaking as
        :meth:`select_victim` over the mapping's insertion order)."""
        victim, best = None, None
        for key, way in ways.items():
            if best is None or way.stamp < best:
                victim, best = key, way.stamp
        return victim


class NRUPolicy:
    """Single-bit not-recently-used, as the paper's DRAM cache uses.

    ``stamp`` is the NRU bit: 1 means recently used. When all ways in a
    set are recently used, all bits are cleared except the accessed way
    (the classic NRU reset). Victim is the first way with a clear bit.
    """

    name = "nru"

    __slots__ = ()

    def on_access(self, way: Way) -> None:
        way.stamp = 1

    def on_fill(self, way: Way) -> None:
        way.stamp = 1

    def select_victim(self, ways: Sequence[Way]) -> int:
        for idx, way in enumerate(ways):
            if way.stamp == 0:
                return idx
        # All recently used: reset every bit and take way 0.
        for way in ways:
            way.stamp = 0
        return 0

    def select_victim_key(self, ways):
        """Victim key for a mapping of key -> way (same semantics as
        :meth:`select_victim` over the mapping's insertion order)."""
        first = None
        for key, way in ways.items():
            if way.stamp == 0:
                return key
            if first is None:
                first = key
        for way in ways.values():
            way.stamp = 0
        return first

    @staticmethod
    def normalize(ways: Sequence[Way], accessed_idx: int) -> None:
        """Clear all NRU bits except the most recent access.

        Callers invoke this after ``on_access`` when every bit is set, to
        bound how stale the bits can get. Optional: ``select_victim``
        already handles the all-set case.
        """
        if all(w.stamp == 1 for w in ways):
            for i, w in enumerate(ways):
                w.stamp = 1 if i == accessed_idx else 0


def make_policy(name: str):
    """Construct a replacement policy by name ('lru' or 'nru')."""
    if name == "lru":
        return LRUPolicy()
    if name == "nru":
        return NRUPolicy()
    raise ConfigError(f"unknown replacement policy {name!r}")
