"""SRAM tag cache for sectored DRAM caches (optimized baseline, Fig. 5).

The sectored DRAM cache keeps sector metadata in the DRAM array itself;
the tag cache is a 32K-entry 4-way SRAM structure that caches that
metadata so most lookups avoid an in-DRAM metadata read. Entries are
keyed by sector id. An entry whose cached metadata has been modified
(fills, writes, invalidations) is *dirty* and must be written back to the
DRAM array when evicted.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.sram_cache import SRAMCache

TAG_CACHE_ENTRIES = 32 * 1024
TAG_CACHE_ASSOC = 4
TAG_CACHE_LOOKUP_CYCLES = 5  # paper: non-overlapped part of the lookup


class TagCache:
    """Caches sector metadata entries; misses cost an in-DRAM META_READ."""

    def __init__(
        self,
        entries: int = TAG_CACHE_ENTRIES,
        assoc: int = TAG_CACHE_ASSOC,
        lookup_cycles: int = TAG_CACHE_LOOKUP_CYCLES,
    ) -> None:
        # SRAMCache with 1-byte "lines" so keys are raw sector ids.
        self._cache = SRAMCache(
            "tag-cache", size_bytes=entries, assoc=assoc, line_bytes=1, policy="lru"
        )
        self.lookup_cycles = lookup_cycles

    def lookup(self, sector_id: int) -> bool:
        """True when the sector's metadata is cached (no DRAM tag read)."""
        return self._cache.lookup(sector_id)

    def fill(self, sector_id: int) -> Optional[bool]:
        """Install metadata after a DRAM fetch.

        Returns the dirty bit of the evicted entry (a metadata write back
        to the DRAM array is required when True), or None if nothing was
        evicted.
        """
        eviction = self._cache.fill_pair(sector_id)
        return None if eviction is None else eviction[1]

    def mark_dirty(self, sector_id: int) -> None:
        """Record that the cached metadata diverged from the DRAM copy."""
        self._cache.mark_dirty(sector_id)

    def invalidate(self, sector_id: int) -> Optional[bool]:
        """Drop a sector's metadata (e.g. the sector was evicted)."""
        return self._cache.invalidate(sector_id)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def accesses(self) -> int:
        return self._cache.accesses

    def hit_rate(self) -> float:
        return self._cache.hit_rate()

    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate() if self.accesses else 0.0
