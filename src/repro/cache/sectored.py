"""Sectored (sub-blocked) cache array.

Models the functional state of the paper's die-stacked sectored DRAM
cache (4 KB sectors, 4-way, NRU) and the sectored eDRAM cache (1 KB
sectors, 16-way). A sector is allocated as a unit but individual 64-byte
blocks are fetched on demand, so each sector carries valid/dirty bitmasks.

Supports BATMAN-style set disabling: a disabled set rejects lookups and
fills; disabling returns the dirty blocks that must be flushed.

Hot-path notes
--------------
``read``/``write``/``fill_block`` run per L3 miss; each set is an
insertion-ordered dict keyed by sector id, so residency is one hash
probe and the order-sensitive NRU victim walk sees the same insertion
order the former way-list had. :meth:`find_sector` exposes the lookup so callers
that need several block operations on the same sector can resolve it
once. A disabled set never holds sectors (``disable_set`` pops it and
``allocate_sector`` refuses it), so the scan paths need no disabled
check — absence already reads as a sector miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.replacement import make_policy
from repro.errors import ConfigError


class SectorProbe(enum.Enum):
    HIT = "hit"                    # sector present and block valid
    BLOCK_MISS = "block_miss"      # sector present, block invalid
    SECTOR_MISS = "sector_miss"    # sector absent


class _Sector:
    __slots__ = ("tag", "valid", "dirty", "touched", "stamp")

    def __init__(self, tag: int) -> None:
        self.tag = tag          # sector id
        self.valid = 0          # bitmask of valid blocks
        self.dirty = 0          # bitmask of dirty blocks
        self.touched = 0        # bitmask of demand-touched blocks (footprint)
        self.stamp = 0


@dataclass
class SectorEviction:
    """Result of a sector allocation that displaced a victim."""

    sector_id: int
    dirty_lines: list[int] = field(default_factory=list)
    valid_blocks: int = 0
    touched_mask: int = 0


class SectoredCacheArray:
    """Functional sectored cache state, keyed by 64-byte line address."""

    __slots__ = (
        "name",
        "assoc",
        "blocks_per_sector",
        "num_sets",
        "_sets",
        "_policy",
        "_on_access",
        "_on_fill",
        "_select_victim",
        "_disabled",
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "sector_evictions",
        "sector_allocations",
    )

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        assoc: int,
        sector_bytes: int,
        line_bytes: int = 64,
        policy: str = "nru",
    ) -> None:
        if sector_bytes % line_bytes != 0:
            raise ConfigError(f"{name}: sector must be a multiple of the line size")
        if capacity_bytes % (assoc * sector_bytes) != 0:
            raise ConfigError(f"{name}: capacity not a multiple of assoc*sector")
        self.name = name
        self.assoc = assoc
        self.blocks_per_sector = sector_bytes // line_bytes
        self.num_sets = capacity_bytes // (assoc * sector_bytes)
        # set index -> {sector id: _Sector}, insertion-ordered per set.
        self._sets: dict[int, dict[int, _Sector]] = {}
        self._policy = make_policy(policy)
        self._on_access = self._policy.on_access
        self._on_fill = self._policy.on_fill
        self._select_victim = self._policy.select_victim_key
        self._disabled: set[int] = set()

        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.sector_evictions = 0
        self.sector_allocations = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def sector_of(self, line: int) -> int:
        return line // self.blocks_per_sector

    def block_of(self, line: int) -> int:
        return line % self.blocks_per_sector

    def _set_index(self, sector_id: int) -> int:
        return sector_id % self.num_sets

    def find_sector(self, line: int) -> Optional[_Sector]:
        """Resolve the resident sector holding ``line`` in one scan.

        Callers performing several block operations on the same sector
        (e.g. warm-up install, resolve-time dirty checks) should resolve
        once and use the block-level bitmask directly.
        """
        sector_id = line // self.blocks_per_sector
        ways = self._sets.get(sector_id % self.num_sets)
        return ways.get(sector_id) if ways is not None else None

    def _find(self, sector_id: int) -> Optional[_Sector]:
        ways = self._sets.get(sector_id % self.num_sets)
        return ways.get(sector_id) if ways is not None else None

    def _lines_of(self, sector: _Sector, mask: int) -> list[int]:
        base = sector.tag * self.blocks_per_sector
        return [base + b for b in range(self.blocks_per_sector) if mask & (1 << b)]

    # ------------------------------------------------------------------
    # Probes and accesses
    # ------------------------------------------------------------------
    def probe(self, line: int) -> SectorProbe:
        """Classify an access without updating state or stats."""
        sector = self.find_sector(line)
        if sector is None:
            return SectorProbe.SECTOR_MISS
        if sector.valid & (1 << (line % self.blocks_per_sector)):
            return SectorProbe.HIT
        return SectorProbe.BLOCK_MISS

    def is_block_dirty(self, line: int) -> bool:
        sector = self.find_sector(line)
        return bool(sector and sector.dirty & (1 << (line % self.blocks_per_sector)))

    def read(self, line: int) -> SectorProbe:
        """Demand read: updates recency/footprint and hit/miss stats."""
        bps = self.blocks_per_sector
        sector_id = line // bps
        ways = self._sets.get(sector_id % self.num_sets)
        sector = ways.get(sector_id) if ways is not None else None
        if sector is not None:
            bit = 1 << (line % bps)
            self._on_access(sector)
            sector.touched |= bit
            if sector.valid & bit:
                self.read_hits += 1
                return SectorProbe.HIT
            self.read_misses += 1
            return SectorProbe.BLOCK_MISS
        self.read_misses += 1
        return SectorProbe.SECTOR_MISS

    def write(self, line: int) -> SectorProbe:
        """Demand write (dirty L3 eviction landing in this cache).

        On a hit or block miss within a resident sector the block becomes
        valid+dirty (a full 64-byte write needs no fill). On a sector miss
        the caller decides whether to allocate.
        """
        bps = self.blocks_per_sector
        sector_id = line // bps
        ways = self._sets.get(sector_id % self.num_sets)
        sector = ways.get(sector_id) if ways is not None else None
        if sector is not None:
            bit = 1 << (line % bps)
            was_valid = sector.valid & bit
            sector.valid |= bit
            sector.dirty |= bit
            sector.touched |= bit
            self._on_access(sector)
            if was_valid:
                self.write_hits += 1
                return SectorProbe.HIT
            self.write_misses += 1
            return SectorProbe.BLOCK_MISS
        self.write_misses += 1
        return SectorProbe.SECTOR_MISS

    def read_resolved(self, sector: Optional[_Sector], bit: int) -> None:
        """Demand-read accounting for a sector resolved via
        :meth:`find_sector` (same state transition as :meth:`read`,
        minus the redundant scan)."""
        if sector is None:
            self.read_misses += 1
            return
        self._on_access(sector)
        sector.touched |= bit
        if sector.valid & bit:
            self.read_hits += 1
        else:
            self.read_misses += 1

    def write_resolved(self, sector: _Sector, bit: int) -> None:
        """Demand-write state update for a resident, resolved sector
        (same transition as :meth:`write` on a resident sector)."""
        if sector.valid & bit:
            self.write_hits += 1
        else:
            self.write_misses += 1
        sector.valid |= bit
        sector.dirty |= bit
        sector.touched |= bit
        self._on_access(sector)

    def fill_block(self, line: int, dirty: bool = False) -> bool:
        """Install a block into a resident sector (read-miss fill).

        Returns False when the sector is absent (fill dropped — e.g. the
        sector lost the allocation race or was bypassed).
        """
        sector = self.find_sector(line)
        if sector is None:
            return False
        bit = 1 << (line % self.blocks_per_sector)
        sector.valid |= bit
        if dirty:
            sector.dirty |= bit
        return True

    # ------------------------------------------------------------------
    # Allocation / invalidation
    # ------------------------------------------------------------------
    def allocate_sector(self, line: int) -> Optional[SectorEviction]:
        """Allocate the sector containing ``line``; returns the eviction.

        No-op (returns None) if the sector is already resident or its set
        is disabled.
        """
        sector_id = line // self.blocks_per_sector
        idx = sector_id % self.num_sets
        if idx in self._disabled:
            return None
        ways = self._sets.get(idx)
        if ways is None:
            ways = self._sets[idx] = {}
        elif sector_id in ways:
            return None
        eviction: Optional[SectorEviction] = None
        if len(ways) >= self.assoc:
            vtag = self._select_victim(ways)
            victim = ways.pop(vtag)
            eviction = SectorEviction(
                sector_id=victim.tag,
                dirty_lines=self._lines_of(victim, victim.dirty),
                valid_blocks=bin(victim.valid).count("1"),
                touched_mask=victim.touched,
            )
            self.sector_evictions += 1
        sector = _Sector(sector_id)
        self._on_fill(sector)
        ways[sector_id] = sector
        self.sector_allocations += 1
        return eviction

    def invalidate_block(self, line: int) -> bool:
        """Invalidate a single block; returns whether it was dirty."""
        sector = self.find_sector(line)
        if sector is None:
            return False
        bit = 1 << (line % self.blocks_per_sector)
        was_dirty = bool(sector.dirty & bit)
        sector.valid &= ~bit
        sector.dirty &= ~bit
        return was_dirty

    def clean_block(self, line: int) -> None:
        """Clear the dirty bit of a block (after write-through)."""
        sector = self.find_sector(line)
        if sector is not None:
            sector.dirty &= ~(1 << (line % self.blocks_per_sector))

    # ------------------------------------------------------------------
    # Set disabling (BATMAN substrate)
    # ------------------------------------------------------------------
    def disable_set(self, set_index: int) -> list[int]:
        """Disable a set, returning dirty lines that must be flushed."""
        if set_index in self._disabled:
            return []
        self._disabled.add(set_index)
        dirty: list[int] = []
        for sector in self._sets.pop(set_index, {}).values():
            dirty.extend(self._lines_of(sector, sector.dirty))
        return dirty

    def enable_set(self, set_index: int) -> None:
        self._disabled.discard(set_index)

    @property
    def disabled_sets(self) -> int:
        return len(self._disabled)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    def hit_rate(self) -> float:
        """Combined read+write hit rate (the paper's Fig. 8 metric)."""
        total = self.reads + self.writes
        return (self.read_hits + self.write_hits) / total if total else 0.0

    def read_hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0

    def sector_present(self, line: int) -> bool:
        return self.find_sector(line) is not None

    def resident_sectors(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
