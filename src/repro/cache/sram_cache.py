"""Generic set-associative SRAM cache (functional model).

Used for the L1/L2/L3 hierarchy and, via thin wrappers, for SRAM metadata
structures (tag cache, DBC). Sets are allocated lazily so multi-gigabyte
address spaces cost memory proportional to the touched footprint only.

The model is *functional*: it tracks presence, dirtiness and recency.
Latency and bandwidth accounting belong to the hierarchy layer.

``lookup`` and ``fill`` run a million-plus times per smoke cell (every
reference walks L1→L2→L3), so each set is an ordered dict keyed by
line address — presence is one hash probe instead of a way scan. LRU
— the policy every SRAM instance uses — keeps each set in recency
order (touch = delete + reinsert at the end) and stores just the dirty
bit as the value: the victim is simply the first key, no stamp scan and
no per-line object. This is bit-identical to stamp-based LRU: the
monotone clock hands every touch a unique stamp, so the min-stamp way
is exactly the least recently touched one, which recency order keeps
at the front. Non-LRU policies keep per-line stamp objects, and dict
insertion order evolves exactly like the former list's del+append
order, so their tie-breaking is unchanged.

``fill_pair`` is the allocation-light fill the hierarchy's cascades
use (a ``(line, dirty)`` tuple instead of an :class:`Eviction`).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement import make_policy
from repro.errors import ConfigError

_ABSENT = object()


class _Line:
    """Per-line metadata for non-LRU policies (LRU stores a plain bool)."""

    __slots__ = ("tag", "dirty", "stamp")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.dirty = False
        self.stamp = 0


class Eviction:
    """A victim pushed out by a fill."""

    __slots__ = ("line", "dirty")

    def __init__(self, line: int, dirty: bool) -> None:
        self.line = line      # 64-byte line address of the victim
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"Eviction(line={self.line}, dirty={self.dirty})"


class SRAMCache:
    """Set-associative cache keyed by 64-byte line address.

    Parameters
    ----------
    name:
        Used in stats output.
    size_bytes / assoc / line_bytes:
        Geometry; ``size_bytes`` must be an exact multiple of
        ``assoc * line_bytes``.
    policy:
        'lru' (SRAM hierarchy) or 'nru'.
    """

    __slots__ = (
        "name",
        "assoc",
        "num_sets",
        "_sets",
        "_policy",
        "_on_access",
        "_on_fill",
        "_select_victim",
        "_lru",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        policy: str = "lru",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError(f"bad cache geometry for {name}")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not a multiple of assoc*line "
                f"({assoc}x{line_bytes})"
            )
        self.name = name
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        # set index -> ordered dict of resident lines. LRU: {line: dirty}
        # in recency order. Other policies: {line: _Line} in fill order.
        self._sets: dict[int, dict] = {}
        self._policy = make_policy(policy)
        self._on_access = self._policy.on_access
        self._on_fill = self._policy.on_fill
        self._select_victim = self._policy.select_victim_key
        self._lru = policy == "lru"
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def lookup(self, line: int, is_write: bool = False) -> bool:
        """Access a line; returns True on hit, updating recency/dirty."""
        ways = self._sets.get(line % self.num_sets)
        if ways is not None:
            if self._lru:
                prev = ways.get(line, _ABSENT)
                if prev is not _ABSENT:
                    self.hits += 1
                    del ways[line]
                    ways[line] = True if is_write else prev
                    return True
            else:
                entry = ways.get(line)
                if entry is not None:
                    self.hits += 1
                    self._on_access(entry)
                    if is_write:
                        entry.dirty = True
                    return True
        self.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Presence check with no stats or recency side effects."""
        ways = self._sets.get(line % self.num_sets)
        return ways is not None and line in ways

    def is_dirty(self, line: int) -> Optional[bool]:
        """Dirty state of a resident line, or None if absent."""
        ways = self._sets.get(line % self.num_sets)
        if ways is None:
            return None
        entry = ways.get(line, _ABSENT)
        if entry is _ABSENT:
            return None
        return entry if self._lru else entry.dirty

    def fill_pair(self, line: int, dirty: bool = False) -> Optional[tuple]:
        """Insert a line; returns the ``(line, dirty)`` victim, if any.

        Filling a line already present just refreshes it (merging
        dirty). The hot-path twin of :meth:`fill`: no Eviction object.
        """
        sets = self._sets
        idx = line % self.num_sets
        ways = sets.get(idx)
        lru = self._lru
        if ways is None:
            ways = sets[idx] = {}
        elif lru:
            prev = ways.get(line, _ABSENT)
            if prev is not _ABSENT:
                del ways[line]
                ways[line] = prev or dirty
                return None
        else:
            entry = ways.get(line)
            if entry is not None:
                entry.dirty = entry.dirty or dirty
                self._on_fill(entry)
                return None
        victim: Optional[tuple] = None
        if len(ways) >= self.assoc:
            if lru:
                vtag = next(iter(ways))
                victim = (vtag, ways.pop(vtag))
            else:
                vtag = self._select_victim(ways)
                old = ways.pop(vtag)
                victim = (old.tag, old.dirty)
            self.evictions += 1
        if lru:
            ways[line] = dirty
        else:
            entry = _Line(line)
            entry.dirty = dirty
            self._on_fill(entry)
            ways[line] = entry
        return victim

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert a line, returning the eviction it caused (if any)."""
        out = self.fill_pair(line, dirty)
        return None if out is None else Eviction(out[0], out[1])

    def invalidate(self, line: int) -> Optional[bool]:
        """Remove a line; returns its dirty bit, or None if absent."""
        ways = self._sets.get(line % self.num_sets)
        if ways is None:
            return None
        entry = ways.pop(line, _ABSENT)
        if entry is _ABSENT:
            return None
        return entry if self._lru else entry.dirty

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line; False if absent.

        Pure metadata update: recency is untouched (a plain dict value
        assignment keeps the key's position).
        """
        ways = self._sets.get(line % self.num_sets)
        if ways is None or line not in ways:
            return False
        if self._lru:
            ways[line] = True
        else:
            ways[line].dirty = True
        return True

    def clean(self, line: int) -> bool:
        """Clear the dirty bit of a resident line; False if absent."""
        ways = self._sets.get(line % self.num_sets)
        if ways is None or line not in ways:
            return False
        if self._lru:
            ways[line] = False
        else:
            ways[line].dirty = False
        return True

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
