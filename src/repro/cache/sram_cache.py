"""Generic set-associative SRAM cache (functional model).

Used for the L1/L2/L3 hierarchy and, via thin wrappers, for SRAM metadata
structures (tag cache, DBC). Sets are allocated lazily so multi-gigabyte
address spaces cost memory proportional to the touched footprint only.

The model is *functional*: it tracks presence, dirtiness and recency.
Latency and bandwidth accounting belong to the hierarchy layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.replacement import make_policy
from repro.errors import ConfigError


class _Line:
    __slots__ = ("tag", "dirty", "stamp")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.dirty = False
        self.stamp = 0


@dataclass(frozen=True)
class Eviction:
    """A victim pushed out by a fill."""

    line: int      # 64-byte line address of the victim
    dirty: bool


class SRAMCache:
    """Set-associative cache keyed by 64-byte line address.

    Parameters
    ----------
    name:
        Used in stats output.
    size_bytes / assoc / line_bytes:
        Geometry; ``size_bytes`` must be an exact multiple of
        ``assoc * line_bytes``.
    policy:
        'lru' (SRAM hierarchy) or 'nru'.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        policy: str = "lru",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError(f"bad cache geometry for {name}")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not a multiple of assoc*line "
                f"({assoc}x{line_bytes})"
            )
        self.name = name
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._sets: dict[int, list[_Line]] = {}
        self._policy = make_policy(policy)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def _find(self, ways: list[_Line], tag: int) -> Optional[_Line]:
        for way in ways:
            if way.tag == tag:
                return way
        return None

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def lookup(self, line: int, is_write: bool = False) -> bool:
        """Access a line; returns True on hit, updating recency/dirty."""
        ways = self._sets.get(self._set_index(line))
        entry = self._find(ways, line) if ways else None
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        self._policy.on_access(entry)
        if is_write:
            entry.dirty = True
        return True

    def probe(self, line: int) -> bool:
        """Presence check with no stats or recency side effects."""
        ways = self._sets.get(self._set_index(line))
        return bool(ways) and self._find(ways, line) is not None

    def is_dirty(self, line: int) -> Optional[bool]:
        """Dirty state of a resident line, or None if absent."""
        ways = self._sets.get(self._set_index(line))
        entry = self._find(ways, line) if ways else None
        return None if entry is None else entry.dirty

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert a line, returning the eviction it caused (if any).

        Filling a line already present just refreshes it (merging dirty).
        """
        idx = self._set_index(line)
        ways = self._sets.setdefault(idx, [])
        entry = self._find(ways, line)
        if entry is not None:
            entry.dirty = entry.dirty or dirty
            self._policy.on_fill(entry)
            return None
        victim: Optional[Eviction] = None
        if len(ways) >= self.assoc:
            vidx = self._policy.select_victim(ways)
            old = ways[vidx]
            victim = Eviction(line=old.tag, dirty=old.dirty)
            del ways[vidx]
            self.evictions += 1
        entry = _Line(line)
        entry.dirty = dirty
        self._policy.on_fill(entry)
        ways.append(entry)
        return victim

    def invalidate(self, line: int) -> Optional[bool]:
        """Remove a line; returns its dirty bit, or None if absent."""
        idx = self._set_index(line)
        ways = self._sets.get(idx)
        if not ways:
            return None
        for i, way in enumerate(ways):
            if way.tag == line:
                dirty = way.dirty
                del ways[i]
                return dirty
        return None

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line; False if absent."""
        ways = self._sets.get(self._set_index(line))
        entry = self._find(ways, line) if ways else None
        if entry is None:
            return False
        entry.dirty = True
        return True

    def clean(self, line: int) -> bool:
        """Clear the dirty bit of a resident line; False if absent."""
        ways = self._sets.get(self._set_index(line))
        entry = self._find(ways, line) if ways else None
        if entry is None:
            return False
        entry.dirty = False
        return True

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
