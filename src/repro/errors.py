"""Exception types for the repro package.

A small, flat hierarchy: every error raised by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class WorkloadError(ReproError):
    """A workload profile or mix could not be constructed."""
