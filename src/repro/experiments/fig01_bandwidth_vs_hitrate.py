"""Fig. 1: delivered bandwidth vs memory-side cache hit rate.

A read-only kernel streams at target hit rates {0, 25, 50, 70, 90, 100}%
against (a) an HBM DRAM cache with one bidirectional 102.4 GB/s channel
set and (b) an eDRAM cache with separate 51.2 GB/s read and write
channel sets, both backed by 38.4 GB/s DDR4.

Expected shape: the DRAM cache curve rises while main memory is the
bottleneck and flattens near the cache bandwidth around ~70%; the eDRAM
curve *peaks* mid-range (fills ride the free write channels, so reads
get cache + memory bandwidth) and falls back to the read-channel
bandwidth at 100% — the paper's motivating observation. Analytic values
from :mod:`repro.core.bandwidth_model` are printed alongside.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.sectored import SectoredCacheArray
from repro.cache.tag_cache import TagCache
from repro.core.bandwidth_model import (
    analytic_dram_cache_read_bw,
    analytic_edram_cache_read_bw,
)
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    TaskCell,
    run_spec,
)
from repro.hierarchy.msc_edram import EdramMscController
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import ddr4_2400, edram_channels, hbm_102
from repro.mem.device import MemoryDevice
from repro.workloads.kernels import run_read_kernel

HIT_RATES = (0.0, 0.25, 0.50, 0.70, 0.90, 1.00)
KERNEL_CAPACITY = 64 << 20


def _dram_cache_factory(sim):
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("l4", KERNEL_CAPACITY, assoc=4, sector_bytes=4096)
    return SectoredMscController(sim, cache_dev, mm_dev, array,
                                 tag_cache=TagCache())


def _edram_factory(sim):
    read_dev = MemoryDevice(sim, edram_channels("read"))
    write_dev = MemoryDevice(sim, edram_channels("write"))
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("edram", KERNEL_CAPACITY, assoc=16,
                               sector_bytes=1024)
    return EdramMscController(sim, read_dev, write_dev, mm_dev, array)


_FACTORIES = {"dram": _dram_cache_factory, "edram": _edram_factory}


def kernel_cell(kind: str, hit_rate: float, total_reads: int):
    """Worker entry: one read-kernel measurement (a TaskCell body)."""
    return run_read_kernel(_FACTORIES[kind], hit_rate,
                           total_reads=total_reads)


def cells(scale: Scale, workloads=None) -> Iterator[TaskCell]:
    for hit_rate in HIT_RATES:
        for kind in ("dram", "edram"):
            yield TaskCell(
                f"{kind}/{hit_rate:.0%}", kernel_cell,
                kwargs=(("kind", kind), ("hit_rate", hit_rate),
                        ("total_reads", scale.kernel_reads)),
            )


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result(
        notes=(f"read kernel, {ctx.scale.kernel_reads} reads, "
               "HBM 102.4 / eDRAM 2x51.2 / DDR4 38.4 GB/s"),
    )
    for hit_rate in HIT_RATES:
        dram = ctx[f"dram/{hit_rate:.0%}"]
        edram = ctx[f"edram/{hit_rate:.0%}"]
        result.add(
            f"{hit_rate:.0%}",
            dram.delivered_gbps,
            analytic_dram_cache_read_bw(hit_rate, 102.4, 38.4),
            edram.delivered_gbps,
            analytic_edram_cache_read_bw(hit_rate, 51.2, 38.4),
        )
    return result


SPEC = ExperimentSpec(
    name="fig01",
    title="Fig. 1 — delivered bandwidth vs hit rate (GB/s)",
    headers=("hit_rate", "dram$_sim", "dram$_analytic",
             "edram_sim", "edram_analytic"),
    cells=cells,
    render=render,
    workload_aware=False,
)


def run(scale: Optional[Scale] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
