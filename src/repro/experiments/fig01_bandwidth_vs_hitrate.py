"""Fig. 1: delivered bandwidth vs memory-side cache hit rate.

A read-only kernel streams at target hit rates {0, 25, 50, 70, 90, 100}%
against (a) an HBM DRAM cache with one bidirectional 102.4 GB/s channel
set and (b) an eDRAM cache with separate 51.2 GB/s read and write
channel sets, both backed by 38.4 GB/s DDR4.

Expected shape: the DRAM cache curve rises while main memory is the
bottleneck and flattens near the cache bandwidth around ~70%; the eDRAM
curve *peaks* mid-range (fills ride the free write channels, so reads
get cache + memory bandwidth) and falls back to the read-channel
bandwidth at 100% — the paper's motivating observation. Analytic values
from :mod:`repro.core.bandwidth_model` are printed alongside.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.sectored import SectoredCacheArray
from repro.cache.tag_cache import TagCache
from repro.core.bandwidth_model import (
    analytic_dram_cache_read_bw,
    analytic_edram_cache_read_bw,
)
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    TaskCell,
    run_spec,
)
from repro.hierarchy.msc_edram import EdramMscController
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import ddr4_2400, edram_channels, hbm_102
from repro.mem.device import MemoryDevice
from repro.workloads.kernels import run_read_kernel

HIT_RATES = (0.0, 0.25, 0.50, 0.70, 0.90, 1.00)
KERNEL_CAPACITY = 64 << 20


def _dram_cache_factory(sim):
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("l4", KERNEL_CAPACITY, assoc=4, sector_bytes=4096)
    return SectoredMscController(sim, cache_dev, mm_dev, array,
                                 tag_cache=TagCache())


def _edram_factory(sim):
    read_dev = MemoryDevice(sim, edram_channels("read"))
    write_dev = MemoryDevice(sim, edram_channels("write"))
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("edram", KERNEL_CAPACITY, assoc=16,
                               sector_bytes=1024)
    return EdramMscController(sim, read_dev, write_dev, mm_dev, array)


_FACTORIES = {"dram": _dram_cache_factory, "edram": _edram_factory}


def kernel_cell(kind: str, hit_rate: float, total_reads: int):
    """Worker entry: one read-kernel measurement (a TaskCell body)."""
    return run_read_kernel(_FACTORIES[kind], hit_rate,
                           total_reads=total_reads)


def cells(scale: Scale, workloads=None) -> Iterator[TaskCell]:
    for hit_rate in HIT_RATES:
        for kind in ("dram", "edram"):
            yield TaskCell(
                f"{kind}/{hit_rate:.0%}", kernel_cell,
                kwargs=(("kind", kind), ("hit_rate", hit_rate),
                        ("total_reads", scale.kernel_reads)),
            )


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result(
        notes=(f"read kernel, {ctx.scale.kernel_reads} reads, "
               "HBM 102.4 / eDRAM 2x51.2 / DDR4 38.4 GB/s"),
    )
    for hit_rate in HIT_RATES:
        dram = ctx[f"dram/{hit_rate:.0%}"]
        edram = ctx[f"edram/{hit_rate:.0%}"]
        result.add(
            f"{hit_rate:.0%}",
            dram.delivered_gbps,
            analytic_dram_cache_read_bw(hit_rate, 102.4, 38.4),
            edram.delivered_gbps,
            analytic_edram_cache_read_bw(hit_rate, 51.2, 38.4),
        )
    return result


def claims():
    """Fig. 1's registered paper shapes (see repro.validate)."""
    from repro.validate import (
        Claim, Col, crossover, monotone_rising, peak_then_fall, within_rel,
    )
    return (
        Claim(
            id="fig01.dram_rises",
            claim="DRAM$ delivered bandwidth rises with hit rate all the "
                  "way to 100% (shared channels never lose from hits)",
            paper="Fig. 1",
            predicate=monotone_rising(Col("dram$_sim")),
        ),
        Claim(
            id="fig01.edram_peak_then_fall",
            claim="eDRAM delivered bandwidth peaks mid-range and falls "
                  "back toward the read-channel bandwidth at 100% — the "
                  "paper's motivating observation",
            paper="Fig. 1",
            predicate=peak_then_fall(Col("edram_sim"),
                                     peak_within=("50%", "70%"),
                                     min_drop=0.05),
        ),
        Claim(
            id="fig01.edram_crosses_dram",
            claim="the eDRAM curve crosses below the DRAM$ curve between "
                  "50% and 70% hit rate (separate write channels stop "
                  "paying once fills dry up)",
            paper="Fig. 1",
            predicate=crossover("edram_sim", "dram$_sim", ("50%", "70%")),
        ),
        Claim(
            id="fig01.edram_matches_analytic",
            claim="the simulated eDRAM curve tracks the Section III "
                  "closed form within 10%",
            paper="Fig. 1 / Eq. 2",
            predicate=within_rel(Col("edram_sim"), 0.10,
                                 reference=Col("edram_analytic")),
        ),
        Claim(
            id="fig01.dram_tracks_analytic",
            claim="the simulated DRAM$ curve tracks the closed form "
                  "within 25% (the gap at high hit rates is the "
                  "scheduling inefficiency E models)",
            paper="Fig. 1 / Eq. 2",
            predicate=within_rel(Col("dram$_sim"), 0.25,
                                 reference=Col("dram$_analytic")),
        ),
    )


SPEC = ExperimentSpec(
    name="fig01",
    title="Fig. 1 — delivered bandwidth vs hit rate (GB/s)",
    headers=("hit_rate", "dram$_sim", "dram$_analytic",
             "edram_sim", "edram_analytic"),
    cells=cells,
    render=render,
    workload_aware=False,
    claims=claims,
)


def run(scale: Optional[Scale] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
