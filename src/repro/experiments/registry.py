"""The single registry of declarative experiment specs.

Maps experiment ids to the modules defining their
:class:`~repro.experiments.exec.ExperimentSpec` (exposed as a
module-level ``SPEC``).  Modules import lazily, so listing ids stays
cheap; resolving a spec imports one module.
"""

from __future__ import annotations

import importlib
from typing import Iterator

from repro.errors import ReproError

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_bandwidth_vs_hitrate",
    "fig02": "repro.experiments.fig02_edram_capacity",
    "fig04": "repro.experiments.fig04_bandwidth_sensitivity",
    "fig05": "repro.experiments.fig05_tag_cache",
    "fig06": "repro.experiments.fig06_dap_speedup",
    "fig07": "repro.experiments.fig07_dap_decisions",
    "fig08": "repro.experiments.fig08_cas_fraction",
    "table1": "repro.experiments.table1_sensitivity",
    "fig09": "repro.experiments.fig09_memory_technology",
    "fig10": "repro.experiments.fig10_capacity_bandwidth",
    "fig11": "repro.experiments.fig11_related",
    "fig12": "repro.experiments.fig12_all_workloads",
    "fig13": "repro.experiments.fig13_16core",
    "fig14": "repro.experiments.fig14_alloy",
    "fig15": "repro.experiments.fig15_edram",
    "ablation": "repro.experiments.ablation_techniques",
    "flat": "repro.experiments.ext_flat_memory",
    "baselines": "repro.experiments.ext_baselines",
    "prefetch": "repro.experiments.ext_prefetch",
}


def get_spec(name: str):
    """Resolve one experiment id to its ExperimentSpec."""
    if name not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[name])
    spec = getattr(module, "SPEC", None)
    if spec is None:
        raise ReproError(
            f"experiment module {EXPERIMENTS[name]} defines no SPEC"
        )
    return spec


def iter_specs() -> Iterator:
    """Every registered spec, in registry order."""
    for name in EXPERIMENTS:
        yield get_spec(name)
