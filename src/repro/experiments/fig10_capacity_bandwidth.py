"""Fig. 10: DAP sensitivity to DRAM cache capacity and bandwidth.

Top panel: capacity in {2, 4, 8} GB at 102.4 GB/s. Bottom panel:
bandwidth in {102.4, 128, 204.8} GB/s at 4 GB. Each value is DAP
normalized to the matching baseline.

Expected shape: DAP's gain grows with capacity (a bigger cache absorbs
more accesses, pulling the baseline further from the optimal partition)
and shrinks with cache bandwidth (the optimum then keeps most accesses
in the cache anyway).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.hierarchy.system import GiB
from repro.mem.configs import hbm_102, hbm_128, hbm_204
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

CAPACITIES_GB = (2, 4, 8)
BANDWIDTHS = (("102.4", hbm_102), ("128", hbm_128), ("204.8", hbm_204))


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    cap_headers = [f"cap_{c}GB" for c in CAPACITIES_GB]
    bw_headers = [f"bw_{b}" for b, _ in BANDWIDTHS]
    result = ExperimentResult(
        experiment="Fig. 10 — DRAM cache capacity and bandwidth sweeps",
        headers=["workload"] + cap_headers + bw_headers,
        notes="DAP normalized to the matching baseline",
    )
    columns: dict[str, list[float]] = {h: [] for h in cap_headers + bw_headers}
    for name in workloads:
        mix = rate_mix(name)
        row = [name]
        for cap, header in zip(CAPACITIES_GB, cap_headers):
            base = run_mix(mix, scaled_config(
                scale, policy="baseline", paper_capacity=cap * GiB), scale)
            dap = run_mix(mix, scaled_config(
                scale, policy="dap", paper_capacity=cap * GiB), scale)
            ws = normalized_weighted_speedup(dap.ipc, base.ipc)
            row.append(ws)
            columns[header].append(ws)
        for (label, factory), header in zip(BANDWIDTHS, bw_headers):
            base = run_mix(mix, scaled_config(
                scale, policy="baseline", msc_dram=factory()), scale)
            dap = run_mix(mix, scaled_config(
                scale, policy="dap", msc_dram=factory()), scale)
            ws = normalized_weighted_speedup(dap.ipc, base.ipc)
            row.append(ws)
            columns[header].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(columns[h]) for h in cap_headers + bw_headers])
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
