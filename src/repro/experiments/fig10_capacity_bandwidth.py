"""Fig. 10: DAP sensitivity to DRAM cache capacity and bandwidth.

Top panel: capacity in {2, 4, 8} GB at 102.4 GB/s. Bottom panel:
bandwidth in {102.4, 128, 204.8} GB/s at 4 GB. Each value is DAP
normalized to the matching baseline.

Expected shape: DAP's gain grows with capacity (a bigger cache absorbs
more accesses, pulling the baseline further from the optimal partition)
and shrinks with cache bandwidth (the optimum then keeps most accesses
in the cache anyway).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.hierarchy.system import GiB
from repro.mem.configs import hbm_102, hbm_128, hbm_204
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

CAPACITIES_GB = (2, 4, 8)
BANDWIDTHS = (("102.4", hbm_102), ("128", hbm_128), ("204.8", hbm_204))
_CAP_HEADERS = tuple(f"cap_{c}GB" for c in CAPACITIES_GB)
_BW_HEADERS = tuple(f"bw_{b}" for b, _ in BANDWIDTHS)


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for policy in ("baseline", "dap"):
            for cap in CAPACITIES_GB:
                yield MixCell(
                    f"{name}/cap{cap}GB/{policy}", mix,
                    scaled_config(scale, policy=policy,
                                  paper_capacity=cap * GiB),
                    scale,
                )
            for label, factory in BANDWIDTHS:
                yield MixCell(
                    f"{name}/bw{label}/{policy}", mix,
                    scaled_config(scale, policy=policy, msc_dram=factory()),
                    scale,
                )


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    columns: dict[str, list[float]] = {
        h: [] for h in _CAP_HEADERS + _BW_HEADERS}
    for name in ctx.workloads:
        row = [name]
        for cap, header in zip(CAPACITIES_GB, _CAP_HEADERS):
            base = ctx[f"{name}/cap{cap}GB/baseline"]
            dap = ctx[f"{name}/cap{cap}GB/dap"]
            ws = normalized_weighted_speedup(dap.ipc, base.ipc)
            row.append(ws)
            columns[header].append(ws)
        for (label, _), header in zip(BANDWIDTHS, _BW_HEADERS):
            base = ctx[f"{name}/bw{label}/baseline"]
            dap = ctx[f"{name}/bw{label}/dap"]
            ws = normalized_weighted_speedup(dap.ipc, base.ipc)
            row.append(ws)
            columns[header].append(ws)
        result.add(*row)
    result.add("GMEAN",
               *[geomean(columns[h]) for h in _CAP_HEADERS + _BW_HEADERS])
    return result


def claims():
    """Fig. 10's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, monotone_falling, monotone_rising
    return (
        Claim(
            id="fig10.gain_grows_with_capacity",
            claim="DAP's gain grows with cache capacity — a bigger "
                  "cache absorbs more accesses, pulling the baseline "
                  "further from the optimal partition",
            paper="Fig. 10",
            predicate=monotone_rising(
                Cells((("GMEAN", "cap_2GB"), ("GMEAN", "cap_4GB"),
                       ("GMEAN", "cap_8GB")))),
            deviation="the growth saturates between 4 and 8 GB at "
                      "smoke scale (footprints shrink with the scale "
                      "divisor)",
        ),
        Claim(
            id="fig10.gain_shrinks_with_bandwidth",
            claim="DAP's gain shrinks as cache bandwidth grows — the "
                  "optimal partition then keeps most accesses in the "
                  "cache anyway",
            paper="Fig. 10",
            predicate=monotone_falling(
                Cells((("GMEAN", "bw_102.4"), ("GMEAN", "bw_128"),
                       ("GMEAN", "bw_204.8")))),
        ),
    )


SPEC = ExperimentSpec(
    name="fig10",
    title="Fig. 10 — DRAM cache capacity and bandwidth sweeps",
    headers=("workload",) + _CAP_HEADERS + _BW_HEADERS,
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="DAP normalized to the matching baseline",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
