"""Fig. 7: contribution of FWB / WB / IFRM / SFRM to DAP's decisions.

Expected shape: FWB and WB carry most workloads; the write-heavy gcc
inputs use almost exclusively FWB+WB; omnetpp is dominated by SFRM
(its tag-cache thrash makes speculative reads the win); mcf leans on
IFRM (clean hot hits). Paper averages: FWB 23%, WB 40%, IFRM 12%,
SFRM 25%.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

TECHNIQUES = ("fwb", "wb", "ifrm", "sfrm")


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        yield MixCell(f"{name}/dap", rate_mix(name),
                      scaled_config(scale, policy="dap"), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    totals = {t: 0.0 for t in TECHNIQUES}
    for name in ctx.workloads:
        decisions = ctx[f"{name}/dap"].dap_decisions
        total = sum(decisions.get(t, 0) for t in TECHNIQUES) or 1
        fractions = {t: decisions.get(t, 0) / total for t in TECHNIQUES}
        result.add(name, *[fractions[t] for t in TECHNIQUES])
        for t in TECHNIQUES:
            totals[t] += fractions[t]
    n = len(ctx.workloads)
    result.add("MEAN", *[totals[t] / n for t in TECHNIQUES])
    return result


def claims():
    """Fig. 7's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, sign
    return (
        Claim(
            id="fig07.omnetpp_sfrm_dominated",
            claim="omnetpp's decisions are dominated by SFRM — its "
                  "tag-cache thrash makes speculative reads the win",
            paper="Fig. 7",
            predicate=sign(("omnetpp", "sfrm"), above=0.5),
        ),
        Claim(
            id="fig07.all_techniques_used",
            claim="all four techniques (FWB, WB, IFRM, SFRM) "
                  "contribute a non-zero share of decisions on average",
            paper="Fig. 7",
            predicate=sign(Cells((("MEAN", "fwb"), ("MEAN", "wb"),
                                  ("MEAN", "ifrm"), ("MEAN", "sfrm"))),
                           above=0.0),
            deviation="SFRM is over-represented versus the paper's "
                      "23/40/12/25 split — our traces miss less in the "
                      "tag cache, shifting weight between techniques",
        ),
    )


SPEC = ExperimentSpec(
    name="fig07",
    title="Fig. 7 — DAP decision mix",
    headers=("workload", "fwb", "wb", "ifrm", "sfrm"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="fraction of all applied DAP decisions",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
