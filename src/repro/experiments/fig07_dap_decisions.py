"""Fig. 7: contribution of FWB / WB / IFRM / SFRM to DAP's decisions.

Expected shape: FWB and WB carry most workloads; the write-heavy gcc
inputs use almost exclusively FWB+WB; omnetpp is dominated by SFRM
(its tag-cache thrash makes speculative reads the win); mcf leans on
IFRM (clean hot hits). Paper averages: FWB 23%, WB 40%, IFRM 12%,
SFRM 25%.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

TECHNIQUES = ("fwb", "wb", "ifrm", "sfrm")


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        yield MixCell(f"{name}/dap", rate_mix(name),
                      scaled_config(scale, policy="dap"), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    totals = {t: 0.0 for t in TECHNIQUES}
    for name in ctx.workloads:
        decisions = ctx[f"{name}/dap"].dap_decisions
        total = sum(decisions.get(t, 0) for t in TECHNIQUES) or 1
        fractions = {t: decisions.get(t, 0) / total for t in TECHNIQUES}
        result.add(name, *[fractions[t] for t in TECHNIQUES])
        for t in TECHNIQUES:
            totals[t] += fractions[t]
    n = len(ctx.workloads)
    result.add("MEAN", *[totals[t] / n for t in TECHNIQUES])
    return result


SPEC = ExperimentSpec(
    name="fig07",
    title="Fig. 7 — DAP decision mix",
    headers=("workload", "fwb", "wb", "ifrm", "sfrm"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="fraction of all applied DAP decisions",
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
