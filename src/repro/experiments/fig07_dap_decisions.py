"""Fig. 7: contribution of FWB / WB / IFRM / SFRM to DAP's decisions.

Expected shape: FWB and WB carry most workloads; the write-heavy gcc
inputs use almost exclusively FWB+WB; omnetpp is dominated by SFRM
(its tag-cache thrash makes speculative reads the win); mcf leans on
IFRM (clean hot hits). Paper averages: FWB 23%, WB 40%, IFRM 12%,
SFRM 25%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

TECHNIQUES = ("fwb", "wb", "ifrm", "sfrm")


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Fig. 7 — DAP decision mix",
        headers=["workload", "fwb", "wb", "ifrm", "sfrm"],
        notes="fraction of all applied DAP decisions",
    )
    totals = {t: 0.0 for t in TECHNIQUES}
    for name in workloads:
        mix = rate_mix(name)
        dap = run_mix(mix, scaled_config(scale, policy="dap"), scale)
        decisions = dap.dap_decisions
        total = sum(decisions.get(t, 0) for t in TECHNIQUES) or 1
        fractions = {t: decisions.get(t, 0) / total for t in TECHNIQUES}
        result.add(name, *[fractions[t] for t in TECHNIQUES])
        for t in TECHNIQUES:
            totals[t] += fractions[t]
    n = len(workloads)
    result.add("MEAN", *[totals[t] / n for t in TECHNIQUES])
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
