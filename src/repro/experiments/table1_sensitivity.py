"""Table I: DAP sensitivity to the window size W and efficiency E.

Geometric-mean normalized weighted speedup over the bandwidth-sensitive
mixes for W in {32, 64, 128} at E = 0.75, and E in {0.5, 0.75, 1.0} at
W = 64.

Expected shape: a shallow optimum at (W=64, E=0.75); E=1.0 the worst of
the three efficiencies, because assuming full efficiency overestimates
what the cache can serve and under-partitions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

W_VALUES = (32, 64, 128)
E_VALUES = (0.50, 0.75, 1.00)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Table I — sensitivity to W (at E=0.75) and E (at W=64)",
        headers=["parameter", "value", "gmean_norm_ws"],
    )
    baselines = {}
    for name in workloads:
        baselines[name] = run_mix(
            rate_mix(name), scaled_config(scale, policy="baseline"), scale
        )

    def gmean_for(window: int, efficiency: float) -> float:
        speedups = []
        for name in workloads:
            dap = run_mix(
                rate_mix(name),
                scaled_config(scale, policy="dap", dap_window=window,
                              dap_efficiency=efficiency),
                scale,
            )
            speedups.append(
                normalized_weighted_speedup(dap.ipc, baselines[name].ipc)
            )
        return geomean(speedups)

    cache: dict[tuple[int, float], float] = {}
    for window in W_VALUES:
        cache[(window, 0.75)] = gmean_for(window, 0.75)
        result.add("W", window, cache[(window, 0.75)])
    for efficiency in E_VALUES:
        key = (64, efficiency)
        if key not in cache:
            cache[key] = gmean_for(64, efficiency)
        result.add("E", efficiency, cache[key])
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
