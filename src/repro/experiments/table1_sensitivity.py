"""Table I: DAP sensitivity to the window size W and efficiency E.

Geometric-mean normalized weighted speedup over the bandwidth-sensitive
mixes for W in {32, 64, 128} at E = 0.75, and E in {0.5, 0.75, 1.0} at
W = 64.

Expected shape: a shallow optimum at (W=64, E=0.75); E=1.0 the worst of
the three efficiencies, because assuming full efficiency overestimates
what the cache can serve and under-partitions.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

W_VALUES = (32, 64, 128)
E_VALUES = (0.50, 0.75, 1.00)


def _combos() -> list[tuple[int, float]]:
    combos = [(window, 0.75) for window in W_VALUES]
    combos += [(64, efficiency) for efficiency in E_VALUES
               if (64, efficiency) not in combos]
    return combos


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/baseline", mix,
                      scaled_config(scale, policy="baseline"), scale)
        for window, efficiency in _combos():
            yield MixCell(
                f"{name}/dap-W{window}-E{efficiency:.2f}", mix,
                scaled_config(scale, policy="dap", dap_window=window,
                              dap_efficiency=efficiency),
                scale,
            )


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()

    def gmean_for(window: int, efficiency: float) -> float:
        speedups = []
        for name in ctx.workloads:
            base = ctx[f"{name}/baseline"]
            dap = ctx[f"{name}/dap-W{window}-E{efficiency:.2f}"]
            speedups.append(normalized_weighted_speedup(dap.ipc, base.ipc))
        return geomean(speedups)

    for window in W_VALUES:
        result.add(f"W={window}", window, gmean_for(window, 0.75))
    for efficiency in E_VALUES:
        result.add(f"E={efficiency:.2f}", efficiency,
                   gmean_for(64, efficiency))
    return result


def claims():
    """Table I's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, ordering
    return (
        Claim(
            id="table1.w64_optimum",
            claim="W=64 is the best of the three window sizes at "
                  "E=0.75 (shallow optimum)",
            paper="Table I",
            predicate=ordering(("W=64", "gmean_norm_ws"),
                               ("W=128", "gmean_norm_ws")),
        ),
        Claim(
            id="table1.e1_worst",
            claim="E=1.0 is the worst of the three efficiencies — "
                  "assuming full efficiency overestimates the cache "
                  "and under-partitions",
            paper="Table I",
            predicate=ordering(("E=0.75", "gmean_norm_ws"),
                               ("E=1.00", "gmean_norm_ws")),
            deviation="E=0.50 edges out E=0.75 at smoke scale; the "
                      "paper's optimum at 0.75 needs paper-scale "
                      "contention to show",
        ),
    )


SPEC = ExperimentSpec(
    name="table1",
    title="Table I — sensitivity to W (at E=0.75) and E (at W=64)",
    headers=("parameter", "value", "gmean_norm_ws"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
