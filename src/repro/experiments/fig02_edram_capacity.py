"""Fig. 2: doubling the eDRAM cache from 256 MB to 512 MB.

Top panel: weighted speedup of the 512 MB system normalized to 256 MB.
Bottom panel: drop in miss rate (percentage points).

Expected shape: most workloads gain with the capacity doubling, but the
gain correlates imperfectly with the miss-rate drop — the paper's
evidence that hit rate alone does not determine performance.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

MiB = 1 << 20


def edram_config(scale: Scale, capacity_mb: int, policy: str = "baseline"):
    return scaled_config(
        scale, policy=policy, paper_capacity=capacity_mb * MiB,
        msc_kind="edram", msc_assoc=16, sector_bytes=1024,
    )


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/256MB", mix, edram_config(scale, 256), scale)
        yield MixCell(f"{name}/512MB", mix, edram_config(scale, 512), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    speedups = []
    for name in ctx.workloads:
        small = ctx[f"{name}/256MB"]
        big = ctx[f"{name}/512MB"]
        ws = normalized_weighted_speedup(big.ipc, small.ipc)
        drop_pp = (big.served_hit_rate - small.served_hit_rate) * 100
        result.add(name, ws, drop_pp)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def claims():
    """Fig. 2's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, Col, sign
    return (
        Claim(
            id="fig02.capacity_helps",
            claim="doubling the eDRAM cache to 512 MB improves geomean "
                  "weighted speedup",
            paper="Fig. 2",
            predicate=sign(("GMEAN", "norm_ws_512/256"), above=1.0),
            deviation="all twelve workloads gain here; the paper's "
                      "omnetpp loses despite its miss-rate drop — our "
                      "capacity-pressure model is smoother than real "
                      "set-conflict behaviour",
        ),
        Claim(
            id="fig02.miss_rates_drop",
            claim="every workload's miss rate falls at 512 MB (positive "
                  "drop in percentage points)",
            paper="Fig. 2",
            predicate=sign(Col("miss_rate_drop_pp"), above=0.0),
        ),
    )


SPEC = ExperimentSpec(
    name="fig02",
    title="Fig. 2 — 512 MB vs 256 MB eDRAM cache",
    headers=("workload", "norm_ws_512/256", "miss_rate_drop_pp"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="rate-8 mixes; positive drop = fewer misses at 512 MB",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
