"""Fig. 2: doubling the eDRAM cache from 256 MB to 512 MB.

Top panel: weighted speedup of the 512 MB system normalized to 256 MB.
Bottom panel: drop in miss rate (percentage points).

Expected shape: most workloads gain with the capacity doubling, but the
gain correlates imperfectly with the miss-rate drop — the paper's
evidence that hit rate alone does not determine performance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

MiB = 1 << 20


def edram_config(scale: Scale, capacity_mb: int, policy: str = "baseline"):
    return scaled_config(
        scale, policy=policy, paper_capacity=capacity_mb * MiB,
        msc_kind="edram", msc_assoc=16, sector_bytes=1024,
    )


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Fig. 2 — 512 MB vs 256 MB eDRAM cache",
        headers=["workload", "norm_ws_512/256", "miss_rate_drop_pp"],
        notes="rate-8 mixes; positive drop = fewer misses at 512 MB",
    )
    speedups = []
    for name in workloads:
        mix = rate_mix(name)
        small = run_mix(mix, edram_config(scale, 256), scale)
        big = run_mix(mix, edram_config(scale, 512), scale)
        ws = normalized_weighted_speedup(big.ipc, small.ipc)
        drop_pp = (big.served_hit_rate - small.served_hit_rate) * 100
        result.add(name, ws, drop_pp)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
