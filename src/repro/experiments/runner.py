"""Command-line experiment runner.

Usage::

    repro-experiment fig06                     # one experiment, default scale
    repro-experiment all --scale small         # everything the paper reports
    repro-experiment table1 fig08 --workloads mcf omnetpp
    repro-experiment fig06 fig08 --jobs 8      # fan cells out over processes
    repro-experiment fig12 --resume            # retry recorded cell failures
    repro-experiment all --validate            # judge paper-shape claims too
    repro-experiment --list                    # registered experiment specs

Each experiment decomposes into independent simulation cells executed
by :mod:`repro.experiments.exec` — in parallel with ``--jobs N`` and
memoized in a content-addressed on-disk cache (``--cache-dir``,
``--no-cache``), so re-running an experiment, or running two experiments
that share cells (fig06 and fig08 share every baseline run), only
simulates what has never been simulated before.  Each experiment prints
the paper-artifact table it regenerates plus a run summary with the
cache-hit counter.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
import warnings
from typing import Optional, Sequence

from dataclasses import replace

from repro import api
from repro.backends import BACKEND_NAMES
from repro.errors import ConfigError, ReproError
from repro.experiments.cellcache import (
    CellCache,
    ExecStats,
    default_cache_dir,
)
from repro.experiments.registry import EXPERIMENTS, get_spec, iter_specs
from repro.metrics.charts import chart_result
from repro.obs.bench import build_bench_record, write_bench
from repro.obs.telemetry import DEFAULT_PROBE_INTERVAL, TelemetryConfig
from repro.validate.evaluate import (
    build_validation,
    doc_failed,
    evaluate_result,
    failed_entry,
)
from repro.validate.report import render_summary_line, write_validation

DEFAULT_TRACE_DIR = ".repro-traces"

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def run_experiment(name: str, scale_name: Optional[str] = None,
                   workloads: Optional[Sequence[str]] = None, *,
                   jobs: int = 1,
                   cache: Optional[object] = None,
                   resume: bool = False,
                   telemetry: Optional[TelemetryConfig] = None,
                   profile: bool = False,
                   backend: Optional[str] = None):
    """Run one experiment by id, returning its ExperimentResult.

    ``jobs`` fans the experiment's cells out over worker processes;
    ``cache`` (a CellCache or directory path) memoizes cells on disk;
    ``resume`` retries cells whose previous attempt failed;
    ``telemetry`` instruments every simulation cell (probe series plus,
    when its ``trace_dir`` is set, JSONL traces and manifests).

    Thin wrapper over :func:`repro.api.run_experiment` (the typed
    facade the service and external callers use) that adds the CLI's
    ignored-``--workloads`` warning.
    """
    spec = get_spec(name)
    if workloads and not spec.workload_aware:
        warnings.warn(
            f"experiment {name!r} does not take a workload restriction; "
            f"--workloads ignored",
            UserWarning, stacklevel=2,
        )
    request = api.ExperimentRequest(
        experiment=name, scale=scale_name,
        workloads=tuple(workloads) if workloads else None,
        jobs=jobs, resume=resume, profile=profile, backend=backend,
    )
    return api.run_experiment(request, cache=cache, telemetry=telemetry,
                              spec=spec)


def _print_spec_list() -> None:
    """The --list table: id, workload-awareness, title (from the registry)."""
    print(f"{'id':10s} {'workloads':10s} title")
    print(f"{'-' * 10} {'-' * 10} {'-' * 40}")
    for spec in iter_specs():
        aware = "yes" if spec.workload_aware else "-"
        print(f"{spec.name:10s} {aware:10s} {spec.title}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument("--scale", choices=("smoke", "small", "paper"),
                        default=None, help="run scale (default: $REPRO_SCALE or smoke)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these workload names")
    parser.add_argument("--jobs", type=int, metavar="N",
                        default=os.cpu_count() or 1,
                        help="worker processes for cell execution "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="on-disk cell cache location "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk cell cache")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="simulation backend: python (default), numpy "
                             "(vectorized; needs the [fast] extra), or auto "
                             "(numpy when available); results are "
                             "bit-identical across backends")
    parser.add_argument("--resume", action="store_true",
                        help="retry cells whose previous attempt failed "
                             "(completed cells still come from the cache)")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each table as DIR/<experiment>.csv")
    parser.add_argument("--chart", type=int, metavar="COL", default=None,
                        help="render column COL of each table as ASCII bars")
    parser.add_argument("--trace", action="store_true",
                        help="instrument every simulated cell: sample "
                             "credit/channel probes and stream JSONL traces "
                             "+ run manifests under --trace-dir")
    parser.add_argument("--probe-interval", type=int, metavar="CYCLES",
                        default=DEFAULT_PROBE_INTERVAL,
                        help="simulated cycles between probe samples "
                             f"(default: {DEFAULT_PROBE_INTERVAL})")
    parser.add_argument("--trace-dir", metavar="DIR",
                        default=DEFAULT_TRACE_DIR,
                        help="where --trace writes "
                             "<experiment>/<cell>.trace.jsonl "
                             f"(default: {DEFAULT_TRACE_DIR})")
    parser.add_argument("--profile", action="store_true",
                        help="sample executed cells' Python stacks "
                             "(repro.obs.profiler; observation-only, "
                             "results stay bit-identical) and write a "
                             "merged collapsed-stack profile")
    parser.add_argument("--profile-out", metavar="FILE",
                        default="profile.collapsed",
                        help="where --profile writes the merged profile "
                             "(default: profile.collapsed)")
    parser.add_argument("--bench", metavar="FILE", default=None,
                        help="write a BENCH performance-trajectory record "
                             "(per-experiment wall time and events/sec; "
                             "compare with 'repro-analyze bench')")
    parser.add_argument("--validate", action="store_true",
                        help="judge each experiment's registered paper-shape "
                             "claims and write a validation document "
                             "(see also the repro-validate CLI)")
    parser.add_argument("--validation-out", metavar="FILE",
                        default="validation.json",
                        help="where --validate writes the document "
                             "(default: validation.json)")
    args = parser.parse_args(argv)

    if args.list:
        _print_spec_list()
        return 0
    if not args.experiments:
        parser.error("no experiments given (or use --list)")

    cache = None if args.no_cache else CellCache(
        args.cache_dir or default_cache_dir())
    telemetry = (TelemetryConfig(probe_interval=args.probe_interval,
                                 trace_dir=args.trace_dir)
                 if args.trace else None)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments

    # Warn once, by name, about experiments that will ignore --workloads
    # (their specs declare themselves workload-unaware).
    if args.workloads:
        ignoring = [n for n in names
                    if n in EXPERIMENTS and not get_spec(n).workload_aware]
        if ignoring:
            print(f"warning: --workloads ignored by {', '.join(ignoring)} "
                  "(not workload-aware; see --list)", file=sys.stderr)

    totals = ExecStats()
    per_experiment: dict[str, ExecStats] = {}
    failed: list[str] = []
    validation_entries: dict[str, dict] = {}
    for name in names:
        start = time.time()
        spec_workloads = args.workloads
        if name in EXPERIMENTS and not get_spec(name).workload_aware:
            spec_workloads = None  # already warned above
        spec_telemetry = telemetry
        if telemetry is not None and telemetry.trace_dir:
            # One subdirectory per experiment keeps cell traces apart.
            spec_telemetry = replace(
                telemetry,
                trace_dir=os.path.join(telemetry.trace_dir, name))
        try:
            result = run_experiment(
                name, args.scale, spec_workloads,
                jobs=max(1, args.jobs), cache=cache, resume=args.resume,
                telemetry=spec_telemetry, profile=args.profile,
                backend=args.backend,
            )
        except ReproError as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            failed.append(name)
            # A failing cell still simulated something: fold the partial
            # stats into the batch totals so the run summary accounts
            # for every executed cell, failed experiments included.
            stats = getattr(exc, "stats", None)
            if stats is not None:
                per_experiment[name] = stats
                totals.merge(stats)
            if args.validate and name in EXPERIMENTS:
                validation_entries[name] = failed_entry(
                    get_spec(name).title, str(exc))
            continue
        except Exception:
            # One broken experiment must not abort the rest of an `all`
            # run; report it and continue.
            print(f"error: {name} raised an unexpected exception:",
                  file=sys.stderr)
            traceback.print_exc()
            failed.append(name)
            if args.validate and name in EXPERIMENTS:
                validation_entries[name] = failed_entry(
                    get_spec(name).title,
                    f"unexpected {sys.exc_info()[0].__name__}")
            continue
        if args.validate:
            entry = evaluate_result(get_spec(name), result)
            if entry is None:  # no claims registered for this spec
                entry = {"title": get_spec(name).title, "verdict": "pass",
                         "claims": []}
            validation_entries[name] = entry
        result.print()
        if args.chart is not None:
            try:
                print()
                print(chart_result(result, column=args.chart, baseline=1.0))
            except ConfigError as exc:
                print(f"(chart skipped: {exc})")
        if args.csv:
            path = result.to_csv(args.csv, name)
            print(f"[csv written to {path}]")
        stats = result.stats
        if stats is not None:
            per_experiment[name] = stats
            totals.merge(stats)
            print(f"[{name} took {time.time() - start:.1f}s — "
                  f"{stats.summary()}]")
            if stats.profile:
                print(stats.profile_summary())
            if args.trace and spec_telemetry is not None and stats.executed:
                print(f"[traces written under {spec_telemetry.trace_dir}]")
            print()
        else:
            print(f"[{name} took {time.time() - start:.1f}s]\n")

    if len(names) > 1 and totals.total:
        print(f"[run summary: {totals.summary()}]")
        if totals.profile:
            print(totals.profile_summary())
    if args.profile:
        from repro.obs.profiler import Profile, top_symbols

        merged = Profile()
        for text in totals.stack_profiles.values():
            merged.merge(Profile.parse(text))
        if merged.total_samples:
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(merged.collapsed())
            hottest = ", ".join(
                sym for sym, _, _ in top_symbols(merged, 3))
            print(f"[profile written to {args.profile_out}: "
                  f"{merged.total_samples} samples, "
                  f"{len(merged.cells())} cells; hottest: {hottest}]")
        else:
            print("[profile: no samples — every cell came from the cache; "
                  "use --no-cache to profile a full run]")
    if args.bench and per_experiment:
        scale = args.scale or os.environ.get("REPRO_SCALE", "smoke")
        record = build_bench_record(
            run_id=f"{'+'.join(sorted(per_experiment))}@{scale}",
            per_experiment=per_experiment, scale=scale)
        print(f"[bench record written to {write_bench(args.bench, record)}]")
    validation_failed = False
    if args.validate and validation_entries:
        scale = args.scale or os.environ.get("REPRO_SCALE", "smoke")
        doc = build_validation(validation_entries, scale=scale)
        path = write_validation(args.validation_out, doc)
        print(f"[validation document written to {path}]")
        print(render_summary_line(doc))
        validation_failed = doc_failed(doc)
    if failed:
        print(f"error: {len(failed)} experiment(s) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 1 if validation_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
