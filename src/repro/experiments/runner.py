"""Command-line experiment runner.

Usage::

    repro-experiment fig06                # one experiment, default scale
    repro-experiment all --scale small    # everything the paper reports
    repro-experiment table1 fig08 --workloads mcf omnetpp

Each experiment prints the paper-artifact table it regenerates.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.experiments.common import get_scale

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_bandwidth_vs_hitrate",
    "fig02": "repro.experiments.fig02_edram_capacity",
    "fig04": "repro.experiments.fig04_bandwidth_sensitivity",
    "fig05": "repro.experiments.fig05_tag_cache",
    "fig06": "repro.experiments.fig06_dap_speedup",
    "fig07": "repro.experiments.fig07_dap_decisions",
    "fig08": "repro.experiments.fig08_cas_fraction",
    "table1": "repro.experiments.table1_sensitivity",
    "fig09": "repro.experiments.fig09_memory_technology",
    "fig10": "repro.experiments.fig10_capacity_bandwidth",
    "fig11": "repro.experiments.fig11_related",
    "fig12": "repro.experiments.fig12_all_workloads",
    "fig13": "repro.experiments.fig13_16core",
    "fig14": "repro.experiments.fig14_alloy",
    "fig15": "repro.experiments.fig15_edram",
    "ablation": "repro.experiments.ablation_techniques",
    "flat": "repro.experiments.ext_flat_memory",
}

# Experiments that accept a `workloads` keyword.
_WORKLOAD_AWARE = set(EXPERIMENTS) - {"fig01", "fig12", "flat"}


def run_experiment(name: str, scale_name: Optional[str] = None,
                   workloads: Optional[Sequence[str]] = None):
    """Run one experiment by id, returning its ExperimentResult."""
    if name not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[name])
    scale = get_scale(scale_name)
    kwargs = {}
    if workloads and name in _WORKLOAD_AWARE:
        kwargs["workloads"] = list(workloads)
    return module.run(scale, **kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument("--scale", choices=("smoke", "small", "paper"),
                        default=None, help="run scale (default: $REPRO_SCALE or smoke)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to these workload names")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each table as DIR/<experiment>.csv")
    parser.add_argument("--chart", type=int, metavar="COL", default=None,
                        help="render column COL of each table as ASCII bars")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.time()
        try:
            result = run_experiment(name, args.scale, args.workloads)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        result.print()
        if args.chart is not None:
            from repro.errors import ConfigError
            from repro.metrics.charts import chart_result
            try:
                print()
                print(chart_result(result, column=args.chart, baseline=1.0))
            except ConfigError as exc:
                print(f"(chart skipped: {exc})")
        if args.csv:
            path = result.to_csv(args.csv, name)
            print(f"[csv written to {path}]")
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
