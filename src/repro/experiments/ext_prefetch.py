"""Extension: CBP prefetch throttling under rising bandwidth pressure.

The stride prefetcher is unthrottled in the paper's platform; the
CBP-style policy meters it with per-epoch credits sized by DRAM queue
occupancy. Scaling a streaming workload's rate-N mix from 2 to 16
copies raises that occupancy monotonically, so the throttle's *deny
rate* (denied prefetches / prefetch attempts) must rise with N — at
rate-2 the memory system has headroom and most prefetches issue; at
rate-16 it is saturated and nearly all are denied.

Columns: per-workload deny rate, their mean, and the rate-N geomean of
CBP's normalized weighted speedup over the unthrottled baseline (the
throttle must not tank performance to earn its deny rate).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix

#: Streaming, prefetch-friendly snippets: their stride streams keep the
#: prefetcher busy, so the throttle has something to meter.
WORKLOADS = ("parboil-lbm", "libquantum", "hpcg")
RATES = (2, 4, 8, 16)


def cells(scale: Scale, workloads) -> Iterator[MixCell]:
    for name in WORKLOADS:
        for ways in RATES:
            mix = rate_mix(name, ways=ways)
            for policy in ("baseline", "cbp"):
                yield MixCell(f"{name}@{ways}/{policy}", mix,
                              scaled_config(scale, policy=policy), scale)


def _deny_rate(result) -> float:
    granted = result.extras.get("pf_granted", 0.0)
    denied = result.extras.get("pf_denied", 0.0)
    total = granted + denied
    return denied / total if total else 0.0


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    for ways in RATES:
        denies = []
        speedups = []
        for name in WORKLOADS:
            base = ctx[f"{name}@{ways}/baseline"]
            cbp = ctx[f"{name}@{ways}/cbp"]
            denies.append(_deny_rate(cbp))
            speedups.append(normalized_weighted_speedup(cbp.ipc, base.ipc))
        result.add(f"rate-{ways}", *denies,
                   sum(denies) / len(denies), geomean(speedups))
    return result


def claims():
    """Registered throttle shapes (see repro.validate)."""
    from repro.validate import Claim, Col, monotone_rising, sign
    return (
        Claim(
            id="prefetch.deny_rate_rises",
            claim="the throttle's deny rate rises monotonically with "
                  "the rate-N bandwidth pressure",
            paper="feedback-directed prefetch throttling",
            predicate=monotone_rising(Col("mean_deny")),
        ),
        Claim(
            id="prefetch.saturation_denies",
            claim="at rate-16 the memory system is saturated and the "
                  "throttle denies nearly every prefetch",
            paper="feedback-directed prefetch throttling",
            predicate=sign(("rate-16", "mean_deny"), above=0.9),
        ),
        Claim(
            id="prefetch.throttle_not_harmful",
            claim="metering the prefetcher never collapses weighted "
                  "speedup at any pressure level",
            paper="feedback-directed prefetch throttling",
            # Calibrated across smoke (min 0.854) AND small (min 0.802):
            # the nightly re-judges this at small scale, so the bound
            # must hold there too, with margin.
            predicate=sign(Col("ws_cbp"), above=0.75),
        ),
    )


SPEC = ExperimentSpec(
    name="prefetch",
    title="Ext. — CBP prefetch throttling vs bandwidth pressure",
    headers=("mix",) + tuple(f"deny_{w}" for w in WORKLOADS)
            + ("mean_deny", "ws_cbp"),
    cells=cells,
    render=render,
    notes="stride-prefetch deny rate as rate-N scales the pressure",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
