"""Fig. 4: workload characterization — DRAM cache bandwidth sensitivity.

Top panel: weighted speedup when the 4 GB sectored DRAM cache's
bandwidth doubles from 102.4 GB/s to 204.8 GB/s, for all seventeen
rate-8 mixes. Bottom panel: L3 MPKI.

Expected shape: the twelve bandwidth-sensitive snippets gain
substantially from the doubling; the five insensitive ones sit near
1.0x. Sensitive workloads average the higher L3 MPKI (paper: 20.4 vs
11.6).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.mem.configs import hbm_102, hbm_204
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_INSENSITIVE, BANDWIDTH_SENSITIVE


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/102.4", mix,
                      scaled_config(scale, msc_dram=hbm_102()), scale)
        yield MixCell(f"{name}/204.8", mix,
                      scaled_config(scale, msc_dram=hbm_204()), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    sensitive_ws, insensitive_ws = [], []
    for name in ctx.workloads:
        mix = rate_mix(name)
        base = ctx[f"{name}/102.4"]
        fast = ctx[f"{name}/204.8"]
        ws = normalized_weighted_speedup(fast.ipc, base.ipc)
        cls = mix.category.replace("bandwidth-", "")
        result.add(name, cls, ws, base.mean_mpki)
        (sensitive_ws if cls == "sensitive" else insensitive_ws).append(ws)
    if sensitive_ws:
        result.add("GMEAN-sensitive", "", geomean(sensitive_ws), "")
    if insensitive_ws:
        result.add("GMEAN-insensitive", "", geomean(insensitive_ws), "")
    return result


def claims():
    """Fig. 4's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, ordering, sign
    return (
        Claim(
            id="fig04.classification_reproduces",
            claim="bandwidth-sensitive workloads gain clearly more from "
                  "doubling the cache bandwidth than insensitive ones",
            paper="Fig. 4",
            predicate=ordering(("GMEAN-sensitive", "ws_204.8/102.4"),
                               ("GMEAN-insensitive", "ws_204.8/102.4"),
                               margin=0.02),
        ),
        Claim(
            id="fig04.sensitive_gain",
            claim="the sensitive set gains substantially (geomean "
                  "clearly above 1.0) when bandwidth doubles",
            paper="Fig. 4",
            predicate=sign(("GMEAN-sensitive", "ws_204.8/102.4"),
                           above=1.05),
        ),
        Claim(
            id="fig04.mpki_separates_classes",
            claim="sensitive workloads carry the higher L3 MPKI "
                  "(mcf, a sensitive thrasher, well above milc, an "
                  "insensitive streamer)",
            paper="Fig. 4",
            predicate=ordering(("mcf", "l3_mpki"), ("milc", "l3_mpki"),
                               margin=2.0),
        ),
    )


SPEC = ExperimentSpec(
    name="fig04",
    title="Fig. 4 — speedup from doubling DRAM cache bandwidth",
    headers=("workload", "class", "ws_204.8/102.4", "l3_mpki"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE) + tuple(BANDWIDTH_INSENSITIVE),
    notes="rate-8 mixes, 4 GB sectored DRAM cache",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
