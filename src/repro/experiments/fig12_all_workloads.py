"""Fig. 12: DAP over the full 44-mix evaluation set.

Twelve bandwidth-sensitive rate-8 mixes, five bandwidth-insensitive
rate-8 mixes, and 27 heterogeneous mixes. Heterogeneous mixes use
alone-run IPCs as the weighted-speedup reference.

Expected shape: no bandwidth-insensitive mix loses (DAP seldom invokes
partitioning for them); heterogeneous mixes gain broadly; overall
geometric mean around the paper's 13%.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    mix_alone_ipcs,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import all_mixes


def run(scale: Optional[Scale] = None,
        max_mixes_per_category: Optional[int] = None) -> ExperimentResult:
    scale = scale or get_scale()
    result = ExperimentResult(
        experiment="Fig. 12 — DAP across all 44 mixes",
        headers=["mix", "category", "norm_ws_dap"],
    )
    per_category: dict[str, list[float]] = {}
    counts: dict[str, int] = {}
    base_cfg = scaled_config(scale, policy="baseline")
    dap_cfg = scaled_config(scale, policy="dap")
    for mix in all_mixes():
        if max_mixes_per_category is not None:
            if counts.get(mix.category, 0) >= max_mixes_per_category:
                continue
            counts[mix.category] = counts.get(mix.category, 0) + 1
        alone = (mix_alone_ipcs(mix, base_cfg, scale)
                 if mix.category == "heterogeneous" else None)
        base = run_mix(mix, base_cfg, scale)
        dap = run_mix(mix, dap_cfg, scale)
        ws = normalized_weighted_speedup(dap.ipc, base.ipc, alone)
        result.add(mix.name, mix.category, ws)
        per_category.setdefault(mix.category, []).append(ws)
    for category, values in per_category.items():
        result.add(f"GMEAN-{category}", "", geomean(values))
    result.add("GMEAN-all", "",
               geomean([v for vs in per_category.values() for v in vs]))
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
