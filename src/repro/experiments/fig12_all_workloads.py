"""Fig. 12: DAP over the full 44-mix evaluation set.

Twelve bandwidth-sensitive rate-8 mixes, five bandwidth-insensitive
rate-8 mixes, and 27 heterogeneous mixes. Heterogeneous mixes use
alone-run IPCs as the weighted-speedup reference — each reference is
its own simulation cell, shared across mixes (and worker processes)
through the cell cache.

Expected shape: no bandwidth-insensitive mix loses (DAP seldom invokes
partitioning for them); heterogeneous mixes gain broadly; overall
geometric mean around the paper's 13%.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    AloneIpcCell,
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import Mix, all_mixes


def _selected_mixes(max_mixes_per_category: Optional[int]) -> list[Mix]:
    if max_mixes_per_category is None:
        return all_mixes()
    counts: dict[str, int] = {}
    selected = []
    for mix in all_mixes():
        if counts.get(mix.category, 0) >= max_mixes_per_category:
            continue
        counts[mix.category] = counts.get(mix.category, 0) + 1
        selected.append(mix)
    return selected


def cells(scale: Scale, workloads=None,
          max_mixes_per_category: Optional[int] = None) -> Iterator:
    base_cfg = scaled_config(scale, policy="baseline")
    dap_cfg = scaled_config(scale, policy="dap")
    alone_seen = set()
    for mix in _selected_mixes(max_mixes_per_category):
        yield MixCell(f"{mix.name}/baseline", mix, base_cfg, scale)
        yield MixCell(f"{mix.name}/dap", mix, dap_cfg, scale)
        if mix.category == "heterogeneous":
            for member in mix.members:
                if member not in alone_seen:
                    alone_seen.add(member)
                    yield AloneIpcCell(f"alone/{member}", member, base_cfg,
                                       scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    per_category: dict[str, list[float]] = {}
    for mix in _selected_mixes(ctx.options.get("max_mixes_per_category")):
        alone = ([ctx[f"alone/{member}"] for member in mix.members]
                 if mix.category == "heterogeneous" else None)
        base = ctx[f"{mix.name}/baseline"]
        dap = ctx[f"{mix.name}/dap"]
        ws = normalized_weighted_speedup(dap.ipc, base.ipc, alone)
        result.add(mix.name, mix.category, ws)
        per_category.setdefault(mix.category, []).append(ws)
    for category, values in per_category.items():
        result.add(f"GMEAN-{category}", "", geomean(values))
    result.add("GMEAN-all", "",
               geomean([v for vs in per_category.values() for v in vs]))
    return result


def claims():
    """Fig. 12's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, ordering, sign
    return (
        Claim(
            id="fig12.overall_gain",
            claim="DAP gains over the full evaluation set (geomean "
                  "across all mixes above 1.0)",
            paper="Fig. 12",
            predicate=sign(("GMEAN-all", "norm_ws_dap"), above=1.0),
        ),
        Claim(
            id="fig12.insensitive_unharmed",
            claim="bandwidth-insensitive mixes are essentially "
                  "unharmed — DAP seldom invokes partitioning for them",
            paper="Fig. 12",
            predicate=sign(("GMEAN-bandwidth-insensitive", "norm_ws_dap"),
                           above=0.97),
        ),
        Claim(
            id="fig12.sensitive_gain_larger",
            claim="bandwidth-sensitive mixes gain far more than "
                  "insensitive ones",
            paper="Fig. 12",
            predicate=ordering(
                ("GMEAN-bandwidth-sensitive", "norm_ws_dap"),
                ("GMEAN-bandwidth-insensitive", "norm_ws_dap"),
                margin=0.05),
        ),
    )


SPEC = ExperimentSpec(
    name="fig12",
    title="Fig. 12 — DAP across all 44 mixes",
    headers=("mix", "category", "norm_ws_dap"),
    cells=cells,
    render=render,
    workload_aware=False,
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        max_mixes_per_category: Optional[int] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale,
                    options={"max_mixes_per_category": max_mixes_per_category})


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
