"""Fig. 11: DAP against the related proposals SBD, SBD-WT and BATMAN.

All policies run on the optimized sectored DRAM cache baseline.

Expected shape: SBD *loses* performance (forced cleaning of pages
leaving its Dirty List floods main memory — paper: -16% average);
SBD-WT recovers to a modest gain; BATMAN hovers near the baseline;
DAP clearly wins.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

POLICIES = ("sbd", "sbd-wt", "batman", "dap")


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Fig. 11 — comparison with SBD, SBD-WT and BATMAN",
        headers=["workload"] + list(POLICIES),
        notes="normalized weighted speedup over the optimized baseline",
    )
    columns: dict[str, list[float]] = {p: [] for p in POLICIES}
    for name in workloads:
        mix = rate_mix(name)
        base = run_mix(mix, scaled_config(scale, policy="baseline"), scale)
        row = [name]
        for policy in POLICIES:
            run_result = run_mix(mix, scaled_config(scale, policy=policy), scale)
            ws = normalized_weighted_speedup(run_result.ipc, base.ipc)
            row.append(ws)
            columns[policy].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(columns[p]) for p in POLICIES])
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
