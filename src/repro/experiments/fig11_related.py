"""Fig. 11: DAP against the related proposals SBD, SBD-WT and BATMAN.

All policies run on the optimized sectored DRAM cache baseline.

Expected shape: SBD *loses* performance (forced cleaning of pages
leaving its Dirty List floods main memory — paper: -16% average);
SBD-WT recovers to a modest gain; BATMAN hovers near the baseline;
DAP clearly wins.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

POLICIES = ("sbd", "sbd-wt", "batman", "dap")


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for policy in ("baseline",) + POLICIES:
            yield MixCell(f"{name}/{policy}", mix,
                          scaled_config(scale, policy=policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    columns: dict[str, list[float]] = {p: [] for p in POLICIES}
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        row = [name]
        for policy in POLICIES:
            ws = normalized_weighted_speedup(ctx[f"{name}/{policy}"].ipc,
                                             base.ipc)
            row.append(ws)
            columns[policy].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(columns[p]) for p in POLICIES])
    return result


def claims():
    """Fig. 11's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, ordering, sign
    return (
        Claim(
            id="fig11.dap_gains",
            claim="DAP delivers a clear geomean gain over the "
                  "optimized baseline",
            paper="Fig. 11",
            predicate=sign(("GMEAN", "dap"), above=1.0),
        ),
        Claim(
            id="fig11.dap_beats_batman",
            claim="DAP beats BATMAN, which never rises above the "
                  "baseline",
            paper="Fig. 11",
            predicate=ordering(("GMEAN", "dap"), ("GMEAN", "batman"),
                               margin=0.05),
            deviation="BATMAN loses outright at smoke scale "
                      "(parboil-lbm 0.61); the paper has it hovering "
                      "near the baseline",
        ),
        Claim(
            id="fig11.sbd_wt_recovers",
            claim="write-through SBD-WT recovers performance relative "
                  "to plain SBD",
            paper="Fig. 11",
            predicate=ordering(("GMEAN", "sbd-wt"), ("GMEAN", "sbd")),
            deviation="both SBD variants *gain* at smoke scale and "
                      "outpace DAP (paper: SBD loses 16%) — the "
                      "Dirty-List cleaning floods that sink SBD need "
                      "paper-scale write pressure",
        ),
    )


SPEC = ExperimentSpec(
    name="fig11",
    title="Fig. 11 — comparison with SBD, SBD-WT and BATMAN",
    headers=("workload",) + POLICIES,
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="normalized weighted speedup over the optimized baseline",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
