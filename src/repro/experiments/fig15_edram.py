"""Fig. 15: DAP on the sectored eDRAM cache (three bandwidth sources).

Three systems normalized to the 256 MB eDRAM baseline: DAP on 256 MB,
the 512 MB baseline, and DAP on 512 MB. The second column reports the
change in memory-side cache hit rate vs the 256 MB baseline.

Expected shape: DAP trades hit rate for performance at both capacities
(paper: -9.5pp hit rate yet +7% at 256 MB; at 512 MB the baseline gains
hit rate but only +2% performance while DAP gets +11%).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, get_scale, run_mix
from repro.experiments.fig02_edram_capacity import edram_config
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

SYSTEMS = (
    ("256MB_dap", 256, "dap"),
    ("512MB_base", 512, "baseline"),
    ("512MB_dap", 512, "dap"),
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    ws_headers = [f"ws_{name}" for name, _, _ in SYSTEMS]
    hit_headers = [f"dhit_{name}" for name, _, _ in SYSTEMS]
    result = ExperimentResult(
        experiment="Fig. 15 — DAP on the eDRAM cache",
        headers=["workload"] + ws_headers + hit_headers,
        notes="normalized to the 256 MB baseline; dhit in percentage points",
    )
    columns: dict[str, list[float]] = {h: [] for h in ws_headers}
    for name in workloads:
        mix = rate_mix(name)
        ref = run_mix(mix, edram_config(scale, 256, "baseline"), scale)
        row = [name]
        hits = []
        for label, capacity, policy in SYSTEMS:
            res = run_mix(mix, edram_config(scale, capacity, policy), scale)
            ws = normalized_weighted_speedup(res.ipc, ref.ipc)
            row.append(ws)
            columns[f"ws_{label}"].append(ws)
            hits.append((res.served_hit_rate - ref.served_hit_rate) * 100)
        result.add(*(row + hits))
    result.add("GMEAN", *[geomean(columns[h]) for h in ws_headers],
               "", "", "")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
