"""Fig. 15: DAP on the sectored eDRAM cache (three bandwidth sources).

Three systems normalized to the 256 MB eDRAM baseline: DAP on 256 MB,
the 512 MB baseline, and DAP on 512 MB. The second column reports the
change in memory-side cache hit rate vs the 256 MB baseline.

Expected shape: DAP trades hit rate for performance at both capacities
(paper: -9.5pp hit rate yet +7% at 256 MB; at 512 MB the baseline gains
hit rate but only +2% performance while DAP gets +11%).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.experiments.fig02_edram_capacity import edram_config
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

SYSTEMS = (
    ("256MB_dap", 256, "dap"),
    ("512MB_base", 512, "baseline"),
    ("512MB_dap", 512, "dap"),
)
_WS_HEADERS = tuple(f"ws_{name}" for name, _, _ in SYSTEMS)
_HIT_HEADERS = tuple(f"dhit_{name}" for name, _, _ in SYSTEMS)


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/256MB_base", mix,
                      edram_config(scale, 256, "baseline"), scale)
        for label, capacity, policy in SYSTEMS:
            yield MixCell(f"{name}/{label}", mix,
                          edram_config(scale, capacity, policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    columns: dict[str, list[float]] = {h: [] for h in _WS_HEADERS}
    for name in ctx.workloads:
        ref = ctx[f"{name}/256MB_base"]
        row = [name]
        hits = []
        for label, _, _ in SYSTEMS:
            res = ctx[f"{name}/{label}"]
            ws = normalized_weighted_speedup(res.ipc, ref.ipc)
            row.append(ws)
            columns[f"ws_{label}"].append(ws)
            hits.append((res.served_hit_rate - ref.served_hit_rate) * 100)
        result.add(*(row + hits))
    result.add("GMEAN", *[geomean(columns[h]) for h in _WS_HEADERS],
               "", "", "")
    return result


def claims():
    """Fig. 15's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, Col, ordering, sign, within_rel
    return (
        Claim(
            id="fig15.hit_rate_traded",
            claim="every workload's hit rate drops under DAP at "
                  "256 MB — partitioning knowingly spends hits",
            paper="Fig. 15",
            predicate=sign(Col("dhit_256MB_dap"), below=0.0),
        ),
        Claim(
            id="fig15.dap_holds_at_256mb",
            claim="DAP holds performance on the 256 MB eDRAM cache "
                  "(within 2% of the baseline) despite the hit-rate "
                  "sacrifice",
            paper="Fig. 15",
            predicate=within_rel(Cells((("GMEAN", "ws_256MB_dap"),)),
                                 0.02, target=1.0),
            deviation="the paper's +7% gain does not materialize at "
                      "smoke scale — divisor-64 footprints leave the "
                      "eDRAM read channels unsaturated, so there is "
                      "little bandwidth to reclaim",
        ),
        Claim(
            id="fig15.dap_stacks_on_capacity",
            claim="DAP on the 512 MB cache clearly beats DAP on "
                  "256 MB — the techniques compose with capacity",
            paper="Fig. 15",
            predicate=ordering(("GMEAN", "ws_512MB_dap"),
                               ("GMEAN", "ws_256MB_dap"),
                               margin=0.10),
            deviation="DAP-on-512MB trails the 512 MB *baseline* "
                      "slightly at smoke scale (1.188 vs 1.200; paper: "
                      "+11% vs +2%) — same unsaturated-channel effect",
        ),
    )


SPEC = ExperimentSpec(
    name="fig15",
    title="Fig. 15 — DAP on the eDRAM cache",
    headers=("workload",) + _WS_HEADERS + _HIT_HEADERS,
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="normalized to the 256 MB baseline; dhit in percentage points",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
