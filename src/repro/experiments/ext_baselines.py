"""Extension: DAP against the post-2017 related-work policy frontier.

Banshee-style frequency-threshold fill admission (Yu et al., MICRO
2017), TUNTU-style selective replacement update (Young & Qureshi) and a
CBP-style bandwidth-pressure prefetch throttle all attack the same
DRAM-cache fill-bandwidth bloat DAP partitions around — but none of
them *partitions*: they cut specific traffic components and leave the
access split wherever it lands. This experiment runs all three against
DAP on the paper's bandwidth-sensitive rate-8 mixes and reports, per
workload:

- normalized weighted speedup over the optimized baseline (as Fig. 11);
- demand fill-write bandwidth (GB/s) under always-fill
  (``banshee-always``), Banshee's threshold, and TUNTU's selective
  update — the bandwidth each admission filter saves;
- Banshee's tag-update bandwidth (the cost of keeping frequency
  counters with the in-DRAM tags);
- the partition gap ``|measured MM CAS fraction - optimal|`` (Eq. 4),
  quantifying that bypass heuristics do not *steer toward* the optimal
  partition while DAP does.

Expected shape: DAP wins the speedup geomean; Banshee's threshold cuts
fill bandwidth relative to always-fill while TUNTU's first-touch filter
is far milder (it re-admits any page with proven reuse, and its higher
IPC shortens runtime, so its fill GB/s can even exceed always-fill);
every bypass baseline sits farther from the optimal partition than DAP.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.bandwidth_model import optimal_mm_cas_fraction
from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

POLICIES = ("banshee", "tuntu", "cbp", "dap")
#: The always-fill traffic reference: Banshee with its threshold at
#: zero, so the fill-bandwidth comparison isolates the admission filter.
REFERENCE = "banshee-always"

CPU_GHZ = 4.0


def _counter_gbps(count: float, cycles: int) -> float:
    """Bandwidth of ``count`` 64-byte transfers spread over ``cycles``."""
    if cycles <= 0:
        return 0.0
    seconds = cycles / (CPU_GHZ * 1e9)
    return count * 64 / seconds / 1e9


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for policy in ("baseline", REFERENCE) + POLICIES:
            yield MixCell(f"{name}/{policy}", mix,
                          scaled_config(scale, policy=policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    optimal = optimal_mm_cas_fraction(102.4, 38.4)
    result = ctx.new_result(
        notes=f"normalized WS over baseline; optimal MM CAS fraction = "
              f"{optimal:.3f}")
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        always = ctx[f"{name}/{REFERENCE}"]
        banshee = ctx[f"{name}/banshee"]
        tuntu = ctx[f"{name}/tuntu"]
        dap = ctx[f"{name}/dap"]
        row = [name]
        for policy in POLICIES:
            row.append(normalized_weighted_speedup(
                ctx[f"{name}/{policy}"].ipc, base.ipc))
        row.extend([
            _counter_gbps(always.extras["fills_performed"], always.cycles),
            _counter_gbps(banshee.extras["fills_performed"], banshee.cycles),
            _counter_gbps(tuntu.extras["fills_performed"], tuntu.cycles),
            _counter_gbps(banshee.extras["tag_updates"], banshee.cycles),
            abs(banshee.mm_cas_fraction - optimal),
            abs(tuntu.mm_cas_fraction - optimal),
            abs(dap.mm_cas_fraction - optimal),
        ])
        result.add(*row)
    ws_cols = range(1, 1 + len(POLICIES))
    result.summary_row("GMEAN", geomean, ws_cols)
    result.summary_row(
        "MEAN", lambda xs: sum(xs) / len(xs),
        range(1 + len(POLICIES), len(result.headers)))
    return result


def claims():
    """Registered frontier shapes (see repro.validate)."""
    from repro.validate import Claim, ordering, sign
    return (
        Claim(
            id="baselines.dap_beats_banshee",
            claim="DAP's weighted-speedup geomean beats Banshee-style "
                  "frequency-threshold fill admission",
            paper="Sec. VII (related work); Banshee MICRO'17",
            predicate=ordering(("GMEAN", "dap"), ("GMEAN", "banshee"),
                               margin=0.02),
        ),
        Claim(
            id="baselines.dap_beats_tuntu",
            claim="DAP's weighted-speedup geomean beats TUNTU-style "
                  "selective replacement update",
            paper="Sec. VII (related work); Young & Qureshi",
            predicate=ordering(("GMEAN", "dap"), ("GMEAN", "tuntu"),
                               margin=0.02),
        ),
        Claim(
            id="baselines.dap_beats_cbp",
            claim="DAP's weighted-speedup geomean beats CBP-style "
                  "prefetch throttling",
            paper="Sec. VII (related work)",
            predicate=ordering(("GMEAN", "dap"), ("GMEAN", "cbp"),
                               margin=0.02),
        ),
        Claim(
            id="baselines.banshee_cuts_fill_traffic",
            claim="Banshee's frequency threshold lowers demand fill "
                  "bandwidth versus always-fill",
            paper="Banshee MICRO'17, Fig. 1",
            predicate=ordering(("MEAN", "fill_always"),
                               ("MEAN", "fill_banshee")),
        ),
        Claim(
            id="baselines.tuntu_milder_than_banshee",
            claim="TUNTU's first-touch filter admits more fill traffic "
                  "than Banshee's frequency threshold",
            paper="Young & Qureshi vs Banshee MICRO'17",
            predicate=ordering(("MEAN", "fill_tuntu"),
                               ("MEAN", "fill_banshee")),
        ),
        Claim(
            id="baselines.banshee_pays_tag_traffic",
            claim="Banshee's in-DRAM frequency counters cost real "
                  "cache-DRAM tag-update bandwidth",
            paper="Banshee MICRO'17, Sec. 4.3",
            predicate=sign(("MEAN", "tag_gbps"), above=0.0),
        ),
        Claim(
            id="baselines.dap_gap_below_banshee",
            claim="DAP lands nearer the optimal access partition than "
                  "Banshee's bypass heuristic",
            paper="Eq. 4 / Fig. 8",
            predicate=ordering(("MEAN", "gap_banshee"), ("MEAN", "gap_dap")),
        ),
        Claim(
            id="baselines.dap_gap_below_tuntu",
            claim="DAP lands nearer the optimal access partition than "
                  "TUNTU's selective update",
            paper="Eq. 4 / Fig. 8",
            predicate=ordering(("MEAN", "gap_tuntu"), ("MEAN", "gap_dap")),
        ),
    )


SPEC = ExperimentSpec(
    name="baselines",
    title="Ext. — DAP vs Banshee / TUNTU / CBP baselines",
    headers=("workload", "banshee", "tuntu", "cbp", "dap",
             "fill_always", "fill_banshee", "fill_tuntu", "tag_gbps",
             "gap_banshee", "gap_tuntu", "gap_dap"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="post-2017 related-work frontier on the sectored cache",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
