"""Fig. 6: DAP on the sectored DRAM cache.

Top panel: weighted speedup of DAP over the optimized baseline for the
twelve bandwidth-sensitive rate-8 mixes. Bottom panel: average L3 read
miss latency of DAP normalized to the baseline.

Expected shape: broad gains (paper: average 15.2%, omnetpp the largest,
parboil-lbm ~neutral because its baseline already runs near the optimal
main-memory CAS fraction); the speedups correlate with the read-latency
savings.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/baseline", mix,
                      scaled_config(scale, policy="baseline"), scale)
        yield MixCell(f"{name}/dap", mix,
                      scaled_config(scale, policy="dap"), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    speedups = []
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        dap = ctx[f"{name}/dap"]
        ws = normalized_weighted_speedup(dap.ipc, base.ipc)
        lat = (dap.avg_read_latency / base.avg_read_latency
               if base.avg_read_latency else 1.0)
        result.add(name, ws, lat)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def claims():
    """Fig. 6's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, sign
    return (
        Claim(
            id="fig06.dap_gains",
            claim="DAP improves geomean weighted speedup over the "
                  "optimized baseline on the bandwidth-sensitive mixes",
            paper="Fig. 6",
            predicate=sign(("GMEAN", "norm_ws_dap"), above=1.0),
        ),
        Claim(
            id="fig06.latency_drops_for_winners",
            claim="DAP's speedups come with lower normalized L3 read "
                  "miss latency for the big winners (astar.BigLakes, "
                  "omnetpp)",
            paper="Fig. 6",
            predicate=sign(Cells((("astar.BigLakes", "norm_read_latency"),
                                  ("omnetpp", "norm_read_latency"))),
                           below=1.0),
        ),
    )


SPEC = ExperimentSpec(
    name="fig06",
    title="Fig. 6 — DAP speedup and read-miss latency",
    headers=("workload", "norm_ws_dap", "norm_read_latency"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="rate-8 mixes, 4 GB / 102.4 GB/s sectored DRAM cache, W=64 E=0.75",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
