"""Fig. 6: DAP on the sectored DRAM cache.

Top panel: weighted speedup of DAP over the optimized baseline for the
twelve bandwidth-sensitive rate-8 mixes. Bottom panel: average L3 read
miss latency of DAP normalized to the baseline.

Expected shape: broad gains (paper: average 15.2%, omnetpp the largest,
parboil-lbm ~neutral because its baseline already runs near the optimal
main-memory CAS fraction); the speedups correlate with the read-latency
savings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Fig. 6 — DAP speedup and read-miss latency",
        headers=["workload", "norm_ws_dap", "norm_read_latency"],
        notes="rate-8 mixes, 4 GB / 102.4 GB/s sectored DRAM cache, W=64 E=0.75",
    )
    speedups = []
    for name in workloads:
        mix = rate_mix(name)
        base = run_mix(mix, scaled_config(scale, policy="baseline"), scale)
        dap = run_mix(mix, scaled_config(scale, policy="dap"), scale)
        ws = normalized_weighted_speedup(dap.ipc, base.ipc)
        lat = (dap.avg_read_latency / base.avg_read_latency
               if base.avg_read_latency else 1.0)
        result.add(name, ws, lat)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
