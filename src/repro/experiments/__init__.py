"""Experiment harness: one module per paper table/figure.

Every experiment module exposes ``run(scale: Scale) -> ExperimentResult``
and can be executed standalone (``python -m repro.experiments.fig06_dap_speedup``)
or through :mod:`repro.experiments.runner`. The :class:`~repro.experiments.common.Scale`
controls trace lengths and capacity scaling — never model fidelity — so
the same code produces CI-speed smoke results and paper-scale sweeps.
"""

from repro.experiments.common import (
    Scale,
    SMOKE,
    SMALL,
    PAPER,
    get_scale,
    ExperimentResult,
)

__all__ = ["Scale", "SMOKE", "SMALL", "PAPER", "get_scale", "ExperimentResult"]
