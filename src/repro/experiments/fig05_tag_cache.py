"""Fig. 5: the optimized baseline's SRAM tag cache.

Top panel: weighted speedup from adding the 32K-entry 4-way tag cache
to the sectored DRAM cache baseline. Bottom panel: tag-cache miss rate.

Expected shape: most workloads gain substantially (paper average 16%);
astar.BigLakes and omnetpp show the *highest* tag-cache miss rates
(poor sector utilization) yet still benefit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Fig. 5 — effect of the SRAM tag cache",
        headers=["workload", "ws_tagcache/none", "tag_miss_rate"],
        notes="rate-8 mixes, sectored DRAM cache 4 GB / 102.4 GB/s",
    )
    speedups = []
    for name in workloads:
        mix = rate_mix(name)
        without = run_mix(mix, scaled_config(scale, use_tag_cache=False), scale)
        with_tc = run_mix(mix, scaled_config(scale, use_tag_cache=True), scale)
        ws = normalized_weighted_speedup(with_tc.ipc, without.ipc)
        result.add(name, ws, with_tc.tag_cache_miss_rate or 0.0)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
