"""Fig. 5: the optimized baseline's SRAM tag cache.

Top panel: weighted speedup from adding the 32K-entry 4-way tag cache
to the sectored DRAM cache baseline. Bottom panel: tag-cache miss rate.

Expected shape: most workloads gain substantially (paper average 16%);
astar.BigLakes and omnetpp show the *highest* tag-cache miss rates
(poor sector utilization) yet still benefit.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/no-tc", mix,
                      scaled_config(scale, use_tag_cache=False), scale)
        yield MixCell(f"{name}/tc", mix,
                      scaled_config(scale, use_tag_cache=True), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    speedups = []
    for name in ctx.workloads:
        without = ctx[f"{name}/no-tc"]
        with_tc = ctx[f"{name}/tc"]
        ws = normalized_weighted_speedup(with_tc.ipc, without.ipc)
        result.add(name, ws, with_tc.tag_cache_miss_rate or 0.0)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups), "")
    return result


def claims():
    """Fig. 5's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, sign
    return (
        Claim(
            id="fig05.tag_cache_pays",
            claim="the 32K-entry SRAM tag cache improves geomean "
                  "weighted speedup over the no-tag-cache baseline",
            paper="Fig. 5",
            predicate=sign(("GMEAN", "ws_tagcache/none"), above=1.0),
        ),
        Claim(
            id="fig05.thrashers_highest_miss",
            claim="omnetpp and astar.BigLakes — the poor-sector-"
                  "utilization workloads — show the highest tag-cache "
                  "miss rates yet still benefit",
            paper="Fig. 5",
            predicate=sign(Cells((("omnetpp", "tag_miss_rate"),
                                  ("astar.BigLakes", "tag_miss_rate"))),
                           above=0.2),
        ),
        Claim(
            id="fig05.streamers_lowest_miss",
            claim="streaming workloads barely miss the tag cache "
                  "(libquantum's sectors stay resident)",
            paper="Fig. 5",
            predicate=sign(("libquantum", "tag_miss_rate"), below=0.1),
        ),
    )


SPEC = ExperimentSpec(
    name="fig05",
    title="Fig. 5 — effect of the SRAM tag cache",
    headers=("workload", "ws_tagcache/none", "tag_miss_rate"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="rate-8 mixes, sectored DRAM cache 4 GB / 102.4 GB/s",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
