"""Shared experiment machinery: scales, run helpers, table formatting.

The paper simulates one billion instructions per thread on gigabyte
caches; a pure-Python reproduction scales the *capacities and trace
lengths together* so the footprint:capacity ratios (and therefore hit
rates, bandwidth pressure, and every shape the paper reports) are
preserved at a laptop-friendly cost. ``Scale`` holds that knob.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.backends import active_backend
from repro.errors import ConfigError
from repro.obs.manifest import build_manifest
from repro.obs.probes import attach_system_probes
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.obs.trace import TraceWriter, trace_paths, write_manifest
from repro.experiments.cellcache import (
    ExecStats,
    alone_ipc_key_parts,
    cell_key,
)
from repro.hierarchy.cache_hierarchy import SramLevels
from repro.hierarchy.system import GiB, SystemConfig, build_system
from repro.metrics.speedup import ALONE_IPC_CACHE
from repro.metrics.stats import RunResult, collect_result
from repro.workloads.mixes import Mix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace


@dataclass(frozen=True)
class Scale:
    """Joint scaling of capacities, footprints, and trace lengths.

    ``capacity_divisor`` divides the memory-side cache capacity and the
    workload warm-set footprints together, so footprint:capacity ratios
    (hence hit rates and bandwidth pressure) match the paper; the SRAM
    hierarchy shrinks with it so the hot regions still exceed the L3.
    """

    name: str
    capacity_divisor: int
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    refs_per_core: int
    kernel_reads: int = 20_000

    @property
    def footprint_scale(self) -> float:
        return 1.0 / self.capacity_divisor

    def msc_capacity(self, paper_bytes: int) -> int:
        return max(1 << 20, paper_bytes // self.capacity_divisor)

    def sram_levels(self) -> SramLevels:
        return SramLevels(l1_bytes=self.l1_bytes, l2_bytes=self.l2_bytes,
                          l3_bytes=self.l3_bytes)


SMOKE = Scale(
    name="smoke", capacity_divisor=64,
    l1_bytes=16 * 1024, l2_bytes=64 * 1024, l3_bytes=256 * 1024,
    refs_per_core=20_000, kernel_reads=8_000,
)
SMALL = Scale(
    name="small", capacity_divisor=16,
    l1_bytes=16 * 1024, l2_bytes=64 * 1024, l3_bytes=1024 * 1024,
    refs_per_core=100_000, kernel_reads=20_000,
)
PAPER = Scale(
    name="paper", capacity_divisor=1,
    l1_bytes=32 * 1024, l2_bytes=256 * 1024, l3_bytes=8 * 1024 * 1024,
    refs_per_core=2_000_000, kernel_reads=100_000,
)

_SCALES = {s.name: s for s in (SMOKE, SMALL, PAPER)}


def get_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by name or the ``REPRO_SCALE`` environment var."""
    chosen = name or os.environ.get("REPRO_SCALE", "smoke")
    try:
        return _SCALES[chosen]
    except KeyError:
        raise ConfigError(
            f"unknown scale {chosen!r}; expected one of {sorted(_SCALES)}"
        ) from None


# ----------------------------------------------------------------------
# Config and run helpers
# ----------------------------------------------------------------------

def scaled_config(scale: Scale, policy: str = "baseline",
                  paper_capacity: int = 4 * GiB, **overrides) -> SystemConfig:
    """A SystemConfig with capacities reduced per the scale.

    SRAM metadata structures (tag cache, DBC, footprint table) shrink by
    the same divisor so their pressure — e.g. omnetpp's tag-cache thrash
    in Fig. 5 — is preserved at small scale.
    """
    div = scale.capacity_divisor
    sram = overrides.pop("sram", None) or scale.sram_levels()
    overrides.setdefault("tag_cache_entries", max(2048, 32 * 1024 // div))
    overrides.setdefault("dbc_entries", max(512, 32 * 1024 // div))
    overrides.setdefault("footprint_entries", max(1024, 64 * 1024 // div))
    return SystemConfig(
        policy=policy,
        msc_capacity_bytes=scale.msc_capacity(paper_capacity),
        sram=sram,
        **overrides,
    )


# Traces at most this many total references are materialized to lists
# before the run (about 100 MB at the limit); larger ones stream.
_MATERIALIZE_REFS_LIMIT = 1_000_000


def warm_system(system, mix: Mix, scale: Scale) -> int:
    """Pre-install the mix's warm set in the memory-side cache.

    Delegated to the active backend: the python backend streams
    ``warm_many``; the numpy backend installs pre-grouped sector masks.
    The resulting cache state is bit-identical either way.
    """
    return active_backend().warm_mix(system.msc, mix, scale.footprint_scale)


def run_mix(mix: Mix, config: SystemConfig, scale: Scale,
            warm: bool = True,
            telemetry: Optional[TelemetryConfig] = None,
            label: Optional[str] = None,
            system_out: Optional[list] = None) -> RunResult:
    """Build, warm, and run one mix on one configuration.

    Every run attaches a provenance manifest (config, policy, git SHA,
    wall time, events/sec) to ``result.extras["manifest"]``.  With a
    :class:`~repro.obs.telemetry.TelemetryConfig` the system is
    additionally instrumented: credit-counter / channel probes sample on
    ``probe_interval`` and, when ``trace_dir`` is set, stream to a JSONL
    trace next to a ``.manifest.json`` copy. Telemetry only observes —
    the simulated outcome is identical with or without it.
    """
    if config.num_cores != mix.num_cores:
        config = replace(config, num_cores=mix.num_cores)
    if scale.refs_per_core * mix.num_cores <= _MATERIALIZE_REFS_LIMIT:
        # Materialize bounded traces at build time through the active
        # backend. The reference stream is identical, but the synthesis
        # work leaves the run loop (the cores consume a C-speed list
        # iterator), the backend may vectorize the materialization, and
        # the backend's trace store shares each (workload, seed) trace
        # across the cells of one invocation. Unbounded (paper-scale)
        # traces keep streaming to cap memory.
        traces = [iter(t) for t in active_backend().mix_traces(
            mix, scale.refs_per_core, scale.footprint_scale)]
    else:
        traces = mix.traces(refs_per_core=scale.refs_per_core,
                            scale=scale.footprint_scale)
    system = build_system(config, traces)
    if system_out is not None:
        # Determinism harnesses fingerprint per-channel state post-run.
        system_out.append(system)
    if warm:
        warm_system(system, mix, scale)

    label = label or f"{mix.name}/{config.policy}"
    tel = sink = manifest_path = None
    if telemetry is not None:
        if telemetry.trace_dir:
            trace_path, manifest_path = trace_paths(telemetry.trace_dir, label)
            sink = TraceWriter(trace_path)
        tel = Telemetry.from_config(system.sim, telemetry, sink=sink)
        attach_system_probes(tel, system)
        if sink is not None:
            sink.write_meta(label, tel.probe_names(), tel.interval)
        system.telemetry = tel

    start = time.perf_counter()
    try:
        system.run()
    finally:
        # Flush and close the trace even when the run raises, so a
        # failing cell still leaves a readable (if truncated) trace.
        if tel is not None:
            tel.close()
    wall = time.perf_counter() - start

    result = collect_result(system)
    manifest = build_manifest(system, wall, label=label, scale=scale.name,
                              telemetry=tel)
    result.extras["manifest"] = manifest
    if manifest_path is not None:
        write_manifest(manifest_path, manifest)
    return result


def alone_ipc(profile_name: str, config: SystemConfig, scale: Scale) -> float:
    """IPC of one copy of a workload running alone (memoized).

    Used as the weighted-speedup reference for heterogeneous mixes; the
    reference platform is the supplied config with a single core.
    Memoized in :data:`ALONE_IPC_CACHE` — an in-process dict layered
    over the shared on-disk cell cache (when one is configured), so
    parallel workers share references instead of recomputing per
    process.
    """
    memo_key = (profile_name, f"{config.key()}/{scale.name}")
    disk_key = cell_key(alone_ipc_key_parts(profile_name, config, scale))
    cached = ALONE_IPC_CACHE.lookup(memo_key, disk_key)
    if cached is not None:
        return cached
    solo = replace(config, num_cores=1, policy="baseline")
    profile = get_profile(profile_name)
    backend = active_backend()
    if scale.refs_per_core <= _MATERIALIZE_REFS_LIMIT:
        # Materialized through the backend's trace store: seed 0 at base
        # line 0 is exactly core 0's trace in the workload's rate mix,
        # so the alone reference and the mix cells share one list.
        trace = iter(backend.trace(profile, scale.refs_per_core,
                                   scale=scale.footprint_scale, seed=0))
    else:
        trace = generate_trace(
            profile, num_refs=scale.refs_per_core,
            scale=scale.footprint_scale, seed=0,
        )
    system = build_system(solo, [trace])
    backend.warm_solo(system.msc, profile, scale.footprint_scale, seed=0)
    system.run()
    ipc = system.cores[0].ipc or 1e-9
    ALONE_IPC_CACHE.store(memo_key, ipc, disk_key)
    return ipc


def mix_alone_ipcs(mix: Mix, config: SystemConfig, scale: Scale) -> list[float]:
    return [alone_ipc(name, config, scale) for name in mix.members]


# ----------------------------------------------------------------------
# Result container and rendering
# ----------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """A rendered paper artifact: headers plus per-workload rows."""

    experiment: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""
    #: Filled in by the execution engine: the sweep's ExecStats
    #: (cells executed / served from cache / failed).
    stats: Optional[ExecStats] = field(default=None, repr=False, compare=False)

    def add(self, *values) -> None:
        self.rows.append(list(values))

    def summary_row(self, label: str, agg: Callable[[Sequence[float]], float],
                    columns: Sequence[int]) -> None:
        """Append an aggregate row (e.g. GMEAN over speedup columns)."""
        values: list = [label]
        numeric_cols = set(columns)
        for col in range(1, len(self.headers)):
            if col in numeric_cols:
                data = [row[col] for row in self.rows
                        if isinstance(row[col], (int, float))]
                values.append(agg(data) if data else "")
            else:
                values.append("")
        self.rows.append(values)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        formatted = []
        for row in self.rows:
            cells = [
                f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
            ]
            formatted.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells + [""] * (
                len(widths) - len(cells)))]
        lines = [f"== {self.experiment} =="]
        if self.notes:
            lines.append(self.notes)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def column(self, index: int) -> list:
        return [row[index] for row in self.rows]

    def to_csv(self, directory: str, name: str) -> str:
        """Write the table as ``directory/name.csv``; returns the path."""
        import csv
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path

    def print(self) -> None:
        print(self.render())
