"""Ablation: stacking DAP's techniques one at a time.

Not a paper artifact, but the design-choice ablation DESIGN.md calls
out: how much of DAP's gain does each technique contribute? Runs the
bandwidth-sensitive mixes with FWB only, FWB+WB, FWB+WB+IFRM, and full
DAP (adds SFRM), all normalized to the optimized baseline.

Expected shape: monotone non-decreasing as techniques stack (each only
fires when the solver judges it profitable), with the per-workload
distribution mirroring Fig. 7 — write-heavy workloads saturate at
FWB+WB, tag-thrashing ones only take off once SFRM joins.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

VARIANTS = (
    ("fwb", "dap-fwb"),
    ("fwb+wb", "dap-fwb-wb"),
    ("fwb+wb+ifrm", "dap-no-sfrm"),
    ("full_dap", "dap"),
)


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        yield MixCell(f"{name}/baseline", mix,
                      scaled_config(scale, policy="baseline"), scale)
        for label, policy in VARIANTS:
            yield MixCell(f"{name}/{label}", mix,
                          scaled_config(scale, policy=policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    columns: dict[str, list[float]] = {label: [] for label, _ in VARIANTS}
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        row = [name]
        for label, _ in VARIANTS:
            ws = normalized_weighted_speedup(ctx[f"{name}/{label}"].ipc,
                                             base.ipc)
            row.append(ws)
            columns[label].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(columns[label]) for label, _ in VARIANTS])
    return result


def claims():
    """The ablation's registered shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, monotone_rising, ordering
    return (
        Claim(
            id="ablation.techniques_stack",
            claim="geomean speedup is monotone non-decreasing as "
                  "techniques stack (each only fires when the solver "
                  "judges it profitable)",
            paper="§IV (design), Fig. 7",
            predicate=monotone_rising(
                Cells((("GMEAN", "fwb"), ("GMEAN", "fwb+wb"),
                       ("GMEAN", "fwb+wb+ifrm"), ("GMEAN", "full_dap"))),
                tol=0.005),
        ),
        Claim(
            id="ablation.full_dap_best",
            claim="full DAP clearly beats the FWB-only variant",
            paper="§IV (design)",
            predicate=ordering(("GMEAN", "full_dap"), ("GMEAN", "fwb"),
                               margin=0.01),
        ),
    )


SPEC = ExperimentSpec(
    name="ablation",
    title="Ablation — stacking DAP techniques",
    headers=("workload",) + tuple(label for label, _ in VARIANTS),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="normalized weighted speedup over the optimized baseline",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
