"""Ablation: stacking DAP's techniques one at a time.

Not a paper artifact, but the design-choice ablation DESIGN.md calls
out: how much of DAP's gain does each technique contribute? Runs the
bandwidth-sensitive mixes with FWB only, FWB+WB, FWB+WB+IFRM, and full
DAP (adds SFRM), all normalized to the optimized baseline.

Expected shape: monotone non-decreasing as techniques stack (each only
fires when the solver judges it profitable), with the per-workload
distribution mirroring Fig. 7 — write-heavy workloads saturate at
FWB+WB, tag-thrashing ones only take off once SFRM joins.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

VARIANTS = (
    ("fwb", "dap-fwb"),
    ("fwb+wb", "dap-fwb-wb"),
    ("fwb+wb+ifrm", "dap-no-sfrm"),
    ("full_dap", "dap"),
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    result = ExperimentResult(
        experiment="Ablation — stacking DAP techniques",
        headers=["workload"] + [label for label, _ in VARIANTS],
        notes="normalized weighted speedup over the optimized baseline",
    )
    columns: dict[str, list[float]] = {label: [] for label, _ in VARIANTS}
    for name in workloads:
        mix = rate_mix(name)
        base = run_mix(mix, scaled_config(scale, policy="baseline"), scale)
        row = [name]
        for label, policy in VARIANTS:
            res = run_mix(mix, scaled_config(scale, policy=policy), scale)
            ws = normalized_weighted_speedup(res.ipc, base.ipc)
            row.append(ws)
            columns[label].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(columns[label]) for label, _ in VARIANTS])
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
