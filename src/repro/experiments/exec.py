"""Cell-based experiment execution engine.

Every experiment decomposes into independent **simulation cells** — a
pure ``(mix, SystemConfig, Scale, seed)`` tuple (or an alone-IPC
reference, or a driver-level kernel measurement).  The engine:

- fans cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs=N``; serial in-process when ``jobs=1``),
- memoizes each cell in a content-addressed on-disk JSON cache
  (:mod:`repro.experiments.cellcache`), so repeated invocations — and
  different experiments sharing a cell, e.g. the per-workload baseline
  runs of fig06 and fig08 — never recompute,
- survives per-cell failures and worker crashes: failures are recorded
  (on disk, when caching) and reported at the end instead of aborting
  the sweep; re-running with ``resume=True`` retries recorded failures
  while serving every completed cell from the cache.

Experiments describe themselves declaratively with
:class:`ExperimentSpec`: a ``cells(scale, workloads)`` generator and a
``render(cell_results)`` reducer replace the old imperative
``module.run(scale)`` entry points.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.backends import (
    active_backend,
    active_backend_name,
    configure_backend,
    resolve_backend_name,
)
from repro.errors import ReproError
from repro.experiments import cellcache
from repro.experiments.cellcache import (
    CellCache,
    CellFailure,
    CellProfile,
    ExecStats,
    alone_ipc_key_parts,
    cell_key,
)
from repro.obs.metrics import REGISTRY
from repro.obs.profiler import SamplingProfiler
from repro.obs.spans import (
    current_traceparent,
    emit_span,
    set_current_traceparent,
)
from repro.obs.telemetry import TelemetryConfig
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    alone_ipc,
    get_scale,
    run_mix,
)
from repro.hierarchy.system import SystemConfig
from repro.workloads.mixes import Mix


# Engine-side observability: settled-cell outcomes and execution-time
# distributions, at *cell* granularity — never inside the simulator's
# per-event hot path, so simulation state and timing are untouched.
CELLS_SETTLED = REGISTRY.counter(
    "repro_cells_total",
    "Simulation cells settled by the execution engine, by outcome",
    ("status",))
CELL_WALL_SECONDS = REGISTRY.histogram(
    "repro_cell_wall_seconds",
    "Wall-clock seconds per executed simulation cell")


def _observe_cell(label: str, status: str, wall: float) -> None:
    """Record one unique cell's settlement (metrics + optional span)."""
    CELLS_SETTLED.labels(status=status).inc()
    if status == "ok" and wall > 0:
        CELL_WALL_SECONDS.observe(wall)
        emit_span(f"cell/{label}", wall, status=status)


class CellExecutionError(ReproError):
    """One or more cells of a sweep failed; the rest are cached.

    Carries the sweep's :class:`ExecStats` so callers (the runner's
    batch summary, ``--bench`` records) can still account for the
    cells that *did* execute before the failure was reported.
    """

    def __init__(self, message: str, failures: Sequence[CellFailure] = (),
                 stats: Optional[ExecStats] = None):
        super().__init__(message)
        self.failures = list(failures)
        self.stats = stats


class CellExecutionCancelled(ReproError):
    """A sweep was stopped before every cell ran (timeout, cancel, drain).

    Everything that *did* run is already in the cell cache, so re-running
    the sweep resumes where it stopped instead of restarting.  ``reason``
    is whatever the ``should_stop`` hook returned; ``stats`` accounts for
    the cells completed before the stop.
    """

    def __init__(self, message: str, reason: str = "",
                 stats: Optional[ExecStats] = None):
        super().__init__(message)
        self.reason = reason
        self.stats = stats


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MixCell:
    """One multi-programmed simulation: build, warm, run, collect."""

    label: str
    mix: Mix
    config: SystemConfig
    scale: Scale
    seed: int = 0
    warm: bool = True
    #: Optional instrumentation (probes + JSONL trace). Deliberately NOT
    #: part of the cache key: telemetry observes a run without changing
    #: its result, so traced and untraced invocations share cells.
    telemetry: Optional[TelemetryConfig] = None

    def key_parts(self) -> tuple:
        # run_mix sizes the platform to the mix, so configs differing
        # only in a to-be-replaced core count share a cell.
        config = replace(self.config, num_cores=self.mix.num_cores)
        return ("mix", self.mix.name, self.mix.members, config, self.scale,
                self.seed, self.warm)

    def execute(self):
        return run_mix(self.mix, self.config, self.scale, warm=self.warm,
                       telemetry=self.telemetry, label=self.label)


@dataclass(frozen=True)
class AloneIpcCell:
    """One workload's alone-run IPC reference (single-core baseline)."""

    label: str
    profile: str
    config: SystemConfig
    scale: Scale

    def key_parts(self) -> tuple:
        return alone_ipc_key_parts(self.profile, self.config, self.scale)

    def execute(self) -> float:
        return alone_ipc(self.profile, self.config, self.scale)


@dataclass(frozen=True)
class TaskCell:
    """Escape hatch for non-mix cells (Fig. 1 kernels, flat placements).

    ``fn`` must be a module-level callable (picklable by reference) and
    ``kwargs`` a tuple of ``(name, value)`` pairs of picklable,
    canonicalizable values; the result must be JSON-serializable or a
    registered result dataclass.
    """

    label: str
    fn: Callable[..., Any]
    kwargs: tuple = ()

    def key_parts(self) -> tuple:
        return ("task", self.fn.__module__, self.fn.__qualname__,
                dict(self.kwargs))

    def execute(self):
        return self.fn(**dict(self.kwargs))


Cell = Union[MixCell, AloneIpcCell, TaskCell]


def _policy_of(cell: Cell) -> str:
    """The steering policy a cell runs under ('' for policy-less cells)."""
    config = getattr(cell, "config", None)
    return getattr(config, "policy", "") if config is not None else ""


# ----------------------------------------------------------------------
# Declarative experiment specification
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """A paper artifact, described declaratively.

    ``cells(scale, workloads, **options)`` yields the independent
    simulation cells; ``render(cell_results)`` reduces their results to
    the printed :class:`ExperimentResult`.  ``workload_aware`` declares
    whether the experiment honours a ``--workloads`` restriction (the
    registry replaces the runner's old hand-maintained set).
    """

    name: str
    title: str
    headers: tuple
    cells: Callable[..., Iterable[Cell]]
    render: Callable[["CellResults"], ExperimentResult]
    workload_aware: bool = False
    default_workloads: Optional[tuple] = None
    notes: str = ""
    #: Zero-argument callable yielding the module's registered
    #: :class:`~repro.validate.predicates.Claim` list — the paper
    #: shapes this experiment must reproduce (``--validate`` /
    #: ``repro-validate`` evaluate them against the rendered table).
    claims: Optional[Callable[[], Sequence]] = None

    def resolve_workloads(
        self, workloads: Optional[Sequence[str]] = None
    ) -> Optional[list]:
        if not self.workload_aware:
            return None
        return list(workloads or self.default_workloads or ())


@dataclass
class CellResults:
    """What a ``render`` reducer receives: results by cell label."""

    spec: ExperimentSpec
    scale: Scale
    workloads: Optional[list]
    options: dict
    results: dict
    stats: ExecStats

    def __getitem__(self, label: str):
        return self.results[label]

    def get(self, label: str, default=None):
        return self.results.get(label, default)

    def new_result(self, notes: str = "") -> ExperimentResult:
        """An empty table carrying the spec's title and headers."""
        return ExperimentResult(
            experiment=self.spec.title,
            headers=list(self.spec.headers),
            notes=notes or self.spec.notes,
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _execute_one(cell: Cell, key: str, cache: Optional[CellCache],
                 profile_hz: int = 0):
    """Run one cell, writing the result (or failure) through the cache.

    Returns ``(label, "ok", result, wall_seconds, profile_text, traces)``
    or ``(label, "error", message, wall_seconds, profile_text, traces)``;
    never raises, so pool futures only fail on worker death.
    ``wall_seconds`` is 0.0 when the cell was served by a racing worker's
    cache entry.  ``traces`` is the ``(generated, reused)`` delta this
    cell caused in the active backend's trace store.

    ``profile_hz > 0`` wraps the cell's execution in a
    :class:`~repro.obs.profiler.SamplingProfiler` (one per cell, so the
    serial and pool paths profile identically) and returns the
    collapsed-stack text, also stored as a cache sidecar.  Sampling is
    observation-only: the cell runs the exact code it runs unprofiled,
    and the cache entry (and key) are byte-identical either way.
    """
    start = time.perf_counter()
    profiler = None
    store = active_backend().store
    gen0, reuse0 = store.generated, store.reused

    def traces() -> tuple[int, int]:
        return store.generated - gen0, store.reused - reuse0

    try:
        if cache is not None:
            # Another worker may have finished this cell (or its alone-IPC
            # twin) since the parent scheduled it.
            hit = cache.get_result(key)
            if hit is not None:
                return cell.label, "ok", hit, 0.0, None, traces()
        if profile_hz > 0:
            profiler = SamplingProfiler(hz=profile_hz)
            profiler.track(cell=cell.label)
            # Attribute samples to the backend that produced them, so
            # per-backend profiles are distinguishable post hoc.
            profiler.profile.meta["backend"] = active_backend_name()
            profiler.start()
        result = cell.execute()
        collapsed = _finish_profile(profiler)
        profiler = None
        if cache is not None:
            cache.put_result(key, result, label=cell.label)
            if collapsed:
                try:
                    cache.put_profile(key, collapsed)
                except OSError:
                    pass  # a lost sidecar never fails the cell
        return (cell.label, "ok", result, time.perf_counter() - start,
                collapsed, traces())
    except Exception as exc:  # noqa: BLE001 — cell isolation is the point
        collapsed = _finish_profile(profiler)
        message = f"{type(exc).__name__}: {exc}"
        if cache is not None:
            try:
                cache.put_failure(key, message, traceback.format_exc(),
                                  label=cell.label)
            except OSError:
                pass
        return (cell.label, "error", message,
                time.perf_counter() - start, collapsed, traces())


def _finish_profile(profiler: Optional[SamplingProfiler]) -> Optional[str]:
    """Stop a per-cell profiler and serialize it, if one was running."""
    if profiler is None:
        return None
    profile = profiler.stop()
    return profile.collapsed() if profile.total_samples else None


def _profile_of(label: str, payload, wall: float) -> CellProfile:
    """Per-cell profile entry; events/cycles come from the run manifest."""
    manifest = getattr(payload, "manifest", None)
    if not isinstance(manifest, dict):
        manifest = None
    return CellProfile(
        label=label,
        wall=wall,
        events=int(manifest.get("events", 0)) if manifest else 0,
        cycles=int(manifest.get("cycles", 0)) if manifest else 0,
    )


def _worker_init(cache_dir: Optional[str], backend: str = "python") -> None:
    """Pool initializer: shared cell cache + the sweep's backend.

    ``backend`` is the *resolved* concrete name (never ``auto``): the
    parent resolves once so every worker runs the same backend even if
    e.g. numpy's importability differs between resolve time and worker
    spawn.  Each worker gets a fresh trace store.
    """
    cellcache.configure_default(cache_dir)
    configure_backend(backend)


def _worker_run(cell: Cell, key: str, cache_dir: Optional[str],
                traceparent: Optional[str] = None, profile_hz: int = 0):
    # Contextvars do not cross process boundaries; re-establish the
    # submitting request's trace context so run manifests produced in
    # pool workers stay correlated to it.
    if traceparent is not None:
        set_current_traceparent(traceparent)
    cache = CellCache(cache_dir) if cache_dir else None
    return _execute_one(cell, key, cache, profile_hz=profile_hz)


def _as_cache(cache) -> Optional[CellCache]:
    if cache is None or isinstance(cache, CellCache):
        return cache
    return CellCache(cache)


def execute_cells(
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    cache: Union[CellCache, str, None] = None,
    resume: bool = False,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_cell: Optional[Callable[[str, str, int, int], None]] = None,
    profile_hz: int = 0,
    backend: Optional[str] = None,
) -> tuple[dict, ExecStats]:
    """Run cells, returning ``(results by label, ExecStats)``.

    Cells sharing a cache key (identical simulations under different
    labels) execute once.  Per-cell failures never abort the sweep; they
    are recorded in the stats (and, when caching, on disk — a later
    invocation replays the failure instantly unless ``resume=True``
    forces a retry).

    ``backend`` selects the simulation backend (``python``, ``numpy``,
    ``auto``; see :mod:`repro.backends`) for this sweep — resolved once
    here, installed process-globally, and propagated to pool workers.
    Backends are bit-identical by contract, so the choice never enters
    cache keys: cells cached under one backend are served under any
    other.

    ``should_stop`` is the job adapter's cancellation hook: a
    zero-argument callable polled between cells (and between pool
    completions) that returns a reason string — ``"timeout"``,
    ``"cancelled"``, ``"shutdown"``, ... — to stop the sweep, or a
    falsy value to keep going.  Stopping raises
    :class:`CellExecutionCancelled`; cells finished before the stop are
    already in the cache, so a re-run drains only the remainder.

    ``on_cell(label, status, done, total)`` is a progress hook invoked
    once per settled cell with status ``"cached"``, ``"ok"``,
    ``"replayed-failure"`` or ``"error"``; services feed job progress
    streams from it.  Hook exceptions are not caught: hooks are
    engine-adapter code, not user cells.

    ``profile_hz > 0`` samples each *executed* cell's Python stack at
    that rate (:mod:`repro.obs.profiler`); the collapsed-stack text
    lands in ``stats.stack_profiles[label]`` and as a
    ``<key>.profile.collapsed`` sidecar in the cell cache.  Profiling
    is observation-only — results, cache entries and cache keys are
    bit-identical to an unprofiled run — and cached cells (nothing
    executed) contribute no profile.
    """
    cache = _as_cache(cache)
    resolved_backend = resolve_backend_name(backend)
    configure_backend(resolved_backend)
    start = time.time()
    stats = ExecStats(total=len(cells))
    results: dict = {}
    errors: dict = {}
    done = 0
    total = len(cells)
    stop_reason: Optional[str] = None

    labels = [cell.label for cell in cells]
    if len(set(labels)) != len(labels):
        dupes = sorted({label for label in labels if labels.count(label) > 1})
        raise ReproError(f"duplicate cell labels: {dupes}")

    keys = {cell.label: cell_key(cell.key_parts()) for cell in cells}

    # Serve what the cache already knows.
    pending: list = []
    for cell in cells:
        key = keys[cell.label]
        entry = cache.get(key) if cache is not None else None
        if entry is not None and entry.get("status") == "ok":
            results[cell.label] = cellcache.decode_result(entry["result"])
            stats.cache_hits += 1
            done += 1
            CELLS_SETTLED.labels(status="cached").inc()
            if on_cell is not None:
                on_cell(cell.label, "cached", done, total)
        elif entry is not None and entry.get("status") == "error" and not resume:
            errors[cell.label] = f"[recorded failure] {entry.get('error')}"
            stats.replayed_failures += 1
            done += 1
            CELLS_SETTLED.labels(status="replayed-failure").inc()
            if on_cell is not None:
                on_cell(cell.label, "replayed-failure", done, total)
        else:
            pending.append(cell)

    # Deduplicate identical simulations within the sweep.
    by_key: dict = {}
    for cell in pending:
        by_key.setdefault(keys[cell.label], []).append(cell)
    unique = [group[0] for group in by_key.values()]

    def _settled(label: str, status: str) -> None:
        nonlocal done
        # One executed cell may settle several labels sharing its key.
        for twin in by_key.get(keys[label], ()):
            done += 1
            if on_cell is not None:
                on_cell(twin.label, status, done, total)

    outcomes: dict = {}  # key -> (status, payload)
    if unique:
        if jobs > 1 and len(unique) > 1:
            cache_dir = str(cache.root) if cache is not None else None
            traceparent = current_traceparent()
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(unique)),
                initializer=_worker_init,
                initargs=(cache_dir, resolved_backend),
            ) as pool:
                futures = {
                    pool.submit(_worker_run, cell, keys[cell.label],
                                cache_dir, traceparent, profile_hz):
                    cell
                    for cell in unique
                }
                for future in as_completed(futures):
                    cell = futures[future]
                    try:
                        label, status, payload, wall, collapsed, traces = (
                            future.result())
                    except CancelledError:
                        continue  # never started; the sweep is stopping
                    except BrokenProcessPool:
                        label, status, payload, wall, collapsed, traces = (
                            cell.label, "error",
                            "worker process crashed (killed or out of memory)",
                            0.0, None, (0, 0),
                        )
                    except Exception as exc:  # pool plumbing failure
                        label, status, payload, wall, collapsed, traces = (
                            cell.label, "error",
                            f"{type(exc).__name__}: {exc}", 0.0, None, (0, 0),
                        )
                    outcomes[keys[label]] = (status, payload)
                    _observe_cell(label, status, wall)
                    stats.traces_generated += traces[0]
                    stats.traces_reused += traces[1]
                    if collapsed:
                        stats.stack_profiles[label] = collapsed
                    if status == "ok":
                        stats.executed += 1
                        if wall > 0:
                            stats.profile.append(
                                _profile_of(label, payload, wall))
                    _settled(label, status if status == "ok" else "error")
                    if should_stop is not None and stop_reason is None:
                        stop_reason = should_stop() or None
                        if stop_reason:
                            # Drain: in-flight cells finish (their results
                            # land in the cache); unstarted ones cancel.
                            for not_started in futures:
                                not_started.cancel()
        else:
            for cell in unique:
                if should_stop is not None:
                    stop_reason = should_stop() or None
                    if stop_reason:
                        break
                label, status, payload, wall, collapsed, traces = _execute_one(
                    cell, keys[cell.label], cache, profile_hz=profile_hz)
                outcomes[keys[label]] = (status, payload)
                _observe_cell(label, status, wall)
                stats.traces_generated += traces[0]
                stats.traces_reused += traces[1]
                if collapsed:
                    stats.stack_profiles[label] = collapsed
                if status == "ok":
                    stats.executed += 1
                    if wall > 0:
                        stats.profile.append(_profile_of(label, payload, wall))
                _settled(label, status if status == "ok" else "error")

    # Fan unique outcomes back out to every label sharing the key.
    for cell in pending:
        if keys[cell.label] not in outcomes:
            continue  # sweep stopped before this cell started
        status, payload = outcomes[keys[cell.label]]
        if status == "ok":
            results[cell.label] = payload
        else:
            errors[cell.label] = payload

    policies = {cell.label: _policy_of(cell) for cell in cells}

    if stop_reason:
        stats.failures = [
            CellFailure(label, errors[label], policy=policies[label])
            for label in labels if label in errors]
        stats.elapsed = time.time() - start
        raise CellExecutionCancelled(
            f"sweep stopped ({stop_reason}) after {done} of {total} cells; "
            "completed cells are cached — re-running resumes the remainder",
            reason=stop_reason, stats=stats,
        )

    stats.failures = [
        CellFailure(label, errors[label], policy=policies[label])
        for label in labels if label in errors]
    stats.elapsed = time.time() - start
    return results, stats


def run_spec(
    spec: ExperimentSpec,
    scale: Union[Scale, str, None] = None,
    workloads: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache: Union[CellCache, str, None] = None,
    resume: bool = False,
    options: Optional[dict] = None,
    telemetry: Optional[TelemetryConfig] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
    on_cell: Optional[Callable[[str, str, int, int], None]] = None,
    profile_hz: int = 0,
    backend: Optional[str] = None,
) -> ExperimentResult:
    """Execute a spec's cells and render its table.

    The returned :class:`ExperimentResult` carries the sweep's
    :class:`ExecStats` in ``result.stats`` (the runner's cache-hit
    counter).  Raises :class:`CellExecutionError` if any cell failed —
    every other cell is already in the cache, so a re-run (with
    ``resume=True`` to retry recorded failures) resumes the sweep
    instead of restarting it.  ``telemetry`` instruments every
    simulation cell of the sweep (probe series + JSONL traces); cached
    cells are still served from the cache, since telemetry never
    changes results.
    """
    if not isinstance(scale, Scale):
        scale = get_scale(scale)
    workloads = spec.resolve_workloads(workloads)
    options = dict(options or {})
    cells = list(spec.cells(scale, workloads, **options))
    if telemetry is not None:
        cells = [replace(cell, telemetry=telemetry)
                 if isinstance(cell, MixCell) else cell for cell in cells]
    results, stats = execute_cells(cells, jobs=jobs, cache=cache,
                                   resume=resume, should_stop=should_stop,
                                   on_cell=on_cell, profile_hz=profile_hz,
                                   backend=backend)
    if stats.failures:
        failed = ", ".join(
            f"{f.label} (policy={f.policy})" if f.policy else f.label
            for f in stats.failures[:8])
        more = "" if stats.failed <= 8 else f" (+{stats.failed - 8} more)"
        raise CellExecutionError(
            f"{spec.name}: {stats.failed} of {stats.total} cells failed "
            f"[{failed}{more}]; completed cells are cached — re-run with "
            f"--resume to retry recorded failures. "
            f"First error: {stats.failures[0].error}",
            stats.failures,
            stats=stats,
        )
    ctx = CellResults(spec=spec, scale=scale, workloads=workloads,
                      options=options, results=results, stats=stats)
    result = spec.render(ctx)
    result.stats = stats
    return result
