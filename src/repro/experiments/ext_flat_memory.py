"""Extension: the bandwidth equation in OS-visible (flat) mode.

Not a paper artifact — the paper's Section II notes its algorithms
"can easily be extended to OS-visible implementations"; this experiment
demonstrates that claim. A synthetic uniform page workload is driven
against an HBM fast tier + DDR4 slow tier under three placements:

- first-touch (hit-rate maximizing — the traditional wisdom),
- bandwidth-ratio interleave (Equation 3's static optimum),
- adaptive migration (window-learned, the flat-mode DAP analogue).

Expected shape: when the working set fits the fast tier, first-touch
pins *all* traffic there and delivers only the fast tier's bandwidth,
while the interleaved and adaptive placements recruit the slow tier and
deliver more — the Fig. 1 lesson, replayed at page granularity.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.engine.event_queue import Simulator
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    TaskCell,
    run_spec,
)
from repro.flat.controller import FlatMemoryController
from repro.flat.placement import PAGE_LINES, make_placement
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice

POLICIES = ("first-touch", "bandwidth-interleave", "adaptive")


def run_placement(policy_name: str, total_reads: int, outstanding: int = 192,
                  working_pages: int = 512, seed: int = 7) -> dict[str, float]:
    """Worker entry: measure one placement policy (a TaskCell body)."""
    sim = Simulator()
    fast = MemoryDevice(sim, hbm_102())
    slow = MemoryDevice(sim, ddr4_2400())
    placement = make_placement(
        policy_name, fast_capacity_pages=working_pages * 2,
        b_fast=fast.peak_gbps, b_slow=slow.peak_gbps, epoch_cycles=4_000,
    )
    ctrl = FlatMemoryController(sim, fast, slow, placement)

    rng = random.Random(seed)
    state = {"issued": 0, "done": 0, "finish": 0, "half_cycle": 0}

    def issue() -> None:
        if state["issued"] >= total_reads:
            return
        state["issued"] += 1
        page = rng.randrange(working_pages)
        line = page * PAGE_LINES + rng.randrange(PAGE_LINES)
        ctrl.read(line, core_id=0, callback=done)

    def done(finish: int) -> None:
        state["done"] += 1
        state["finish"] = max(state["finish"], finish)
        if state["done"] == total_reads // 2:
            state["half_cycle"] = finish
        issue()

    for _ in range(outstanding):
        issue()
    sim.run()
    cycles = max(1, state["finish"])
    gbps = state["done"] * 64 / (cycles / 4e9) / 1e9
    # Steady state: bandwidth over the second half of the run, after any
    # adaptive policy has converged and amortized its migrations.
    late_cycles = max(1, state["finish"] - state["half_cycle"])
    late_gbps = (total_reads - total_reads // 2) * 64 / (late_cycles / 4e9) / 1e9
    return {
        "gbps": gbps,
        "late_gbps": late_gbps,
        "fast_fraction": ctrl.fast_traffic_fraction(),
        "migrations": float(placement.migrations),
    }


def cells(scale: Scale, workloads=None) -> Iterator[TaskCell]:
    for policy in POLICIES:
        yield TaskCell(
            policy, run_placement,
            kwargs=(("policy_name", policy),
                    ("total_reads", scale.kernel_reads * 4)),
        )


def render(ctx: CellResults) -> ExperimentResult:
    optimal = 102.4 / (102.4 + 38.4)
    result = ctx.new_result(
        notes=f"uniform pages fitting the fast tier; optimal fast fraction "
              f"= {optimal:.3f}",
    )
    for policy in POLICIES:
        metrics = ctx[policy]
        result.add(policy, metrics["gbps"], metrics["late_gbps"],
                   metrics["fast_fraction"], metrics["migrations"])
    return result


def claims():
    """The flat-mode extension's registered shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, ordering, within_rel
    return (
        Claim(
            id="flat.interleave_beats_first_touch",
            claim="Eq. 3's bandwidth-ratio interleave out-delivers "
                  "hit-rate-maximizing first-touch when the working "
                  "set fits the fast tier",
            paper="§II (extension)",
            predicate=ordering(("bandwidth-interleave", "delivered_gbps"),
                               ("first-touch", "delivered_gbps"),
                               margin=5.0),
        ),
        Claim(
            id="flat.interleave_hits_optimal_split",
            claim="the interleaved placement's fast-tier traffic "
                  "fraction lands on the Eq. 3 optimum "
                  "102.4/(102.4+38.4) = 0.727",
            paper="§II / Eq. 3",
            predicate=within_rel(
                Cells((("bandwidth-interleave", "fast_traffic_frac"),)),
                0.05, target=0.727),
        ),
        Claim(
            id="flat.adaptive_converges",
            claim="the adaptive migrating placement converges: its "
                  "steady-state bandwidth beats first-touch's delivered "
                  "bandwidth",
            paper="§II (extension)",
            predicate=ordering(("adaptive", "steady_state_gbps"),
                               ("first-touch", "delivered_gbps"),
                               margin=5.0),
        ),
    )


SPEC = ExperimentSpec(
    name="flat",
    title="Extension — OS-visible flat memory (Eq. 3 at page level)",
    headers=("placement", "delivered_gbps", "steady_state_gbps",
             "fast_traffic_frac", "migrations"),
    cells=cells,
    render=render,
    workload_aware=False,
    claims=claims,
)


def run(scale: Optional[Scale] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
