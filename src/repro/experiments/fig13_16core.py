"""Fig. 13: DAP on a 16-core system.

The scaled-up platform of Section VI-A5: 16 cores, 16 MB L3, an 8 GB /
204.8 GB/s sectored DRAM cache, and dual-channel DDR4-3200 (51.2 GB/s).
Workloads run in rate-16 mode.

Expected shape: DAP's benefit persists at scale (paper: 14.6% average).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.hierarchy.system import GiB
from repro.mem.configs import ddr4_3200, hbm_204
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def sixteen_core_config(scale: Scale, policy: str):
    config = scaled_config(
        scale, policy=policy, paper_capacity=8 * GiB,
        msc_dram=hbm_204(), mm_dram=ddr4_3200(), num_cores=16,
    )
    # 16 MB L3 at paper scale, shrunk by the same divisor.
    sram = replace(config.sram,
                   l3_bytes=max(64 * 1024,
                                16 * (1 << 20) // scale.capacity_divisor))
    return replace(config, sram=sram)


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name, ways=16)
        for policy in ("baseline", "dap"):
            yield MixCell(f"{name}/{policy}", mix,
                          sixteen_core_config(scale, policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    speedups = []
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        dap = ctx[f"{name}/dap"]
        ws = normalized_weighted_speedup(dap.ipc, base.ipc)
        result.add(name, ws)
        speedups.append(ws)
    result.add("GMEAN", geomean(speedups))
    return result


def claims():
    """Fig. 13's registered paper shapes (see repro.validate)."""
    from repro.validate import Claim, sign
    return (
        Claim(
            id="fig13.gain_persists_at_scale",
            claim="DAP's geomean benefit persists on the 16-core "
                  "system (paper: 14.6% average)",
            paper="Fig. 13",
            predicate=sign(("GMEAN", "norm_ws_dap"), above=1.0),
        ),
    )


SPEC = ExperimentSpec(
    name="fig13",
    title="Fig. 13 — DAP on a 16-core system",
    headers=("workload", "norm_ws_dap"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="rate-16, 8 GB / 204.8 GB/s DRAM cache, DDR4-3200",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
