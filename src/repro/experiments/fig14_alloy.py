"""Fig. 14: DAP on the Alloy cache, against BEAR.

Top panel: weighted speedup of Alloy+BEAR and Alloy+DAP over the Alloy
baseline (which already includes the L3 presence bit and the hit/miss
predictor). Bottom panel: main-memory CAS fraction.

Expected shape: BEAR improves the baseline; DAP improves it more
(paper: 22% vs 29%), and DAP's MM CAS fraction moves toward the Alloy
optimum of ~36% (the TAD transfer uses only 2 of its 3 cycles for data,
so B_MS$ = 2/3 x 102.4 GB/s).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.bandwidth_model import optimal_mm_cas_fraction
from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def alloy_config(scale: Scale, policy: str):
    return scaled_config(scale, policy=policy, msc_kind="alloy")


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for policy in ("baseline", "bear", "dap"):
            yield MixCell(f"{name}/{policy}", mix,
                          alloy_config(scale, policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    optimal = optimal_mm_cas_fraction(102.4 * 2 / 3, 38.4)
    result = ctx.new_result(
        notes=f"optimal Alloy MM CAS fraction = {optimal:.3f}")
    bear_ws, dap_ws = [], []
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        bear = ctx[f"{name}/bear"]
        dap = ctx[f"{name}/dap"]
        ws_b = normalized_weighted_speedup(bear.ipc, base.ipc)
        ws_d = normalized_weighted_speedup(dap.ipc, base.ipc)
        result.add(name, ws_b, ws_d, base.mm_cas_fraction,
                   bear.mm_cas_fraction, dap.mm_cas_fraction)
        bear_ws.append(ws_b)
        dap_ws.append(ws_d)
    result.add("GMEAN", geomean(bear_ws), geomean(dap_ws), "", "", "")
    return result


def claims():
    """Fig. 14's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, Col, ordering, sign, within_rel
    return (
        Claim(
            id="fig14.both_beat_alloy_baseline",
            claim="both BEAR and DAP improve on the Alloy baseline",
            paper="Fig. 14",
            predicate=sign(Cells((("GMEAN", "ws_bear"),
                                  ("GMEAN", "ws_dap"))),
                           above=1.0),
            deviation="BEAR edges out DAP-on-Alloy at smoke scale; "
                      "the paper's 22% vs 29% ordering needs "
                      "paper-scale bandwidth pressure",
        ),
        Claim(
            id="fig14.dap_raises_mm_fraction",
            claim="DAP moves mcf's main-memory CAS fraction up from "
                  "the Alloy baseline toward the ~0.36 Alloy optimum",
            paper="Fig. 14 / Eq. 4",
            predicate=ordering(("mcf", "mm_frac_dap"),
                               ("mcf", "mm_frac_base")),
        ),
        Claim(
            id="fig14.dap_near_alloy_optimum",
            claim="every workload's DAP main-memory CAS fraction lands "
                  "within 10% of the Alloy optimum (2/3 x 102.4 vs "
                  "38.4 GB/s gives 0.360)",
            paper="Fig. 14 / Eq. 4",
            predicate=within_rel(Col("mm_frac_dap"), 0.10, target=0.360),
        ),
    )


SPEC = ExperimentSpec(
    name="fig14",
    title="Fig. 14 — Alloy cache: BEAR vs DAP",
    headers=("workload", "ws_bear", "ws_dap",
             "mm_frac_base", "mm_frac_bear", "mm_frac_dap"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
