"""Fig. 14: DAP on the Alloy cache, against BEAR.

Top panel: weighted speedup of Alloy+BEAR and Alloy+DAP over the Alloy
baseline (which already includes the L3 presence bit and the hit/miss
predictor). Bottom panel: main-memory CAS fraction.

Expected shape: BEAR improves the baseline; DAP improves it more
(paper: 22% vs 29%), and DAP's MM CAS fraction moves toward the Alloy
optimum of ~36% (the TAD transfer uses only 2 of its 3 cycles for data,
so B_MS$ = 2/3 x 102.4 GB/s).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.bandwidth_model import optimal_mm_cas_fraction
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    get_scale,
    run_mix,
    scaled_config,
)
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE


def alloy_config(scale: Scale, policy: str):
    return scaled_config(scale, policy=policy, msc_kind="alloy")


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or get_scale()
    workloads = list(workloads or BANDWIDTH_SENSITIVE)
    optimal = optimal_mm_cas_fraction(102.4 * 2 / 3, 38.4)
    result = ExperimentResult(
        experiment="Fig. 14 — Alloy cache: BEAR vs DAP",
        headers=["workload", "ws_bear", "ws_dap",
                 "mm_frac_base", "mm_frac_bear", "mm_frac_dap"],
        notes=f"optimal Alloy MM CAS fraction = {optimal:.3f}",
    )
    bear_ws, dap_ws = [], []
    for name in workloads:
        mix = rate_mix(name)
        base = run_mix(mix, alloy_config(scale, "baseline"), scale)
        bear = run_mix(mix, alloy_config(scale, "bear"), scale)
        dap = run_mix(mix, alloy_config(scale, "dap"), scale)
        ws_b = normalized_weighted_speedup(bear.ipc, base.ipc)
        ws_d = normalized_weighted_speedup(dap.ipc, base.ipc)
        result.add(name, ws_b, ws_d, base.mm_cas_fraction,
                   bear.mm_cas_fraction, dap.mm_cas_fraction)
        bear_ws.append(ws_b)
        dap_ws.append(ws_d)
    result.add("GMEAN", geomean(bear_ws), geomean(dap_ws), "", "", "")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
