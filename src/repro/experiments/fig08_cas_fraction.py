"""Fig. 8: how close DAP gets to the optimal access partition.

Top panel: main-memory CAS operations as a fraction of all CAS
operations, baseline vs DAP. The optimum (Eq. 4) is
``B_MM / (B_MM + B_MS$)`` ≈ 0.27 for 38.4 + 102.4 GB/s.
Bottom panel: memory-side cache hit rate for the baseline, for DAP
restricted to FWB+WB, and for full DAP.

Expected shape: baseline MM fraction well below optimal (paper: 9%
average), DAP close to it (paper: 25%); hit rates fall as techniques are
added (paper: 89% -> 80% -> 73%) — deliberately sacrificed for
bandwidth.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.bandwidth_model import optimal_mm_cas_fraction
from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

_POLICIES = ("baseline", "dap-fwb-wb", "dap")


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for policy in _POLICIES:
            yield MixCell(f"{name}/{policy}", mix,
                          scaled_config(scale, policy=policy), scale)


def render(ctx: CellResults) -> ExperimentResult:
    optimal = optimal_mm_cas_fraction(102.4, 38.4)
    result = ctx.new_result(
        notes=f"optimal MM CAS fraction = {optimal:.3f}")
    sums = [0.0] * 5
    for name in ctx.workloads:
        base = ctx[f"{name}/baseline"]
        fwbwb = ctx[f"{name}/dap-fwb-wb"]
        dap = ctx[f"{name}/dap"]
        row = [base.mm_cas_fraction, dap.mm_cas_fraction,
               base.served_hit_rate, fwbwb.served_hit_rate,
               dap.served_hit_rate]
        result.add(name, *row)
        sums = [s + v for s, v in zip(sums, row)]
    n = len(ctx.workloads)
    result.add("MEAN", *[s / n for s in sums])
    return result


def claims():
    """Fig. 8's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, ordering, within_rel
    return (
        Claim(
            id="fig08.dap_closes_gap",
            claim="DAP raises the average main-memory CAS fraction "
                  "above the baseline's, moving toward the Eq. 4 "
                  "optimum",
            paper="Fig. 8 / Eq. 4",
            predicate=ordering(("MEAN", "mm_frac_dap"),
                               ("MEAN", "mm_frac_base"),
                               margin=0.02),
        ),
        Claim(
            id="fig08.dap_near_optimal",
            claim="DAP's average main-memory CAS fraction lands within "
                  "15% of the analytic optimum 0.273",
            paper="Fig. 8 / Eq. 4",
            predicate=within_rel(Cells((("MEAN", "mm_frac_dap"),)),
                                 0.15, target=0.273),
        ),
        Claim(
            id="fig08.hit_rate_sacrificed",
            claim="hit rate falls as techniques are added (baseline > "
                  "FWB+WB > full DAP) — deliberately traded for "
                  "bandwidth",
            paper="Fig. 8",
            predicate=ordering(("MEAN", "hit_base"),
                               ("MEAN", "hit_fwb_wb"),
                               ("MEAN", "hit_dap")),
        ),
    )


SPEC = ExperimentSpec(
    name="fig08",
    title="Fig. 8 — main-memory CAS fraction and hit rates",
    headers=("workload", "mm_frac_base", "mm_frac_dap",
             "hit_base", "hit_fwb_wb", "hit_dap"),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
