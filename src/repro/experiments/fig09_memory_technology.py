"""Fig. 9: DAP sensitivity to main-memory latency and bandwidth.

Four main memories: default DDR4-2400 (with I/O delay), DDR4-2400
without the I/O delay, higher-latency LPDDR4-2400 (same 38.4 GB/s), and
higher-bandwidth DDR4-3200 (51.2 GB/s). Each bar is DAP normalized to
the *same-technology* baseline.

Expected shape: removing I/O latency slightly raises DAP's benefit;
slow LPDDR4 lowers it (steered accesses pay more); faster DDR4-3200
raises it (the optimal partition sends more to main memory).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.experiments.common import ExperimentResult, Scale, scaled_config
from repro.experiments.exec import (
    CellResults,
    ExperimentSpec,
    MixCell,
    run_spec,
)
from repro.mem.configs import ddr4_2400, ddr4_2400_no_io, ddr4_3200, lpddr4_2400
from repro.metrics.speedup import geomean, normalized_weighted_speedup
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import BANDWIDTH_SENSITIVE

MEMORIES = (
    ("DDR4-2400", ddr4_2400),
    ("DDR4-2400-noIO", ddr4_2400_no_io),
    ("LPDDR4-2400", lpddr4_2400),
    ("DDR4-3200", ddr4_3200),
)


def cells(scale: Scale, workloads: Sequence[str]) -> Iterator[MixCell]:
    for name in workloads:
        mix = rate_mix(name)
        for mem_name, factory in MEMORIES:
            for policy in ("baseline", "dap"):
                yield MixCell(
                    f"{name}/{mem_name}/{policy}", mix,
                    scaled_config(scale, policy=policy, mm_dram=factory()),
                    scale,
                )


def render(ctx: CellResults) -> ExperimentResult:
    result = ctx.new_result()
    per_memory: dict[str, list[float]] = {name: [] for name, _ in MEMORIES}
    for name in ctx.workloads:
        row = [name]
        for mem_name, _ in MEMORIES:
            base = ctx[f"{name}/{mem_name}/baseline"]
            dap = ctx[f"{name}/{mem_name}/dap"]
            ws = normalized_weighted_speedup(dap.ipc, base.ipc)
            row.append(ws)
            per_memory[mem_name].append(ws)
        result.add(*row)
    result.add("GMEAN", *[geomean(per_memory[m]) for m, _ in MEMORIES])
    return result


def claims():
    """Fig. 9's registered paper shapes (see repro.validate)."""
    from repro.validate import Cells, Claim, ordering, sign
    return (
        Claim(
            id="fig09.gains_on_every_memory",
            claim="DAP beats the same-technology baseline on all four "
                  "main memories",
            paper="Fig. 9",
            predicate=sign(Cells(tuple(("GMEAN", m) for m, _ in MEMORIES)),
                           above=1.0),
        ),
        Claim(
            id="fig09.slow_memory_hurts",
            claim="high-latency LPDDR4 lowers DAP's benefit below the "
                  "default DDR4-2400 (steered accesses pay more)",
            paper="Fig. 9",
            predicate=ordering(("GMEAN", "DDR4-2400"),
                               ("GMEAN", "LPDDR4-2400")),
        ),
        Claim(
            id="fig09.fast_memory_helps",
            claim="higher-bandwidth DDR4-3200 raises DAP's benefit — "
                  "the optimal partition sends more to main memory",
            paper="Fig. 9",
            predicate=ordering(("GMEAN", "DDR4-3200"),
                               ("GMEAN", "DDR4-2400")),
        ),
    )


SPEC = ExperimentSpec(
    name="fig09",
    title="Fig. 9 — sensitivity to main-memory technology",
    headers=("workload",) + tuple(name for name, _ in MEMORIES),
    cells=cells,
    render=render,
    workload_aware=True,
    default_workloads=tuple(BANDWIDTH_SENSITIVE),
    notes="DAP normalized to the same-technology baseline",
    claims=claims,
)


def run(scale: Optional[Scale] = None,
        workloads: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Compatibility shim (serial, uncached); prefer the registered SPEC."""
    return run_spec(SPEC, scale=scale, workloads=workloads)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
