"""Content-addressed on-disk cache for simulation cells.

Every simulation cell — one ``(mix, SystemConfig, Scale, seed)`` run, an
alone-IPC reference, or a kernel measurement — is identified by the
SHA-256 of a *canonical* rendering of everything that determines its
result, plus :data:`CODE_VERSION` (a salt bumped whenever simulation
semantics change, so stale entries can never be mistaken for current
ones).  Entries are small JSON files, written atomically, so any number
of worker processes can share one cache directory: a cell computed by
one worker is immediately visible to every other worker and to every
future invocation.

Layout::

    <cache-dir>/<first two key hex chars>/<key>.json

Each entry is either a result::

    {"status": "ok", "version": ..., "label": ..., "result": ...}

or a recorded failure (so a crashing cell is reported instantly on the
next run instead of being recomputed; pass ``resume=True`` to retry)::

    {"status": "error", "version": ..., "label": ..., "error": ...,
     "traceback": ...}
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

#: Bump whenever a change alters simulation results (timing model, policy
#: behaviour, trace generation, ...) — old cache entries become unreachable.
CODE_VERSION = "1"

#: Result dataclasses that may be stored in / restored from the cache,
#: resolved lazily so this module stays import-light.
_RESULT_TYPES = {
    "RunResult": "repro.metrics.stats",
    "KernelResult": "repro.workloads.kernels",
}


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------

def canonical(value: Any) -> str:
    """A deterministic string rendering of configs, scales, and mixes.

    Dataclasses render as ``ClassName(field=..., ...)`` with fields in
    declaration order, recursing into nested dataclasses (DramConfig,
    DramTiming, SramLevels, ...); containers recurse; floats use
    ``repr`` so distinct values never collide.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, dict):
        items = ", ".join(
            f"{canonical(k)}: {canonical(v)}" for k, v in sorted(value.items())
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(canonical(v) for v in value) + "]"
    if isinstance(value, float):
        return repr(value)
    return repr(value) if isinstance(value, str) else str(value)


def cell_key(parts: tuple) -> str:
    """SHA-256 over the canonical parts, salted with :data:`CODE_VERSION`."""
    text = "\x1f".join([CODE_VERSION, *[canonical(p) for p in parts]])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def alone_ipc_key_parts(profile_name: str, config, scale) -> tuple:
    """Key parts for one workload's alone-run IPC reference.

    Normalized to the single-core baseline platform first, so every mix
    and policy sharing a platform shares the same reference cell.
    """
    solo = dataclasses.replace(config, num_cores=1, policy="baseline")
    return ("alone-ipc", profile_name, solo, scale)


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------

def encode_result(obj: Any) -> Any:
    """JSON-encodable form of a cell result.

    Registered result dataclasses become ``{"__type__": ..., "data": ...}``;
    everything else must already be JSON-serializable (dict/list/scalars).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _RESULT_TYPES:
            raise TypeError(
                f"cell returned unregistered dataclass {name!r}; register it "
                "in repro.experiments.cellcache._RESULT_TYPES"
            )
        return {"__type__": name, "data": dataclasses.asdict(obj)}
    return obj


def decode_result(data: Any) -> Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(data, dict) and "__type__" in data:
        name = data["__type__"]
        module = importlib.import_module(_RESULT_TYPES[name])
        return getattr(module, name)(**data["data"])
    return data


def _embedded_manifest(encoded: Any) -> Optional[dict]:
    """The run manifest carried inside an encoded result, if any."""
    if not isinstance(encoded, dict):
        return None
    extras = encoded.get("data", {}).get("extras")
    if isinstance(extras, dict):
        manifest = extras.get("manifest")
        if isinstance(manifest, dict):
            return manifest
    return None


# ----------------------------------------------------------------------
# Execution bookkeeping (shared by the engine and the runner summary)
# ----------------------------------------------------------------------

@dataclass
class CellFailure:
    """One cell that did not produce a result.

    ``policy`` is the steering policy the cell was configured with (empty
    for policy-less cells, e.g. kernel measurements), so a broken policy
    is identifiable from the batch summary and error message alone.
    """

    label: str
    error: str
    policy: str = ""


@dataclass
class CellProfile:
    """Wall-time / throughput of one cell actually executed this run."""

    label: str
    wall: float               # seconds spent inside the cell
    events: int = 0           # simulator events dispatched (from manifest)
    cycles: int = 0           # simulated cycles (from manifest)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall if self.wall > 0 else 0.0


@dataclass
class ExecStats:
    """What one sweep did: the runner's cache-hit / execution counters."""

    total: int = 0            # distinct cells requested
    executed: int = 0         # simulations actually run this invocation
    cache_hits: int = 0       # cells served from the on-disk cache
    replayed_failures: int = 0  # cached failures reported without retrying
    failures: list[CellFailure] = field(default_factory=list)
    profile: list[CellProfile] = field(default_factory=list)
    #: Collapsed-stack sampling profiles by cell label, present only for
    #: cells executed this invocation with profiling enabled
    #: (``--profile`` / ``profile_hz``); see :mod:`repro.obs.profiler`.
    stack_profiles: dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0
    #: Trace-store accounting (see :class:`repro.backends.base.TraceStore`):
    #: materialized traces built this invocation vs. served from the
    #: in-process content-addressed store.
    traces_generated: int = 0
    traces_reused: int = 0

    @property
    def failed(self) -> int:
        return len(self.failures)

    def merge(self, other: "ExecStats") -> None:
        self.total += other.total
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.replayed_failures += other.replayed_failures
        self.failures.extend(other.failures)
        self.profile.extend(other.profile)
        self.stack_profiles.update(other.stack_profiles)
        self.elapsed += other.elapsed
        self.traces_generated += other.traces_generated
        self.traces_reused += other.traces_reused

    def summary(self) -> str:
        text = (f"{self.total} cells: {self.executed} executed, "
                f"{self.cache_hits} cached, {self.failed} failed")
        policies = sorted({f.policy for f in self.failures if f.policy})
        if policies:
            text += f" (policies: {', '.join(policies)})"
        if self.traces_generated or self.traces_reused:
            text += (f"; traces: {self.traces_generated} generated, "
                     f"{self.traces_reused} reused")
        return text

    def profile_summary(self, top: int = 3) -> str:
        """Per-cell profile digest: slowest cells, aggregate throughput.

        Event/cycle counts come from run manifests; cells without one
        (kernel measurements, task cells) report wall time only.
        """
        if not self.profile:
            return "[profile: no cells executed]"
        wall = sum(p.wall for p in self.profile)
        events = sum(p.events for p in self.profile)
        head = f"[profile: {len(self.profile)} cells in {wall:.1f}s of simulation"
        if events:
            head += (f" ({events} events, "
                     f"{events / wall if wall > 0 else 0.0:,.0f} "
                     f"events/s aggregate)")
        lines = [head + "]"]
        slowest = sorted(self.profile, key=lambda p: p.wall, reverse=True)
        for prof in slowest[:top]:
            line = f"  slowest: {prof.label}  {prof.wall:.2f}s"
            if prof.events:
                line += (f"  {prof.events_per_sec:,.0f} events/s  "
                         f"{prof.cycles} cycles")
            lines.append(line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

class CellCache:
    """Atomic JSON-file cache shared by workers and invocations."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The raw entry for ``key``, or None."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None  # missing or torn entry == cache miss

    def get_result(self, key: str) -> Optional[Any]:
        """The decoded result for ``key`` if a successful entry exists."""
        entry = self.get(key)
        if entry is None or entry.get("status") != "ok":
            return None
        return decode_result(entry["result"])

    def manifest_path(self, key: str) -> Path:
        """Sidecar manifest location for a cached cell."""
        return self.root / key[:2] / f"{key}.manifest.json"

    def get_manifest(self, key: str) -> Optional[dict]:
        """The run manifest stored alongside a cached cell, if any."""
        try:
            with open(self.manifest_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def profile_path(self, key: str) -> Path:
        """Sidecar sampling-profile location for a cached cell."""
        return self.root / key[:2] / f"{key}.profile.collapsed"

    def get_profile(self, key: str) -> Optional[str]:
        """Collapsed-stack profile stored alongside a cached cell, if any."""
        try:
            return self.profile_path(key).read_text(encoding="utf-8")
        except OSError:
            return None

    def put_profile(self, key: str, collapsed: str) -> None:
        """Atomically store a cell's collapsed-stack profile sidecar.

        Profiles ride *next to* the cache entry, never inside it: the
        entry (and its key) stay byte-identical whether or not the run
        was profiled, preserving profiled/unprofiled cache sharing.
        """
        path = self.profile_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(collapsed)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write(self, key: str, payload: dict) -> None:
        self._write_path(self._path(key), payload)

    def _write_path(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)  # atomic: readers see old or new, never torn
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put_result(self, key: str, result: Any, label: str = "") -> None:
        encoded = encode_result(result)
        self._write(key, {
            "status": "ok", "version": CODE_VERSION, "label": label,
            "result": encoded,
        })
        manifest = _embedded_manifest(encoded)
        if manifest is not None:
            self._write_path(self.manifest_path(key), manifest)

    def put_failure(self, key: str, error: str, traceback_text: str = "",
                    label: str = "") -> None:
        self._write(key, {
            "status": "error", "version": CODE_VERSION, "label": label,
            "error": error, "traceback": traceback_text,
        })

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


# ----------------------------------------------------------------------
# Process-wide default cache (what worker processes are configured with)
# ----------------------------------------------------------------------

_DEFAULT_CACHE: Optional[CellCache] = None


def configure_default(root: Optional[Union[str, Path, CellCache]]) -> None:
    """Install (or clear, with None) this process's default cell cache.

    The execution engine calls this in every worker it spawns, so
    helpers like :func:`repro.experiments.common.alone_ipc` share one
    on-disk store across workers instead of recomputing per process.
    """
    global _DEFAULT_CACHE
    if root is None:
        _DEFAULT_CACHE = None
    elif isinstance(root, CellCache):
        _DEFAULT_CACHE = root
    else:
        _DEFAULT_CACHE = CellCache(root)


def get_default_cache() -> Optional[CellCache]:
    return _DEFAULT_CACHE


def default_cache_dir() -> str:
    """The CLI's default cache location (``$REPRO_CACHE_DIR`` wins)."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
