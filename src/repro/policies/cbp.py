"""CBP-style prefetch throttling driven by observed bandwidth pressure.

Coordinated bandwidth-aware prefetch throttling (in the spirit of
HPAC/CBP feedback throttling) meters the stride prefetcher when the
memory system is the bottleneck: aggressive prefetching under bandwidth
saturation steals demand bandwidth and *loses* performance, so the
policy grants a per-epoch budget of prefetch credits sized by how busy
the DRAM queues are.

Every ``epoch_cycles`` the policy samples the occupancy of the main
memory and cache DRAM queues (the same pressure DAP's credit engine
balances) and refills its credit pool: an idle memory system gets
``max_credits``; between ``low_occupancy`` and ``high_occupancy`` the
budget shrinks linearly; a saturated system gets nothing. Each stride
prefetch the hierarchy wants to issue consumes one credit via
:meth:`allow_prefetch`; an empty pool denies the prefetch (the demand
miss later fetches the line normally). Otherwise the policy steers like
the baseline — its contribution is purely the throttle.
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy


class CbpPolicy(SteeringPolicy):
    """Credit-based stride-prefetch throttle over DRAM queue pressure."""

    name = "cbp"
    throttles_prefetch = True

    def __init__(
        self,
        epoch_cycles: int = 20_000,
        max_credits: int = 256,
        low_occupancy: float = 2.0,
        high_occupancy: float = 12.0,
    ) -> None:
        super().__init__()
        self.epoch_cycles = epoch_cycles
        self.max_credits = max_credits
        self.low_occupancy = low_occupancy
        self.high_occupancy = high_occupancy
        self._credits = max_credits
        self._last_epoch = 0
        self.granted = 0
        self.denied = 0
        self.epochs = 0

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "epoch_cycles": self.epoch_cycles,
            "max_credits": self.max_credits,
            "low_occupancy": self.low_occupancy,
            "high_occupancy": self.high_occupancy,
            "granted": self.granted,
            "denied": self.denied,
            "epochs": self.epochs,
        }

    def result_extras(self) -> dict:
        return {
            "pf_granted": float(self.granted),
            "pf_denied": float(self.denied),
        }

    # ------------------------------------------------------------------
    def deny_rate(self) -> float:
        total = self.granted + self.denied
        return self.denied / total if total else 0.0

    def _pressure(self) -> float:
        """Mean outstanding requests per DRAM channel, both sources."""
        controller = self.controller
        if controller is None:
            return 0.0
        pending = controller.mm_dev.pending() + controller.cache_dev.pending()
        channels = (len(controller.mm_dev.channels)
                    + len(controller.cache_dev.channels))
        return pending / channels if channels else 0.0

    def _refill(self) -> None:
        pressure = self._pressure()
        span = self.high_occupancy - self.low_occupancy
        if span <= 0:
            fraction = 0.0 if pressure >= self.high_occupancy else 1.0
        else:
            fraction = (self.high_occupancy - pressure) / span
        fraction = min(1.0, max(0.0, fraction))
        self._credits = int(self.max_credits * fraction)

    def _maybe_epoch(self, now: int) -> None:
        if now - self._last_epoch < self.epoch_cycles:
            return
        self._last_epoch = now
        self.epochs += 1
        self._refill()

    def tick(self, now: int) -> None:
        self._maybe_epoch(now)

    # ------------------------------------------------------------------
    def allow_prefetch(self, now: int, core_id: int, line: int) -> bool:
        self._maybe_epoch(now)
        if self._credits > 0:
            self._credits -= 1
            self.granted += 1
            return True
        self.denied += 1
        return False
