"""TUNTU-style selective replacement update ("To Update or Not To
Update", Young & Qureshi).

A conventional DRAM cache spends one cache write per read miss keeping
the cache contents current (the *replacement update*, our fill write).
TUNTU observes that for low-reuse pages that update is wasted bandwidth:
the filled block is evicted before it is ever re-read. It therefore
performs the update *selectively* — only once a page has demonstrated
reuse — and drops the rest, trading a little hit rate for DRAM-cache
fill bandwidth.

The reuse detector is a bounded first-touch filter: the first miss to a
page skips its update and records the page; a second miss to a recorded
page proves reuse and promotes it, after which its updates are
performed. Promotions decay every ``epoch_cycles`` so a page must keep
re-missing to keep its update privilege (phase changes demote).
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy

PAGE_LINES = 64  # 4 KB pages of 64-byte lines


class TuntuPolicy(SteeringPolicy):
    """Skip low-value cache updates to save fill bandwidth."""

    def __init__(
        self,
        epoch_cycles: int = 400_000,
        max_tracked: int = 1 << 15,
    ) -> None:
        super().__init__()
        self.name = "tuntu"
        self.epoch_cycles = epoch_cycles
        self.max_tracked = max_tracked
        self._seen: dict[int, None] = {}      # first-touch filter (FIFO)
        self._reuse: dict[int, None] = {}     # pages with proven reuse
        self._last_epoch = 0
        self.fills_performed = 0
        self.fills_skipped = 0
        self.promotions = 0
        self.epochs = 0

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "epoch_cycles": self.epoch_cycles,
            "max_tracked": self.max_tracked,
            "fills_performed": self.fills_performed,
            "fills_skipped": self.fills_skipped,
            "promotions": self.promotions,
            "epochs": self.epochs,
        }

    def result_extras(self) -> dict:
        return {
            "fills_performed": float(self.fills_performed),
            "fills_skipped": float(self.fills_skipped),
            "promotions": float(self.promotions),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _page(line: int) -> int:
        return line // PAGE_LINES

    def has_reuse(self, line: int) -> bool:
        return self._page(line) in self._reuse

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        if now - self._last_epoch < self.epoch_cycles:
            return
        self._last_epoch = now
        self.epochs += 1
        # Phase adaptation: promoted pages must re-prove their reuse.
        self._seen.clear()
        self._seen.update(self._reuse)
        self._reuse.clear()

    def _remember(self, page: int) -> None:
        if page in self._seen:
            return
        if len(self._seen) >= self.max_tracked:
            self._seen.pop(next(iter(self._seen)))
        self._seen[page] = None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def bypass_fill(self, now: int, line: int) -> bool:
        """First-touch pages skip the replacement update; pages with
        demonstrated reuse perform it."""
        page = self._page(line)
        if page in self._reuse:
            self.fills_performed += 1
            return False
        if page in self._seen:
            del self._seen[page]
            self._reuse[page] = None
            self.promotions += 1
            self.fills_performed += 1
            return False
        self._remember(page)
        self.fills_skipped += 1
        return True
