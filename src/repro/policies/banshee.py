"""Banshee-style bandwidth-aware frequency-based replacement (FBR).

Banshee (Yu et al., MICRO 2017) manages a page-granularity DRAM cache
and attacks exactly the bottleneck DAP partitions around: DRAM-cache
*fill* bandwidth. Its frequency-based replacement only admits a page
once its access-frequency counter clears a threshold, so one-touch
streams never burn a fill write per miss; the price is that the
frequency counters live with the in-DRAM tags, so counter maintenance
is real cache-DRAM traffic (modeled here as sampled tag-update writes).

This reproduction keeps the two bandwidth-relevant mechanisms and drops
the TLB/page-table plumbing Banshee uses to cache address mappings:

- **Frequency-threshold fills**: per-4KB-page counters incremented on a
  deterministic 1-in-``sample_rate`` sample of accesses, halved every
  ``epoch_cycles`` (recency). A read miss fills only when the page's
  counter has reached ``fill_threshold``; colder pages bypass.
- **Tag-update traffic**: each sampled counter bump pays one metadata
  write on the cache DRAM through
  :meth:`~repro.hierarchy.msc_base.MscController.charge_tag_update`.

``fill_threshold=0`` degenerates to an always-fill variant
(``banshee-always``) that still pays the tag-update traffic — the
experiments use it as the always-fill reference when measuring how much
fill bandwidth the threshold saves.
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy

PAGE_LINES = 64  # 4 KB pages of 64-byte lines


class BansheePolicy(SteeringPolicy):
    """Frequency-threshold fill admission with sampled tag updates."""

    def __init__(
        self,
        fill_threshold: int = 2,
        sample_rate: int = 8,
        epoch_cycles: int = 200_000,
        max_pages: int = 1 << 16,
    ) -> None:
        super().__init__()
        self.name = "banshee" if fill_threshold > 0 else "banshee-always"
        self.fill_threshold = fill_threshold
        self.sample_rate = max(1, sample_rate)
        self.epoch_cycles = epoch_cycles
        self.max_pages = max_pages
        self._freq: dict[int, int] = {}
        self._accesses = 0
        self._last_epoch = 0
        self.fills_performed = 0
        self.fills_skipped = 0
        self.tag_updates = 0
        self.epochs = 0

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "fill_threshold": self.fill_threshold,
            "sample_rate": self.sample_rate,
            "epoch_cycles": self.epoch_cycles,
            "fills_performed": self.fills_performed,
            "fills_skipped": self.fills_skipped,
            "tag_updates": self.tag_updates,
            "epochs": self.epochs,
        }

    def result_extras(self) -> dict:
        return {
            "fills_performed": float(self.fills_performed),
            "fills_skipped": float(self.fills_skipped),
            "tag_updates": float(self.tag_updates),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _page(line: int) -> int:
        return line // PAGE_LINES

    def frequency(self, line: int) -> int:
        return self._freq.get(self._page(line), 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        if now - self._last_epoch < self.epoch_cycles:
            return
        self._last_epoch = now
        self.epochs += 1
        # Recency: halve every counter; drop pages that reach zero.
        for page in list(self._freq):
            count = self._freq[page] >> 1
            if count == 0:
                del self._freq[page]
            else:
                self._freq[page] = count

    def _bump(self, line: int) -> None:
        """Sampled frequency bump: every ``sample_rate``-th access pays
        one in-DRAM tag update (the counter lives with the tags)."""
        self._accesses += 1
        if self._accesses % self.sample_rate:
            return
        page = self._page(line)
        if page not in self._freq and len(self._freq) >= self.max_pages:
            # Table full: evict the coldest tracked page.
            coldest = min(self._freq, key=self._freq.get)
            del self._freq[coldest]
        self._freq[page] = self._freq.get(page, 0) + 1
        self.tag_updates += 1
        if self.controller is not None:
            self.controller.charge_tag_update(line)

    def on_read(self, now: int, line: int, core_id: int = -1) -> None:
        self._bump(line)

    def on_write(self, now: int, line: int) -> None:
        self._bump(line)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def bypass_fill(self, now: int, line: int) -> bool:
        """Fill only pages whose frequency cleared the threshold."""
        if self.frequency(line) >= self.fill_threshold:
            self.fills_performed += 1
            return False
        self.fills_skipped += 1
        return True
