"""Policy adapters wiring the DAP engines into the controllers."""

from __future__ import annotations

from repro.core.dap_alloy import DapAlloy
from repro.core.dap_edram import DapEdram
from repro.core.dap_sectored import DapSectored
from repro.policies.base import SteeringPolicy


class DapSectoredPolicy(SteeringPolicy):
    """DAP on a sectored DRAM cache (FWB + WB + IFRM + SFRM)."""

    name = "dap"

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = 64,
        efficiency: float = 0.75,
        enable_sfrm: bool = True,
        enable_ifrm: bool = True,
        enable_wb: bool = True,
    ) -> None:
        super().__init__()
        self.engine = DapSectored(
            b_ms=b_ms, b_mm=b_mm, window=window, efficiency=efficiency,
            enable_sfrm=enable_sfrm,
        )
        self.enable_ifrm = enable_ifrm
        self.enable_wb = enable_wb

    # Decisions ---------------------------------------------------------
    def bypass_fill(self, now: int, line: int) -> bool:
        granted = self.engine.allow_fill_bypass(now)
        if self.observer is not None:
            self.observer.decision(now, line, "fwb", granted, self.engine)
        return granted

    def bypass_write(self, now: int, line: int) -> bool:
        if not self.enable_wb:
            return False
        granted = self.engine.allow_write_bypass(now)
        if self.observer is not None:
            self.observer.decision(now, line, "wb", granted, self.engine)
        return granted

    def force_read_miss(self, now: int, line: int, core_id: int = -1) -> bool:
        if not self.enable_ifrm:
            return False
        granted = self.engine.allow_forced_miss(now)
        if self.observer is not None:
            self.observer.decision(now, line, "ifrm", granted, self.engine)
        return granted

    def speculative_read(self, now: int, line: int) -> bool:
        granted = self.engine.allow_speculative_read(now)
        if self.observer is not None:
            self.observer.decision(now, line, "sfrm", granted, self.engine)
        return granted

    # Demand recording ----------------------------------------------------
    def note_ms_access(self, count: int = 1) -> None:
        self.engine.note_ms_access(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.engine.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.engine.note_read_miss()

    def note_write(self) -> None:
        self.engine.note_write()

    def note_clean_hit(self) -> None:
        self.engine.note_clean_hit()

    def describe_params(self) -> dict:
        return {
            "window": self.engine.window,
            "efficiency": self.engine.efficiency,
            "sfrm": self.engine.enable_sfrm,
            "ifrm": self.enable_ifrm,
            "wb": self.enable_wb,
            **self.engine.decisions,
        }


class ThreadAwareDapPolicy(DapSectoredPolicy):
    """DAP with thread-aware IFRM (the paper's suggested refinement).

    "A thread-aware IFRM policy would prioritize the clean hits of the
    latency-insensitive threads before the latency-sensitive ones for
    bypassing to the main memory" (Section IV-A). Latency sensitivity is
    learned online: cores issuing many memory-side reads per epoch are
    bandwidth-bound (they overlap misses, tolerating extra latency);
    cores issuing few are latency-bound. IFRM credits are granted freely
    to insensitive cores, but a latency-sensitive core only takes a
    credit while the budget is still plentiful.
    """

    name = "dap-ta"

    def __init__(self, *args, epoch_cycles: int = 50_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.epoch_cycles = epoch_cycles
        self._reads_by_core: dict[int, int] = {}
        self._insensitive: set[int] = set()
        self._last_epoch = 0
        self.deferred_ifrm = 0

    def on_read(self, now: int, line: int, core_id: int = -1) -> None:
        if core_id >= 0:
            self._reads_by_core[core_id] = self._reads_by_core.get(core_id, 0) + 1
        if now - self._last_epoch >= self.epoch_cycles:
            self._last_epoch = now
            self._reclassify()

    def _reclassify(self) -> None:
        """Cores above the median read rate are latency-insensitive."""
        if not self._reads_by_core:
            return
        counts = sorted(self._reads_by_core.values())
        median = counts[len(counts) // 2]
        self._insensitive = {
            core for core, count in self._reads_by_core.items()
            if count >= median
        }
        self._reads_by_core.clear()

    def force_read_miss(self, now: int, line: int, core_id: int = -1) -> bool:
        if not self.enable_ifrm:
            return False
        engine = self.engine
        engine.tick(now)
        if core_id >= 0 and self._insensitive and core_id not in self._insensitive:
            # A latency-sensitive thread: only spend abundant credits.
            if engine._ifrm.value < engine._ifrm.max_value * 0.25:
                self.deferred_ifrm += 1
                if self.observer is not None:
                    self.observer.decision(now, line, "ifrm", False, engine)
                return False
        granted = engine.allow_forced_miss(now)
        if self.observer is not None:
            self.observer.decision(now, line, "ifrm", granted, engine)
        return granted


class DapAlloyPolicy(SteeringPolicy):
    """DAP on the Alloy cache (DBC-gated IFRM + opportunistic WT)."""

    name = "dap-alloy"

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = 64,
        efficiency: float = 0.75,
    ) -> None:
        super().__init__()
        self.engine = DapAlloy(b_ms=b_ms, b_mm=b_mm, window=window,
                               efficiency=efficiency)

    def force_read_miss(self, now: int, line: int, core_id: int = -1) -> bool:
        granted = self.engine.allow_forced_miss(now)
        if self.observer is not None:
            self.observer.decision(now, line, "ifrm", granted, self.engine)
        return granted

    def write_through(self, now: int, line: int) -> bool:
        granted = self.engine.allow_write_through(now)
        if self.observer is not None:
            self.observer.decision(now, line, "wt", granted, self.engine)
        return granted

    def describe_params(self) -> dict:
        return {"window": self.engine.window, "k": str(self.engine.k),
                **self.engine.decisions}

    def note_ms_access(self, count: int = 1) -> None:
        self.engine.note_ms_access(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.engine.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.engine.note_read_miss()

    def note_write(self) -> None:
        self.engine.note_write()

    def note_clean_hit(self) -> None:
        self.engine.note_clean_hit()


class DapEdramPolicy(SteeringPolicy):
    """DAP on the three-source sectored eDRAM cache."""

    name = "dap-edram"

    def __init__(
        self,
        b_ms: float,
        b_mm: float,
        window: int = 64,
        efficiency: float = 0.75,
    ) -> None:
        super().__init__()
        self.engine = DapEdram(b_ms=b_ms, b_mm=b_mm, window=window,
                               efficiency=efficiency)

    def bypass_fill(self, now: int, line: int) -> bool:
        granted = self.engine.allow_fill_bypass(now)
        if self.observer is not None:
            self.observer.decision(now, line, "fwb", granted, self.engine)
        return granted

    def bypass_write(self, now: int, line: int) -> bool:
        granted = self.engine.allow_write_bypass(now)
        if self.observer is not None:
            self.observer.decision(now, line, "wb", granted, self.engine)
        return granted

    def force_read_miss(self, now: int, line: int, core_id: int = -1) -> bool:
        granted = self.engine.allow_forced_miss(now)
        if self.observer is not None:
            self.observer.decision(now, line, "ifrm", granted, self.engine)
        return granted

    def describe_params(self) -> dict:
        return {"window": self.engine.window, "k": str(self.engine.k),
                **self.engine.decisions}

    def note_ms_read(self, count: int = 1) -> None:
        self.engine.note_ms_read(count)

    def note_ms_write(self, count: int = 1) -> None:
        self.engine.note_ms_write(count)

    def note_mm_access(self, count: int = 1) -> None:
        self.engine.note_mm_access(count)

    def note_read_miss(self) -> None:
        self.engine.note_read_miss()

    def note_write(self) -> None:
        self.engine.note_write()

    def note_clean_hit(self) -> None:
        self.engine.note_clean_hit()
