"""BATMAN: bandwidth-aware tiered-memory management (Section VI-A4).

BATMAN observes the cache hit rate over an epoch and compares it with a
*target* dictated by the bandwidth ratio,
``target = B_cache / (B_cache + B_MM)``. When the cache runs hotter than
the target, BATMAN disables cache sets so a fraction of accesses are
forced to main memory; when it runs colder, sets are re-enabled.
Disabling a set flushes its dirty blocks to main memory.

The paper's critique — reproduced by this implementation — is that set
disabling is coarse: disabled sets may not intersect the hot region, a
fluctuating working set pays cold-set warmup, and disabling triggers on
hit rate even when the cache has bandwidth to spare.
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy


class BatmanPolicy(SteeringPolicy):
    """Epoch-driven set disabling toward the bandwidth-ratio hit target."""

    name = "batman"

    def __init__(
        self,
        epoch_cycles: int = 200_000,
        margin: float = 0.02,
        step_fraction: float = 0.05,
        max_disabled_fraction: float = 0.75,
    ) -> None:
        super().__init__()
        self.epoch_cycles = epoch_cycles
        self.margin = margin
        self.step_fraction = step_fraction
        self.max_disabled_fraction = max_disabled_fraction
        self._last_epoch = 0
        self._last_hits = 0
        self._last_total = 0
        self._disabled: list[int] = []
        self._next_set_to_disable = 0
        self.target_hit_rate = 0.0
        self.epochs = 0

    # ------------------------------------------------------------------
    def bind(self, controller) -> None:
        super().bind(controller)
        b_cache = controller.cache_dev.peak_gbps
        b_mm = controller.mm_dev.peak_gbps
        self.target_hit_rate = b_cache / (b_cache + b_mm)

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "epoch_cycles": self.epoch_cycles,
            "margin": self.margin,
            "step_fraction": self.step_fraction,
            "target_hit_rate": round(self.target_hit_rate, 4),
            "disabled_sets": len(self._disabled),
            "epochs": self.epochs,
        }

    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        if now - self._last_epoch < self.epoch_cycles:
            return
        self._last_epoch = now
        self.epochs += 1
        self._adjust()

    def _epoch_hit_rate(self) -> float | None:
        controller = self.controller
        hits = controller.served_hits
        total = controller.served_hits + controller.served_misses
        d_hits = hits - self._last_hits
        d_total = total - self._last_total
        self._last_hits, self._last_total = hits, total
        if d_total < 100:  # too little traffic to act on
            return None
        return d_hits / d_total

    def _adjust(self) -> None:
        rate = self._epoch_hit_rate()
        if rate is None:
            return
        array = self.controller.array
        step = max(1, int(array.num_sets * self.step_fraction))
        if rate > self.target_hit_rate + self.margin:
            self._disable_sets(step)
        elif rate < self.target_hit_rate - self.margin and self._disabled:
            self._enable_sets(step)

    def _disable_sets(self, count: int) -> None:
        array = self.controller.array
        limit = int(array.num_sets * self.max_disabled_fraction)
        for _ in range(count):
            if len(self._disabled) >= limit:
                return
            set_index = self._next_set_to_disable % array.num_sets
            self._next_set_to_disable += 1
            dirty_lines = array.disable_set(set_index)
            self._disabled.append(set_index)
            if dirty_lines:
                # Flushing a disabled set costs cache reads + MM writes.
                self.controller.writeback_lines(dirty_lines)

    def _enable_sets(self, count: int) -> None:
        array = self.controller.array
        for _ in range(min(count, len(self._disabled))):
            array.enable_set(self._disabled.pop())

    # ------------------------------------------------------------------
    @property
    def disabled_sets(self) -> int:
        return len(self._disabled)
