"""Steering-policy protocol and the no-op baseline.

Controllers consult the policy at each decision point; the default
answers reproduce a traditional memory-side cache that never partitions.
Policies also receive demand-recording callbacks (``note_*``) so
window-based learners (DAP) can observe per-window demand, and lifecycle
hooks (``on_read``/``on_write``/``tick``) for heuristic policies
(SBD's dirty list, BATMAN's epochs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hierarchy.msc_base import MscController


class SteeringPolicy:
    """Base policy: never partitions; all hooks are no-ops.

    Subclasses override the decision hooks they implement. A policy is
    bound to exactly one controller, which exposes queue depths, array
    state and maintenance services (see
    :class:`repro.hierarchy.msc_base.MscController`).
    """

    name = "baseline"

    #: Policies that meter the stride prefetcher (CBP-style throttling)
    #: set this True; the hierarchy then consults :meth:`allow_prefetch`
    #: before issuing each prefetch. The flag keeps the default hot path
    #: free of a per-prefetch virtual call.
    throttles_prefetch = False

    def __init__(self) -> None:
        self.controller: Optional["MscController"] = None
        #: Decision observer (a :class:`repro.obs.telemetry.Telemetry`)
        #: installed by the telemetry layer; None in uninstrumented runs,
        #: so the hot path pays one ``is None`` check at most.
        self.observer = None

    def bind(self, controller: "MscController") -> None:
        self.controller = controller

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        """Called on every access entering the controller."""

    def on_read(self, now: int, line: int, core_id: int = -1) -> None:
        """A demand read arrived (before any steering decision)."""

    def on_write(self, now: int, line: int) -> None:
        """A demand write (dirty L3 eviction) arrived."""

    # ------------------------------------------------------------------
    # Steering decisions
    # ------------------------------------------------------------------
    def bypass_fill(self, now: int, line: int) -> bool:
        """Drop the fill write of a read miss (FWB)."""
        return False

    def bypass_write(self, now: int, line: int) -> bool:
        """Steer a dirty L3 eviction to main memory instead (WB)."""
        return False

    def force_read_miss(self, now: int, line: int, core_id: int = -1) -> bool:
        """Serve a known-clean read hit from main memory (IFRM)."""
        return False

    def speculative_read(self, now: int, line: int) -> bool:
        """Issue a main-memory read before the tag outcome is known
        (SFRM); only meaningful when metadata lives in the cache DRAM."""
        return False

    def write_through(self, now: int, line: int) -> bool:
        """Additionally copy a cache write to main memory, keeping the
        block clean (SBD's mostly-clean mode, DAP-Alloy's WT)."""
        return False

    def steer_clean_read(self, now: int, line: int) -> bool:
        """SBD-style latency steering of a read known to be safe to
        serve from either source."""
        return False

    def allow_prefetch(self, now: int, core_id: int, line: int) -> bool:
        """May the hierarchy issue this stride prefetch? Consulted only
        when :attr:`throttles_prefetch` is True (CBP-style throttling);
        the default grants everything."""
        return True

    # ------------------------------------------------------------------
    # Demand recording (window learners)
    # ------------------------------------------------------------------
    def note_ms_access(self, count: int = 1) -> None:
        pass

    def note_ms_read(self, count: int = 1) -> None:
        pass

    def note_ms_write(self, count: int = 1) -> None:
        pass

    def note_mm_access(self, count: int = 1) -> None:
        pass

    def note_read_miss(self) -> None:
        pass

    def note_write(self) -> None:
        pass

    def note_clean_hit(self) -> None:
        pass

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        """Key parameters for manifests; subclasses override."""
        return {}

    def result_extras(self) -> dict:
        """Per-policy counters merged into ``RunResult.extras`` after a
        run. Must stay empty for policies covered by the determinism
        golden (baseline, DAP): the golden fingerprints every extras
        key, so only additive policies may contribute."""
        return {}

    def describe(self) -> str:
        """Manifest-ready one-liner: policy name plus key parameters."""
        params = self.describe_params()
        if not params:
            return self.name
        inner = ", ".join(f"{k}={v}" for k, v in params.items())
        return f"{self.name}({inner})"


class BaselinePolicy(SteeringPolicy):
    """Explicit alias for the traditional no-partitioning baseline."""

    name = "baseline"
