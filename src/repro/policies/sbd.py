"""Self-Balancing Dispatch (SBD), Sim et al., MICRO 2012 (Section VI-A4).

SBD steers predicted-hit reads to whichever source (DRAM cache or main
memory) has the lower *expected latency* (queue occupancy times service
time). Steering a read to main memory is only safe when the block cannot
be dirty in the cache, so SBD keeps most pages in write-through
("mostly-clean") mode and tracks the heavily-written pages in a Dirty
List (a bank of counting Bloom filters in hardware; an exact counter map
here — a modeling strengthening that only helps SBD). Reads to Dirty
List pages always go to the cache.

When a page falls out of the Dirty List it must be *cleaned*: its dirty
blocks are read from the cache and written to main memory. The paper
identifies this forced cleaning as SBD's main cost on large caches; the
``SBD-WT`` variant (``force_cleaning=False``) drops it and relies on
write-through alone, trading steering opportunities for less traffic.
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy

PAGE_LINES = 64  # 4 KB pages of 64-byte lines


class SbdPolicy(SteeringPolicy):
    """SBD / SBD-WT steering for sectored DRAM caches."""

    def __init__(
        self,
        dirty_threshold: int = 8,
        epoch_cycles: int = 100_000,
        force_cleaning: bool = True,
    ) -> None:
        super().__init__()
        self.name = "sbd" if force_cleaning else "sbd-wt"
        self.dirty_threshold = dirty_threshold
        self.epoch_cycles = epoch_cycles
        self.force_cleaning = force_cleaning
        self._write_counts: dict[int, int] = {}
        self._dirty_pages: set[int] = set()
        self._last_epoch = 0
        self.steered_reads = 0
        self.cleanings = 0
        self.cleaned_lines = 0

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "dirty_threshold": self.dirty_threshold,
            "epoch_cycles": self.epoch_cycles,
            "force_cleaning": self.force_cleaning,
            "steered_reads": self.steered_reads,
            "cleanings": self.cleanings,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _page(line: int) -> int:
        return line // PAGE_LINES

    def in_dirty_list(self, line: int) -> bool:
        return self._page(line) in self._dirty_pages

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        if now - self._last_epoch < self.epoch_cycles:
            return
        self._last_epoch = now
        self._decay()

    def _decay(self) -> None:
        """Halve all write counters; clean pages leaving the Dirty List."""
        dropped: list[int] = []
        for page in list(self._write_counts):
            count = self._write_counts[page] >> 1
            if count == 0:
                del self._write_counts[page]
            else:
                self._write_counts[page] = count
            if page in self._dirty_pages and count < self.dirty_threshold:
                self._dirty_pages.discard(page)
                dropped.append(page)
        if self.force_cleaning:
            for page in dropped:
                self._clean_page(page)

    def _clean_page(self, page: int) -> None:
        """Read the page's dirty blocks out of the cache, write them to
        main memory, and mark them clean."""
        controller = self.controller
        array = getattr(controller, "array", None)
        if array is None:
            return
        base = page * PAGE_LINES
        dirty_lines = [
            base + i for i in range(PAGE_LINES) if array.is_block_dirty(base + i)
        ]
        if not dirty_lines:
            return
        self.cleanings += 1
        self.cleaned_lines += len(dirty_lines)
        for line in dirty_lines:
            array.clean_block(line)
        controller.writeback_lines(dirty_lines)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def on_write(self, now: int, line: int) -> None:
        page = self._page(line)
        count = self._write_counts.get(page, 0) + 1
        self._write_counts[page] = count
        if count >= self.dirty_threshold:
            self._dirty_pages.add(page)

    def write_through(self, now: int, line: int) -> bool:
        """Non-Dirty-List pages operate write-through (mostly clean)."""
        return not self.in_dirty_list(line)

    def steer_clean_read(self, now: int, line: int) -> bool:
        """Steer a clean hit to main memory when it looks faster."""
        if self.in_dirty_list(line):
            return False
        controller = self.controller
        if controller is None:
            return False
        mm = controller.mm_read_latency_estimate(line)
        cache = controller.cache_read_latency_estimate(line)
        if mm < cache:
            self.steered_reads += 1
            return True
        return False
