"""BEAR-style fill bypass for the Alloy cache (Chou et al., ISCA 2015).

BEAR reduces the Alloy cache's bandwidth bloat. Two of its techniques
are part of our Alloy *baseline* already (the L3 presence bit that
skips TAD fetches for writes, and early miss handling); this policy adds
the third: **bandwidth-aware fill bypass**, implemented as set dueling
between always-fill and always-bypass leader sets. Unlike DAP's FWB,
BEAR bypasses to protect hit rate (dead fills), not to balance
bandwidth — the distinction Fig. 14 quantifies.
"""

from __future__ import annotations

from repro.policies.base import SteeringPolicy

LEADER_MODULUS = 64
PSEL_MAX = 1023


class BearFillPolicy(SteeringPolicy):
    """Set-dueling fill bypass: followers adopt the winning leader."""

    name = "bear"

    def __init__(self, leader_modulus: int = LEADER_MODULUS) -> None:
        super().__init__()
        self.leader_modulus = leader_modulus
        self._psel = PSEL_MAX // 2  # high = bypass causing more misses
        self.bypassed_fills = 0

    # ------------------------------------------------------------------
    def describe_params(self) -> dict:
        return {
            "leader_modulus": self.leader_modulus,
            "psel": self._psel,
            "bypassed_fills": self.bypassed_fills,
        }

    # ------------------------------------------------------------------
    def _group(self, line: int) -> int:
        array = self.controller.array
        return array.set_index(line) % self.leader_modulus

    def on_read(self, now: int, line: int, core_id: int = -1) -> None:
        """Train the duel: misses in leader sets move PSEL."""
        if self.controller is None:
            return
        group = self._group(line)
        if group not in (0, 1):
            return
        hit = self.controller.array.probe(line)
        if hit:
            return
        if group == 0:      # fill-leader missed
            self._psel = max(0, self._psel - 1)
        else:               # bypass-leader missed
            self._psel = min(PSEL_MAX, self._psel + 1)

    def bypass_fill(self, now: int, line: int) -> bool:
        group = self._group(line)
        if group == 0:
            return False     # always-fill leader
        if group == 1:
            self.bypassed_fills += 1
            return True      # always-bypass leader
        # Followers: bypass while bypassing is not hurting (PSEL low).
        if self._psel < PSEL_MAX // 2:
            self.bypassed_fills += 1
            return True
        return False
