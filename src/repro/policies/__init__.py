"""Access-steering policies.

A :class:`~repro.policies.base.SteeringPolicy` plugs into a memory-side
cache controller and decides, per access, whether to redirect traffic
between the cache and main memory. Implementations:

- :mod:`repro.policies.base` — the no-op baseline (traditional
  hit-rate-maximizing operation) and the hook protocol;
- :mod:`repro.policies.dap` — adapters wiring the paper's DAP engines
  (:mod:`repro.core`) into the controllers;
- :mod:`repro.policies.sbd` — Self-Balancing Dispatch (Sim et al.,
  MICRO 2012) and its SBD-WT variant;
- :mod:`repro.policies.batman` — BATMAN set-disabling toward a target
  hit rate (Chou et al., 2015);
- :mod:`repro.policies.bear` — BEAR-style fill bypass for the Alloy
  cache (Chou et al., ISCA 2015);
- :mod:`repro.policies.banshee` — Banshee-style frequency-threshold
  fill admission with tag-update traffic (Yu et al., MICRO 2017);
- :mod:`repro.policies.tuntu` — TUNTU-style selective replacement
  update (Young & Qureshi);
- :mod:`repro.policies.cbp` — CBP-style bandwidth-pressure prefetch
  throttling for the stride prefetcher.
"""

from repro.policies.base import SteeringPolicy, BaselinePolicy
from repro.policies.dap import (DapSectoredPolicy, DapAlloyPolicy,
                                DapEdramPolicy, ThreadAwareDapPolicy)
from repro.policies.sbd import SbdPolicy
from repro.policies.batman import BatmanPolicy
from repro.policies.bear import BearFillPolicy
from repro.policies.banshee import BansheePolicy
from repro.policies.tuntu import TuntuPolicy
from repro.policies.cbp import CbpPolicy

__all__ = [
    "SteeringPolicy",
    "BaselinePolicy",
    "DapSectoredPolicy",
    "DapAlloyPolicy",
    "DapEdramPolicy",
    "ThreadAwareDapPolicy",
    "SbdPolicy",
    "BatmanPolicy",
    "BearFillPolicy",
    "BansheePolicy",
    "TuntuPolicy",
    "CbpPolicy",
]
