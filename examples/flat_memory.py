"""OS-visible (flat) heterogeneous memory: the bandwidth equation
applied at page granularity.

The paper evaluates its in-package memory as a cache but notes the
algorithms "can easily be extended to OS-visible implementations". This
example runs that extension: three page-placement policies over an HBM
fast tier + DDR4 slow tier, showing that maximizing the fast tier's
"hit rate" (first-touch) wastes the slow tier's bandwidth exactly as
Fig. 1 predicts, while an Equation-3 split — static or learned — wins.
"""

from repro.core.planner import plan
from repro.experiments.common import SMOKE
from repro.experiments.ext_flat_memory import run


def main() -> None:
    print(plan(102.4, 38.4).describe())
    print()
    result = run(SMOKE)
    result.print()
    print()
    rows = {row[0]: row for row in result.rows}
    ft = rows["first-touch"][1]
    il = rows["bandwidth-interleave"][1]
    ad = rows["adaptive"][2]
    print(f"first-touch pins 100% of traffic on the fast tier: {ft:.0f} GB/s.")
    print(f"Equation 3's page interleave recruits the slow tier: {il:.0f} GB/s.")
    print(f"Adaptive migration converges to the same split online: "
          f"{ad:.0f} GB/s steady-state.")


if __name__ == "__main__":
    main()
