"""DAP across the three memory-side cache architectures.

Runs one workload on the sectored DRAM cache, the Alloy cache, and the
sectored eDRAM cache — baseline vs DAP on each — demonstrating the
paper's claim that the algorithm "scales seamlessly" across
architectures with one or two cache channel sets.

Usage::

    python examples/architecture_comparison.py [workload]
"""

import sys

from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.metrics.speedup import normalized_weighted_speedup
from repro.workloads.mixes import rate_mix

MiB = 1 << 20
GiB = 1 << 30

ARCHITECTURES = (
    ("sectored DRAM cache", dict(msc_kind="sectored", paper_capacity=4 * GiB)),
    ("Alloy cache", dict(msc_kind="alloy", paper_capacity=4 * GiB)),
    ("sectored eDRAM cache", dict(msc_kind="edram", msc_assoc=16,
                                  sector_bytes=1024,
                                  paper_capacity=512 * MiB)),
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    mix = rate_mix(workload)
    scale = SMOKE
    print(f"workload: {mix.name}")
    print(f"{'architecture':24s} {'ws_dap':>8s} {'hit_base':>9s} "
          f"{'mm_frac_base':>12s} {'mm_frac_dap':>12s}")
    for name, overrides in ARCHITECTURES:
        base = run_mix(mix, scaled_config(scale, policy="baseline",
                                          **overrides), scale)
        dap = run_mix(mix, scaled_config(scale, policy="dap", **overrides),
                      scale)
        ws = normalized_weighted_speedup(dap.ipc, base.ipc)
        print(f"{name:24s} {ws:8.3f} {base.served_hit_rate:9.3f} "
              f"{base.mm_cas_fraction:12.3f} {dap.mm_cas_fraction:12.3f}")


if __name__ == "__main__":
    main()
