"""Trace one run and audit its access partitioning offline.

Runs a rate-8 mix under baseline and DAP with telemetry on, then feeds
the traces through the offline analyzer: measured per-source access
fractions vs the paper's optimum f*_i = B_i / sum(B_j) (Eq. 3), the
partition gap, and the bandwidth lost to imbalance (Eq. 2).

Usage::

    python examples/analyze_run.py [workload] [trace_dir]
"""

import sys
from pathlib import Path

from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.obs.analysis import analyze_trace, render_markdown
from repro.obs.telemetry import TelemetryConfig
from repro.workloads.mixes import rate_mix


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    trace_dir = Path(sys.argv[2] if len(sys.argv) > 2 else ".repro-traces/example")
    mix = rate_mix(workload)
    telemetry = TelemetryConfig(probe_interval=5_000,
                                trace_dir=str(trace_dir))

    for policy in ("baseline", "dap"):
        label = f"{mix.name}_{policy}"
        run_mix(mix, scaled_config(SMOKE, policy=policy), SMOKE,
                telemetry=telemetry, label=label)

    print(f"traces under {trace_dir}\n")
    for trace in sorted(trace_dir.rglob("*.trace.jsonl")):
        analysis = analyze_trace(trace)  # bandwidths from the manifest
        print(render_markdown(analysis, width=48))
        print()
        fractions = analysis.measured_fractions()
        print(f"{trace.stem}: partition gap "
              f"{analysis.mean_partition_gap():.4f}, "
              f"lost {analysis.mean_loss_gbps():.1f} GB/s, "
              f"measured fractions "
              + ", ".join(f"{s}={f:.3f}" for s, f in fractions.items()))
        print()


if __name__ == "__main__":
    main()
