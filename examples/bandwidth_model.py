"""Exploring the paper's analytical bandwidth model (Section III).

No simulation — just the closed forms: Equation 2's delivered
bandwidth, Equation 3's optimal partition, and the Fig. 1 curves that
motivate sacrificing hit rate for bandwidth.
"""

from repro.core.bandwidth_model import (
    analytic_dram_cache_read_bw,
    analytic_edram_cache_read_bw,
    delivered_bandwidth,
    max_delivered_bandwidth,
    optimal_fractions,
    optimal_mm_cas_fraction,
)


def main() -> None:
    # The paper's Section III example: M1 = 102.4 GB/s, M2 = 51.2 GB/s.
    bandwidths = [102.4, 51.2]
    print("Two sources, 102.4 and 51.2 GB/s (the paper's example):")
    for f1, f2 in [(1.0, 0.0), (0.5, 0.5)]:
        bw = delivered_bandwidth(bandwidths, [f1, f2])
        print(f"  split ({f1:.2f}, {f2:.2f}) -> {bw:6.1f} GB/s")
    optimal = optimal_fractions(bandwidths)
    print(f"  optimal split ({optimal[0]:.2f}, {optimal[1]:.2f}) -> "
          f"{delivered_bandwidth(bandwidths, optimal):6.1f} GB/s "
          f"(= sum of bandwidths {max_delivered_bandwidth(bandwidths):.1f})")
    print()

    # The default platform's partitioning target (Fig. 8's dashed line).
    print("Default platform (102.4 GB/s cache + 38.4 GB/s DDR4):")
    print(f"  optimal main-memory CAS fraction = "
          f"{optimal_mm_cas_fraction(102.4, 38.4):.3f}")
    print(f"  maximum delivered bandwidth     = "
          f"{max_delivered_bandwidth([102.4, 38.4]):.1f} GB/s")
    print(f"  ... with 1.3x maintenance inflation: "
          f"{max_delivered_bandwidth([102.4, 38.4], inflation=1.3):.1f} GB/s")
    print()

    # Fig. 1's closed forms: why 100% hit rate is NOT optimal.
    print("Fig. 1 closed forms — delivered read bandwidth (GB/s):")
    print(f"{'hit rate':>8s} {'DRAM$ (shared ch.)':>20s} {'eDRAM (split ch.)':>20s}")
    for hit in (0.0, 0.25, 0.50, 0.625, 0.70, 0.90, 1.00):
        dram = analytic_dram_cache_read_bw(hit, 102.4, 38.4)
        edram = analytic_edram_cache_read_bw(hit, 51.2, 38.4)
        print(f"{hit:8.0%} {dram:20.1f} {edram:20.1f}")
    print()
    peak_h = 51.2 / (51.2 + 38.4)
    print(f"The eDRAM curve peaks at h = B_R/(B_R+B_MM) = {peak_h:.1%} and "
          "*falls* beyond it: more hits can mean less bandwidth.")


if __name__ == "__main__":
    main()
