"""Quickstart: run one workload on the paper's default platform.

Builds the eight-core system of Section V (4 GB / 102.4 GB/s sectored
DRAM cache over dual-channel DDR4-2400), runs a rate-8 mcf-like mix on
the optimized baseline and on DAP, and prints the headline metrics.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.workloads.mixes import rate_mix


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    mix = rate_mix(workload)
    scale = SMOKE  # shrinks capacities + footprints together; see DESIGN.md

    print(f"workload: {mix.name}  ({mix.category})")
    print(f"platform: 8 cores, sectored DRAM cache, DDR4-2400, scale={scale.name}")
    print()

    results = {}
    for policy in ("baseline", "dap"):
        config = scaled_config(scale, policy=policy)
        results[policy] = run_mix(mix, config, scale)

    base, dap = results["baseline"], results["dap"]
    speedup = dap.mean_ipc / base.mean_ipc if base.mean_ipc else 0.0

    print(f"{'metric':32s} {'baseline':>12s} {'dap':>12s}")
    rows = [
        ("mean IPC", base.mean_ipc, dap.mean_ipc),
        ("L3 MPKI", base.mean_mpki, dap.mean_mpki),
        ("MS$ hit rate", base.served_hit_rate, dap.served_hit_rate),
        ("main-memory CAS fraction", base.mm_cas_fraction, dap.mm_cas_fraction),
        ("avg L3 read-miss latency", base.avg_read_latency, dap.avg_read_latency),
        ("delivered bandwidth (GB/s)", base.delivered_gbps, dap.delivered_gbps),
    ]
    for name, b, d in rows:
        print(f"{name:32s} {b:12.3f} {d:12.3f}")
    print()
    print(f"DAP decisions: {dap.dap_decisions}")
    print(f"speedup from DAP: {speedup:.3f}x "
          "(optimal MM CAS fraction is 0.273 — Eq. 4)")


if __name__ == "__main__":
    main()
