"""Compare access-partitioning policies on one workload.

Runs a rate-8 mix on the sectored DRAM cache under every steering
policy the paper evaluates — baseline, DAP, SBD, SBD-WT, BATMAN — and
prints the Fig. 11-style comparison.

Usage::

    python examples/compare_policies.py [workload]
"""

import sys

from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.metrics.speedup import normalized_weighted_speedup
from repro.workloads.mixes import rate_mix

POLICIES = ("baseline", "dap", "sbd", "sbd-wt", "batman")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    mix = rate_mix(workload)
    scale = SMOKE

    print(f"workload: {mix.name}")
    print(f"{'policy':10s} {'norm_ws':>8s} {'hit_rate':>9s} {'mm_frac':>8s} "
          f"{'read_lat':>9s}")

    results = {}
    for policy in POLICIES:
        results[policy] = run_mix(mix, scaled_config(scale, policy=policy),
                                  scale)
    base = results["baseline"]
    for policy in POLICIES:
        res = results[policy]
        ws = normalized_weighted_speedup(res.ipc, base.ipc)
        print(f"{policy:10s} {ws:8.3f} {res.served_hit_rate:9.3f} "
              f"{res.mm_cas_fraction:8.3f} {res.avg_read_latency:9.0f}")

    print()
    print("Expected ordering (paper Fig. 11): DAP > SBD-WT > BATMAN ~ "
          "baseline > SBD.")


if __name__ == "__main__":
    main()
