"""Define and run a custom synthetic workload.

Shows the workload-authoring API: build a :class:`WorkloadProfile` with
your own access mixture, generate per-core traces, assemble a system
around them, and inspect the run. Useful for studying how DAP responds
to a traffic pattern the paper didn't evaluate.
"""

from repro import SystemConfig, build_system, collect_result
from repro.hierarchy.cache_hierarchy import SramLevels
from repro.workloads.synthetic import (
    AccessMix,
    WorkloadProfile,
    core_base_line,
    generate_trace,
    warm_lines,
)

# A deliberately nasty pattern: heavy streaming writes over a modest
# warm set — lots of fill and write pressure on the cache channels.
STREAM_WRITER = WorkloadProfile(
    name="stream-writer",
    mem_per_kilo=420,
    write_fraction=0.55,
    stream_mb=192,
    hot_mb=64,
    mix=AccessMix(local=0.87, stream=0.09, hot=0.02, fresh=0.02, sparse=0.0),
    local_kb=16,
)

SCALE = 1 / 64       # shrink footprints with the cache capacities
REFS_PER_CORE = 20_000
NUM_CORES = 8


def build(policy: str):
    config = SystemConfig(
        policy=policy,
        num_cores=NUM_CORES,
        msc_capacity_bytes=(4 << 30) // 64,
        tag_cache_entries=512,
        footprint_entries=1024,
        sram=SramLevels(l1_bytes=16 * 1024, l2_bytes=64 * 1024,
                        l3_bytes=256 * 1024),
    )
    traces = [
        generate_trace(STREAM_WRITER, num_refs=REFS_PER_CORE,
                       base_line=core_base_line(core), scale=SCALE, seed=core)
        for core in range(NUM_CORES)
    ]
    system = build_system(config, traces)
    for core in range(NUM_CORES):
        for line, dirty in warm_lines(STREAM_WRITER, core_base_line(core),
                                      scale=SCALE, seed=core):
            system.msc.warm_line(line, dirty)
    return system


def main() -> None:
    print(f"custom workload: {STREAM_WRITER.name} "
          f"(write fraction {STREAM_WRITER.write_fraction:.0%})")
    for policy in ("baseline", "dap"):
        system = build(policy)
        system.run()
        result = collect_result(system)
        print(f"  {policy:9s} ipc={result.mean_ipc:.3f} "
              f"hit={result.served_hit_rate:.2f} "
              f"mm_frac={result.mm_cas_fraction:.2f} "
              f"decisions={result.dap_decisions}")
    print()
    print("A write-heavy stream should push DAP toward WB/FWB decisions "
          "(compare the decision counts above).")


if __name__ == "__main__":
    main()
