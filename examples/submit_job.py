"""Submit an experiment to the job service — entirely in-process.

Builds the three pieces `repro serve` wires together — a SQLite
:class:`~repro.service.jobstore.JobStore`, a
:class:`~repro.service.worker.WorkerPool`, and the shared cell cache —
submits one :class:`~repro.api.ExperimentRequest` through the typed
facade, follows the job's progress events, and fetches the stored
result. Submitting the same request a second time shows the dedupe
tier at work: zero cells execute, everything is served from the
content-addressed cell cache.

No HTTP involved; for the same flow over the wire, start
``repro serve`` and use the curl walkthrough in the README.

Usage::

    python examples/submit_job.py [experiment] [workload]
"""

import sys
import tempfile
import time

from repro import api
from repro.service.jobstore import JobStore
from repro.service.worker import WorkerPool


def wait(store: JobStore, job_id: str, seen: int = 0) -> int:
    """Poll until the job settles, printing progress events as they land."""
    while True:
        for seq, event in store.events_since(job_id, after_seq=seen):
            seen = seq
            kind = event.pop("t")
            detail = " ".join(f"{k}={v}" for k, v in event.items())
            print(f"  [{seq:2d}] {kind:6s} {detail}")
        if store.get(job_id).terminal:
            return seen
        time.sleep(0.1)


def main() -> int:
    experiment = sys.argv[1] if len(sys.argv) > 1 else "fig06"
    workload = sys.argv[2] if len(sys.argv) > 2 else "mcf"
    request = api.ExperimentRequest(
        experiment=experiment, scale="smoke", workloads=(workload,),
        timeout_seconds=600,
    )

    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        store = JobStore(f"{tmp}/jobs.sqlite3")
        pool = WorkerPool(store, workers=1,
                          cache=api.default_cache(f"{tmp}/cells"))
        pool.start()
        try:
            print(f"submitting {experiment} / {workload} ...")
            job = api.submit(request, store)
            wait(store, job.id)

            done = store.get(job.id)
            print(f"\njob {done.id[:12]}: {done.state} — "
                  f"{done.executed_cells} executed, "
                  f"{done.cached_cells} cached")
            if done.state != "succeeded":
                print(f"error: {done.error}")
                return 1
            result = store.result(job.id)
            print(" | ".join(result["headers"]))
            for row in result["rows"]:
                print(" | ".join(str(v) for v in row))

            print("\nresubmitting the identical request ...")
            again = api.submit(request, store)
            wait(store, again.id)
            done = store.get(again.id)
            print(f"job {done.id[:12]}: {done.state} — "
                  f"{done.executed_cells} executed, "
                  f"{done.cached_cells} cached (served from the cell cache)")
        finally:
            pool.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
