"""End-to-end integration tests on small full systems."""

import pytest

from repro import SystemConfig, collect_result
from repro.errors import ConfigError
from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.hierarchy.cache_hierarchy import SramLevels
from repro.hierarchy.system import build_system as build
from repro.workloads.mixes import rate_mix

REFS = 3_000


def tiny_config(policy="baseline", **overrides):
    overrides.setdefault("msc_capacity_bytes", (4 << 30) // 64)
    overrides.setdefault("tag_cache_entries", 2048)
    overrides.setdefault(
        "sram", SramLevels(l1_bytes=16 * 1024, l2_bytes=64 * 1024,
                           l3_bytes=256 * 1024))
    return SystemConfig(policy=policy, **overrides)


def run_tiny(policy="baseline", workload="mcf", **overrides):
    mix = rate_mix(workload)
    system = build(tiny_config(policy, **overrides),
                   mix.traces(refs_per_core=REFS, scale=1 / 64))
    warm = system.msc.warm_line
    for line, dirty in mix.warm_sets(1 / 64):
        warm(line, dirty)
    system.run()
    return collect_result(system)


def test_all_cores_complete_and_report_ipc():
    result = run_tiny()
    assert len(result.ipc) == 8
    assert all(ipc > 0 for ipc in result.ipc)
    assert result.cycles > 0
    assert result.total_instructions > 0


def test_run_is_deterministic():
    a = run_tiny()
    b = run_tiny()
    assert a.cycles == b.cycles
    assert a.ipc == b.ipc
    assert a.mm_cas == b.mm_cas and a.cache_cas == b.cache_cas


def test_warmed_run_has_realistic_hit_rate():
    result = run_tiny()
    assert 0.3 < result.served_hit_rate < 1.0  # short traces lower it


def test_mpki_in_plausible_band():
    result = run_tiny(workload="mcf")
    assert 10 < result.mean_mpki < 120


def test_dap_changes_partitioning():
    base = run_tiny("baseline")
    dap = run_tiny("dap")
    assert dap.mm_cas_fraction > base.mm_cas_fraction
    assert sum(dap.dap_decisions.values()) > 0


def test_all_policies_run_to_completion():
    for policy in ("baseline", "dap", "dap-fwb-wb", "sbd", "sbd-wt", "batman"):
        result = run_tiny(policy)
        assert result.cycles > 0, policy


def test_alloy_system_runs():
    result = run_tiny("dap", msc_kind="alloy")
    assert result.cycles > 0
    assert result.served_hit_rate > 0.2


def test_edram_system_runs():
    result = run_tiny("dap", msc_kind="edram", msc_assoc=16,
                      sector_bytes=1024,
                      msc_capacity_bytes=(256 << 20) // 64)
    assert result.cycles > 0


def test_bear_rejected_outside_alloy():
    mix = rate_mix("mcf")
    with pytest.raises(ConfigError):
        build(tiny_config("bear"),  # sectored + bear is invalid
              mix.traces(refs_per_core=10, scale=1 / 64))


def test_mismatched_trace_count_rejected():
    mix = rate_mix("mcf", ways=4)
    with pytest.raises(ConfigError):
        build(tiny_config(), mix.traces(refs_per_core=100, scale=1 / 64))


def test_config_key_stability():
    a, b = tiny_config(), tiny_config()
    assert a.key() == b.key()
    c = tiny_config(msc_capacity_bytes=(2 << 30) // 64)
    assert c.key() != a.key()


def test_run_mix_helper_and_scaled_config():
    mix = rate_mix("gcc.expr")
    config = scaled_config(SMOKE, policy="baseline")
    # Shorten the run by reusing the helper at a tiny ref count.
    from dataclasses import replace as dreplace

    scale = dreplace(SMOKE, refs_per_core=REFS)
    result = run_mix(mix, config, scale)
    assert result.cycles > 0
    assert result.policy == "baseline"


def test_streaming_kernel_can_saturate_combined_bandwidth():
    """Section V: the cores must be able to demand the combined cache +
    memory bandwidth. A pure-stream workload should push total delivered
    bandwidth well past what main memory alone could give."""
    result = run_tiny(workload="parboil-lbm")
    assert result.delivered_gbps > 25  # far beyond one workload's MM share
