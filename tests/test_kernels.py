"""Tests for the Fig. 1 read-bandwidth kernel."""

import pytest

from repro.errors import WorkloadError
from repro.experiments.fig01_bandwidth_vs_hitrate import (
    _dram_cache_factory,
    _edram_factory,
)
from repro.workloads.kernels import ReadKernel, run_read_kernel
from repro.engine import Simulator


def test_hit_rate_is_achieved():
    result = run_read_kernel(_dram_cache_factory, hit_rate=0.7,
                             total_reads=2000)
    assert abs(result.achieved_hit_rate - 0.7) < 0.05
    assert result.reads_completed == 2000


def test_zero_and_full_hit_rates():
    miss = run_read_kernel(_dram_cache_factory, hit_rate=0.0, total_reads=1000)
    hit = run_read_kernel(_dram_cache_factory, hit_rate=1.0, total_reads=1000)
    assert miss.achieved_hit_rate < 0.05
    assert hit.achieved_hit_rate > 0.95
    # All-hit bandwidth beats all-miss bandwidth on the DRAM cache.
    assert hit.delivered_gbps > miss.delivered_gbps


def test_edram_peak_exceeds_read_channels():
    mid = run_read_kernel(_edram_factory, hit_rate=0.5, total_reads=2000)
    full = run_read_kernel(_edram_factory, hit_rate=1.0, total_reads=2000)
    # At 50% the system exceeds the 51.2 GB/s read channels alone...
    assert mid.delivered_gbps > 55
    # ...but at 100% it cannot.
    assert full.delivered_gbps <= 52.5


def test_invalid_parameters():
    sim = Simulator()
    ctrl = _dram_cache_factory(sim)
    with pytest.raises(WorkloadError):
        ReadKernel(sim, ctrl, hit_rate=1.5, total_reads=10)
    with pytest.raises(WorkloadError):
        ReadKernel(sim, ctrl, hit_rate=0.5, total_reads=0)


def test_kernel_deterministic():
    a = run_read_kernel(_dram_cache_factory, hit_rate=0.5, total_reads=1500)
    b = run_read_kernel(_dram_cache_factory, hit_rate=0.5, total_reads=1500)
    assert a.delivered_gbps == b.delivered_gbps
    assert a.cycles == b.cycles
