"""Tests for the multi-channel memory device."""

import pytest

from repro.engine import Simulator
from repro.mem import MemoryDevice, ddr4_2400, hbm_102
from repro.mem.request import AccessKind, Request


def test_line_interleaving_across_channels():
    sim = Simulator()
    dev = MemoryDevice(sim, hbm_102())
    assert dev.channel_of(0) is dev.channels[0]
    assert dev.channel_of(1) is dev.channels[1]
    assert dev.channel_of(4) is dev.channels[0]


def test_enqueue_preserves_request_line():
    sim = Simulator()
    dev = MemoryDevice(sim, hbm_102())
    results = []
    req = Request(line=1234567, kind=AccessKind.DEMAND_READ,
                  on_complete=lambda r, t: results.append(r.line))
    dev.enqueue(req)
    sim.run()
    assert results == [1234567]


def test_streaming_uses_all_channels():
    sim = Simulator()
    dev = MemoryDevice(sim, hbm_102())
    for line in range(256):
        dev.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    sim.run()
    per_channel = [ch.stats.total_cas for ch in dev.channels]
    assert per_channel == [64, 64, 64, 64]


def test_streaming_delivered_bandwidth_close_to_peak():
    sim = Simulator()
    dev = MemoryDevice(sim, hbm_102())
    for line in range(4096):
        dev.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    sim.run()
    # Streaming reads should deliver most of the 102.4 GB/s peak.
    assert dev.delivered_gbps() > 0.8 * dev.peak_gbps


def test_ddr4_delivered_bandwidth_close_to_peak():
    sim = Simulator()
    dev = MemoryDevice(sim, ddr4_2400())
    for line in range(4096):
        dev.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    sim.run()
    assert dev.delivered_gbps() > 0.75 * 38.4


def test_random_traffic_efficiency_below_streaming():
    import random

    rng = random.Random(3)
    sim = Simulator()
    dev = MemoryDevice(sim, ddr4_2400())
    for _ in range(2048):
        dev.enqueue(Request(line=rng.randrange(1 << 26), kind=AccessKind.DEMAND_READ))
    sim.run()
    random_bw = dev.delivered_gbps()

    sim2 = Simulator()
    dev2 = MemoryDevice(sim2, ddr4_2400())
    for line in range(2048):
        dev2.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    sim2.run()
    assert random_bw < dev2.delivered_gbps()


def test_peak_accesses_per_cycle():
    sim = Simulator()
    cache = MemoryDevice(sim, hbm_102())
    mm = MemoryDevice(sim, ddr4_2400())
    assert cache.peak_accesses_per_cycle() == pytest.approx(0.4)
    assert mm.peak_accesses_per_cycle() == pytest.approx(0.15)


def test_cas_by_kind_merges_channels():
    sim = Simulator()
    dev = MemoryDevice(sim, hbm_102())
    for line in range(8):
        dev.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    for line in range(8):
        dev.enqueue(Request(line=line + 100, kind=AccessKind.FILL_WRITE))
    sim.run()
    by_kind = dev.cas_by_kind()
    assert by_kind[AccessKind.DEMAND_READ] == 8
    assert by_kind[AccessKind.FILL_WRITE] == 8
    assert dev.total_cas() == 16
