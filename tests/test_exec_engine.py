"""Tests for the cell-execution engine and its on-disk cache."""

import os

import pytest

from repro.errors import ReproError
from repro.experiments.cellcache import (
    CellCache,
    alone_ipc_key_parts,
    cell_key,
    decode_result,
    encode_result,
)
from repro.experiments.common import SMOKE, scaled_config
from repro.experiments.exec import (
    AloneIpcCell,
    MixCell,
    TaskCell,
    execute_cells,
    run_spec,
)
from repro.experiments.registry import get_spec
from repro.metrics.stats import RunResult
from repro.workloads.mixes import rate_mix


def _mix_cell(label="mcf/baseline", **config_kwargs):
    config = scaled_config(SMOKE, policy="baseline", **config_kwargs)
    return MixCell(label, rate_mix("mcf"), config, SMOKE)


# ---------------------------------------------------------------- keys


def test_cell_key_is_deterministic():
    assert cell_key(_mix_cell().key_parts()) == \
        cell_key(_mix_cell().key_parts())


def test_cell_key_ignores_label():
    # The label is presentation; only simulation inputs are keyed.
    assert cell_key(_mix_cell("a").key_parts()) == \
        cell_key(_mix_cell("b").key_parts())


def test_cell_key_changes_with_config():
    base = cell_key(_mix_cell().key_parts())
    tweaked = cell_key(_mix_cell(dap_window=128).key_parts())
    assert base != tweaked


def test_alone_ipc_key_normalizes_policy_and_cores():
    # Every policy/core-count variant of a platform shares one
    # alone-IPC reference cell.
    a = alone_ipc_key_parts("mcf", scaled_config(SMOKE, policy="dap"), SMOKE)
    b = alone_ipc_key_parts(
        "mcf", scaled_config(SMOKE, policy="baseline", num_cores=4), SMOKE)
    assert cell_key(a) == cell_key(b)
    c = alone_ipc_key_parts("omnetpp", scaled_config(SMOKE), SMOKE)
    assert cell_key(a) != cell_key(c)


# -------------------------------------------------------- cache store


def test_cache_round_trips_run_result(tmp_path):
    result = RunResult(
        policy="dap", cycles=1000, instructions=[1234], ipc=[1.234],
        l3_mpki=[12.5], avg_read_latency=480.0, served_hit_rate=0.7,
        array_hit_rate=0.8, mm_cas=25, cache_cas=75, mm_cas_fraction=0.25,
        delivered_gbps=51.2, tag_cache_miss_rate=0.22,
        dap_decisions={"fwb": 2}, extras={"x": 1.0},
    )
    cache = CellCache(tmp_path)
    cache.put_result("k" * 64, result, label="x")
    restored = cache.get_result("k" * 64)
    assert restored == result
    assert isinstance(restored, RunResult)


def test_encode_decode_plain_json_values():
    for value in ({"gbps": 1.25}, [1, 2.5], "text", 3):
        assert decode_result(encode_result(value)) == value


def test_cache_tolerates_torn_entries(tmp_path):
    cache = CellCache(tmp_path)
    key = "a" * 64
    cache.put_result(key, {"v": 1})
    path = tmp_path / key[:2] / f"{key}.json"
    path.write_text('{"status": "ok", "resu')  # truncated write
    assert cache.get(key) is None


# ---------------------------------------------------- engine behavior


def test_execute_cells_rejects_duplicate_labels():
    cells = [_mix_cell("same"), _mix_cell("same")]
    with pytest.raises(ReproError, match="duplicate cell labels"):
        execute_cells(cells)


MARKER_ENV = "REPRO_TEST_FAIL_MARKER"


def flaky_task(value: float = 1.0):
    """Module-level worker body: fails while the marker file exists."""
    marker = os.environ.get(MARKER_ENV, "")
    if marker and os.path.exists(marker):
        raise RuntimeError("injected failure")
    return {"value": value}


def steady_task(value: float = 2.0):
    return {"value": value}


def test_resume_retries_only_recorded_failures(tmp_path, monkeypatch):
    marker = tmp_path / "fail.marker"
    marker.write_text("")
    monkeypatch.setenv(MARKER_ENV, str(marker))
    cache = CellCache(tmp_path / "cache")
    cells = [
        TaskCell("flaky", flaky_task, kwargs=(("value", 1.0),)),
        TaskCell("steady", steady_task, kwargs=(("value", 2.0),)),
    ]

    results, stats = execute_cells(cells, cache=cache)
    assert stats.executed == 1 and stats.failed == 1
    assert "steady" in results and "flaky" not in results
    assert "injected failure" in stats.failures[0].error

    # Without --resume the recorded failure replays without re-running.
    results, stats = execute_cells(cells, cache=cache)
    assert stats.executed == 0
    assert stats.cache_hits == 1 and stats.replayed_failures == 1

    # With --resume, only the failed cell re-runs; the rest stay cached.
    marker.unlink()
    results, stats = execute_cells(cells, cache=cache, resume=True)
    assert stats.executed == 1 and stats.cache_hits == 1
    assert stats.failed == 0
    assert results["flaky"] == {"value": 1.0}


def test_identical_cells_execute_once(tmp_path):
    cells = [
        TaskCell("first", steady_task, kwargs=(("value", 5.0),)),
        TaskCell("alias", steady_task, kwargs=(("value", 5.0),)),
    ]
    results, stats = execute_cells(cells, cache=CellCache(tmp_path))
    assert stats.executed == 1 and stats.total == 2
    assert results["first"] == results["alias"] == {"value": 5.0}


def test_alone_ipc_cell_shared_across_policies(tmp_path):
    cache = CellCache(tmp_path)
    dap = AloneIpcCell("a", "mcf", scaled_config(SMOKE, policy="dap"), SMOKE)
    base = AloneIpcCell("b", "mcf", scaled_config(SMOKE), SMOKE)
    assert cell_key(dap.key_parts()) == cell_key(base.key_parts())


# --------------------------------------------- parallel/serial parity


def test_fig06_parallel_matches_serial(tmp_path):
    spec = get_spec("fig06")
    serial = run_spec(spec, scale="smoke", workloads=["mcf"], jobs=1)
    parallel = run_spec(spec, scale="smoke", workloads=["mcf"], jobs=2,
                        cache=CellCache(tmp_path))
    assert parallel.rows == serial.rows
    assert parallel.stats.executed == 2

    # A warm-cache rerun renders the same table with zero simulations.
    warm = run_spec(spec, scale="smoke", workloads=["mcf"], jobs=2,
                    cache=CellCache(tmp_path))
    assert warm.rows == serial.rows
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == warm.stats.total == 2
    assert "0 executed" in warm.stats.summary()
