"""Tests for synthetic trace generation, profiles, and mixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.mixes import all_mixes, heterogeneous_mixes, rate_mix
from repro.workloads.profiles import (
    BANDWIDTH_INSENSITIVE,
    BANDWIDTH_SENSITIVE,
    PROFILES,
    get_profile,
)
from repro.workloads.synthetic import (
    AccessMix,
    WorkloadProfile,
    core_base_line,
    generate_trace,
    warm_lines,
)


def test_profile_catalog_shape():
    assert len(PROFILES) == 17
    assert len(BANDWIDTH_SENSITIVE) == 12
    assert len(BANDWIDTH_INSENSITIVE) == 5
    assert "omnetpp" in BANDWIDTH_SENSITIVE
    assert "milc" in BANDWIDTH_INSENSITIVE


def test_get_profile_unknown():
    with pytest.raises(WorkloadError):
        get_profile("quake3")


def test_trace_is_deterministic():
    p = get_profile("mcf")
    a = list(generate_trace(p, num_refs=500, scale=1 / 64, seed=3))
    b = list(generate_trace(p, num_refs=500, scale=1 / 64, seed=3))
    assert a == b


def test_different_seeds_differ():
    p = get_profile("mcf")
    a = list(generate_trace(p, num_refs=500, scale=1 / 64, seed=0))
    b = list(generate_trace(p, num_refs=500, scale=1 / 64, seed=1))
    assert a != b


def test_trace_length_and_fields():
    p = get_profile("libquantum")
    entries = list(generate_trace(p, num_refs=300, scale=1 / 64))
    assert len(entries) == 300
    for gap, is_write, line in entries:
        assert gap >= 0
        assert isinstance(is_write, bool)
        assert line >= 0


def test_write_fraction_roughly_respected():
    p = get_profile("parboil-lbm")  # write fraction 0.45
    entries = list(generate_trace(p, num_refs=5000, scale=1 / 64))
    frac = sum(1 for _, w, _ in entries if w) / len(entries)
    assert 0.35 < frac < 0.55


def test_mem_per_kilo_sets_gap_distribution():
    dense = get_profile("parboil-lbm")   # 400 refs / kilo-instr
    sparse = get_profile("parboil-histo")  # 140 refs / kilo-instr
    dense_gaps = [g for g, _, _ in generate_trace(dense, 2000, scale=1 / 64)]
    sparse_gaps = [g for g, _, _ in generate_trace(sparse, 2000, scale=1 / 64)]
    assert sum(dense_gaps) < sum(sparse_gaps)


def test_base_line_offsets_address_space():
    p = get_profile("mcf")
    base = core_base_line(3)
    entries = list(generate_trace(p, num_refs=200, base_line=base, scale=1 / 64))
    assert all(line >= base for _, _, line in entries)


def test_warm_lines_cover_hot_region_accesses():
    """Non-local, non-fresh reads must fall inside the warm set."""
    p = get_profile("mcf")
    warm = {line for line, _ in warm_lines(p, scale=1 / 64)}
    local_floor = 1 << 28
    hits = misses = 0
    for _, _, line in generate_trace(p, num_refs=3000, scale=1 / 64):
        if line >= local_floor:
            continue  # local class
        if line in warm:
            hits += 1
        else:
            misses += 1
    total = hits + misses
    assert total > 0
    # The fresh class is small: most non-local traffic is warmed.
    assert hits / total > 0.6


def test_warm_lines_dirty_fraction_tracks_writes():
    p = get_profile("parboil-lbm")
    dirty = total = 0
    for _, d in warm_lines(p, scale=1 / 64):
        total += 1
        dirty += d
    assert 0.3 < dirty / total < 0.6


def test_sparse_profile_touches_many_sectors():
    p = get_profile("omnetpp")
    sectors = {
        line // 64
        for _, _, line in generate_trace(p, num_refs=5000, scale=1 / 16)
        if line < (1 << 28)
    }
    assert len(sectors) > 100  # sparse class spreads across regions


def test_access_mix_validation():
    with pytest.raises(WorkloadError):
        AccessMix(local=0.5, stream=0.2, hot=0.2, fresh=0.2, sparse=0.2)
    with pytest.raises(WorkloadError):
        AccessMix(local=1.2, stream=-0.2, hot=0.0, fresh=0.0, sparse=0.0)


def test_profile_validation():
    mix = AccessMix(local=0.9, stream=0.0, hot=0.05, fresh=0.03, sparse=0.02)
    with pytest.raises(WorkloadError):
        WorkloadProfile(name="bad", mem_per_kilo=0, write_fraction=0.1,
                        stream_mb=1, hot_mb=1, sparse_mb=16, mix=mix)
    with pytest.raises(WorkloadError):
        # sparse accesses without a sparse space
        WorkloadProfile(name="bad", mem_per_kilo=100, write_fraction=0.1,
                        stream_mb=1, hot_mb=1, sparse_mb=0, mix=mix)


def test_invalid_num_refs():
    with pytest.raises(WorkloadError):
        list(generate_trace(get_profile("mcf"), num_refs=0))


# ----------------------------------------------------------------------
# Mixes
# ----------------------------------------------------------------------

def test_rate_mix_is_homogeneous():
    mix = rate_mix("hpcg")
    assert mix.num_cores == 8
    assert set(mix.members) == {"hpcg"}
    assert mix.category == "bandwidth-sensitive"


def test_rate_mix_categories():
    assert rate_mix("milc").category == "bandwidth-insensitive"


def test_all_mixes_is_the_paper_set():
    mixes = all_mixes()
    assert len(mixes) == 44
    by_cat = {}
    for mix in mixes:
        by_cat.setdefault(mix.category, []).append(mix)
    assert len(by_cat["bandwidth-sensitive"]) == 12
    assert len(by_cat["bandwidth-insensitive"]) == 5
    assert len(by_cat["heterogeneous"]) == 27


def test_heterogeneous_mixes_deterministic():
    a = heterogeneous_mixes()
    b = heterogeneous_mixes()
    assert [m.members for m in a] == [m.members for m in b]


def test_heterogeneous_similar_and_dissimilar():
    mixes = heterogeneous_mixes()
    sensitive = set(BANDWIDTH_SENSITIVE)
    similar = [m for m in mixes
               if set(m.members) <= sensitive
               or not (set(m.members) & sensitive)]
    dissimilar = [m for m in mixes if m not in similar]
    assert len(similar) >= 10
    assert len(dissimilar) >= 10


def test_mix_traces_have_disjoint_address_spaces():
    mix = rate_mix("sjeng")
    traces = mix.traces(refs_per_core=100, scale=1 / 64)
    spaces = []
    for trace in traces:
        lines = [line for _, _, line in trace]
        spaces.append((min(lines) >> 30, max(lines) >> 30))
    starts = [lo for lo, _ in spaces]
    assert len(set(starts)) == 8


@given(st.sampled_from(sorted(PROFILES)), st.integers(min_value=1, max_value=7))
@settings(max_examples=20, deadline=None)
def test_any_profile_generates_valid_traces(name, seed):
    p = get_profile(name)
    count = 0
    for gap, is_write, line in generate_trace(p, num_refs=200, scale=1 / 64,
                                              seed=seed):
        assert gap >= 0 and line >= 0
        count += 1
    assert count == 200
