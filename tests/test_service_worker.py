"""The worker pool: jobs through the engine, with every guard rail.

The expensive end-to-end paths (real fig06 cells) share the session
cache; the deterministic guard-rail paths (drain, cancel, timeout)
stop before the first cell, so they cost nothing.
"""

import time

import pytest

from repro import api
from repro.api import ExperimentRequest
from repro.service.jobstore import JobStore
from repro.service.worker import WorkerPool


def _request(**overrides):
    fields = dict(experiment="fig06", scale="smoke", workloads=("mcf",))
    fields.update(overrides)
    return ExperimentRequest(**fields)


def _wait_terminal(store, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = store.get(job_id)
        if job.terminal:
            return job
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} still {store.get(job_id).state} after {timeout}s")


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3", backoff_base=0.02)


@pytest.fixture
def pool(store, shared_cache_dir):
    pool = WorkerPool(store, workers=1, cache=api.default_cache(
        shared_cache_dir), poll_seconds=0.02)
    yield pool
    pool.stop(timeout=120)


# ----------------------------------------------------------------------
# The acceptance path: execute, then dedupe a repeat submission
# ----------------------------------------------------------------------

def test_pool_executes_job_and_dedupes_resubmission(store, pool):
    pool.start()
    assert pool.alive == 1

    first = store.submit(_request())
    first = _wait_terminal(store, first.id)
    assert first.state == "succeeded"
    assert first.done_cells == first.total_cells == 2

    # Progress events reached the store (the SSE feed's source).
    cell_events = [e for _, e in store.events_since(first.id)
                   if e.get("t") == "cell"]
    assert len(cell_events) == 2
    assert cell_events[-1]["done"] == cell_events[-1]["total"] == 2

    # The dedupe tier: an identical submission is served entirely from
    # the content-addressed cell cache — zero new simulation.
    second = store.submit(_request())
    second = _wait_terminal(store, second.id)
    assert second.state == "succeeded"
    assert second.executed_cells == 0
    assert second.cached_cells == 2
    assert store.result(second.id)["rows"] == store.result(first.id)["rows"]


def test_service_job_is_bit_identical_to_direct_run(tmp_path, store):
    # Both sides start cold on their *own* cache, so each computes its
    # result independently; equal raw rows == bit-identical execution.
    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(str(tmp_path / "svc-cache")),
                      poll_seconds=0.02)
    pool.start()
    try:
        job = store.submit(_request())
        job = _wait_terminal(store, job.id)
    finally:
        pool.stop(timeout=120)
    assert job.state == "succeeded"
    assert job.executed_cells == 2  # the service really simulated

    direct = api.run_experiment(_request(),
                                cache=str(tmp_path / "direct-cache"))
    assert store.result(job.id)["rows"] == [list(r) for r in direct.rows]
    assert store.result(job.id)["headers"] == list(direct.headers)


# ----------------------------------------------------------------------
# Guard rails (deterministic: with a cold cache every cell is pending,
# so should_stop trips before the first cell simulates anything)
# ----------------------------------------------------------------------

def test_timeout_fails_job_after_attempt_budget(store):
    pool = WorkerPool(store, workers=1, cache=None, poll_seconds=0.02)
    pool.start()
    try:
        job = store.submit(_request(timeout_seconds=1e-6, max_attempts=2))
        job = _wait_terminal(store, job.id, timeout=30)
    finally:
        pool.stop(timeout=30)
    assert job.state == "failed"
    assert job.attempts == 2  # retried once, then gave up
    assert "timeout" in job.error
    states = [e["state"] for _, e in store.events_since(job.id)
              if e.get("t") == "state"]
    assert states.count("running") == 2  # both attempts really started


def test_timed_out_job_succeeds_when_cache_already_has_it(
        store, pool, shared_cache_dir):
    # Warm the cache, then submit with an impossible deadline: a fully
    # cache-served sweep finishes before the deadline can matter.
    api.run_experiment(_request(), cache=shared_cache_dir)
    pool.start()
    job = store.submit(_request(timeout_seconds=1e-6))
    job = _wait_terminal(store, job.id, timeout=30)
    assert job.state == "succeeded"
    assert job.executed_cells == 0


def test_shutdown_releases_job_for_the_next_worker(store):
    pool = WorkerPool(store, cache=None)
    job = store.submit(_request())
    claimed = store.claim("w0")
    pool._stop.set()  # drain requested before the first cell
    pool._run_job("w0", claimed)

    released = store.get(job.id)
    assert released.state == "queued"
    assert released.attempts == 0  # drain costs no attempt


def test_cancel_requested_mid_run_marks_job_cancelled(store):
    pool = WorkerPool(store, cache=None)
    job = store.submit(_request())
    claimed = store.claim("w0")
    store.cancel(job.id)  # running job: sets the flag only
    pool._run_job("w0", claimed)  # should_stop observes it between cells

    assert store.get(job.id).state == "cancelled"


def test_failing_job_records_error_and_stops_retrying(store, pool):
    pool.start()
    job = store.submit(_request(workloads=("no-such-workload",),
                                max_attempts=1))
    job = _wait_terminal(store, job.id, timeout=30)
    assert job.state == "failed"
    assert "no-such-workload" in job.error


def test_recovered_orphan_resumes_from_cache(store, pool):
    # A worker dies mid-job; restart re-enqueues it and the next worker
    # serves what the dead one already simulated from the cell cache.
    job = store.submit(_request(max_attempts=2))
    store.claim("dead-worker")
    assert JobStore(store.path).recover_orphans() == [job.id]

    pool.start()
    job = _wait_terminal(store, job.id)
    assert job.state == "succeeded"


# ----------------------------------------------------------------------
# Profiled jobs
# ----------------------------------------------------------------------

def test_profiled_job_attaches_collapsed_profile_to_result(
        tmp_path, store):
    from repro.obs.profiler import Profile

    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(str(tmp_path / "cache")),
                      poll_seconds=0.02)
    pool.start()
    try:
        job = store.submit(_request(profile=True))
        job = _wait_terminal(store, job.id)
        plain = store.submit(_request())
        plain = _wait_terminal(store, plain.id)
    finally:
        pool.stop(timeout=120)
    assert job.state == "succeeded"
    assert job.executed_cells == 2

    result = store.result(job.id)
    attached = result["profile"]
    assert attached["hz"] > 0
    profile = Profile.parse(attached["collapsed"])
    assert profile.total_samples == attached["samples"] > 0
    assert len(profile.cells()) == 2  # per-cell attribution survived

    # An unprofiled submission has no "profile" key at all, so the
    # service's bit-identical result comparisons are unaffected.
    assert plain.state == "succeeded"
    assert "profile" not in store.result(plain.id)

    # The profiled result's *rows* are still bit-identical to an
    # unprofiled direct run.
    direct = api.run_experiment(_request(),
                                cache=str(tmp_path / "direct-cache"))
    assert result["rows"] == [list(r) for r in direct.rows]


# ----------------------------------------------------------------------
# The janitor
# ----------------------------------------------------------------------

def test_janitor_recovers_stale_jobs_and_prunes_events(tmp_path, store):
    from repro.obs.tsdb import TimeSeriesStore

    tsdb = TimeSeriesStore(tmp_path / "ts.jsonl")
    # Threads never started: janitor_pass() is driven directly, with
    # horizons in the future so "stale" and "expired" are immediate.
    pool = WorkerPool(store, workers=1, cache=None,
                      heartbeat_timeout=-1.0, events_ttl=-1.0, tsdb=tsdb)

    stale = store.submit(_request(max_attempts=3))
    store.claim("dead-worker")
    done = store.submit(_request(workloads=("milc",)))
    store.claim("dead-worker")
    store.add_event(done.id, {"t": "cell", "label": "milc/baseline"})
    store.complete(done.id, {
        "experiment": "x", "headers": [], "rows": [], "notes": "",
        "stats": {"total": 1, "executed": 1, "cache_hits": 0,
                  "replayed_failures": 0, "failed": 0, "elapsed": 0.1,
                  "events": 10, "events_per_sec": 100.0}})

    pool.janitor_pass()

    assert store.get(stale.id).state == "queued"      # live recovery
    assert store.events_since(done.id) == []          # TTL prune
    rows = tsdb.rows(kind="metrics")                  # metrics scrape
    assert len(rows) == 1 and rows[0]["data"]


def test_janitor_with_fresh_heartbeats_is_a_no_op(store):
    pool = WorkerPool(store, workers=1, cache=None,
                      heartbeat_timeout=600.0)
    job = store.submit(_request())
    store.claim("live-worker")
    pool.janitor_pass()
    assert store.get(job.id).state == "running"  # untouched
